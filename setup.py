"""Legacy setup shim + optional compiled engine core.

The execution environment has no network access and no ``wheel``
package, so PEP 517 editable installs (which build a wheel) fail.
This shim lets ``pip install -e .`` fall back to the classic
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.

It also declares the optional C extension holding the compiled engine
core (the Simulator.run dispatch loop — see docs/TUNING.md, "Compiled
core").  Build it in place with::

    python setup.py build_ext --inplace

The extension is marked ``optional``: a missing compiler degrades to a
warning and the package keeps working on the pure-Python engine
(``REPRO_ENGINE`` selects the backend at runtime).
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.simulator._speedups",
            sources=["src/repro/simulator/_speedups.c"],
            optional=True,
        ),
    ],
)

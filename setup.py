"""Legacy setup shim.

The execution environment has no network access and no ``wheel``
package, so PEP 517 editable installs (which build a wheel) fail.
This shim lets ``pip install -e .`` fall back to the classic
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

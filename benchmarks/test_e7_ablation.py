"""E7 — ablation of the paper's two protocol knobs (Sections 3.2–3.4).

Sweeps the checkpoint interval ``I_cp`` and cumulation depth
``C_depth`` over a grid and reports throughput efficiency, transparent
buffer size, required numbering size, and the inconsistency-gap bound.

Design-choice shapes asserted (the trade-offs DESIGN.md calls out):

- Smaller ``I_cp`` ⇒ smaller buffer and smaller holding time
  (buffer control), at unchanged-or-better model efficiency.
- Larger ``C_depth`` ⇒ longer failure-detection latency
  (``C_depth · W_cp``) and a larger numbering requirement — the price
  of NAK-loss robustness.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e7_knob_ablation


def test_e7_knob_ablation(run_once):
    result = run_once(e7_knob_ablation)
    emit(result)
    rows = result.rows

    # Buffer size monotone in I_cp at fixed C_depth.
    for c_depth in {row["c_depth"] for row in rows}:
        series = sorted(
            (row for row in rows if row["c_depth"] == c_depth),
            key=lambda row: row["i_cp"],
        )
        buffers = [row["b_lams"] for row in series]
        assert buffers == sorted(buffers)

    # Inconsistency gap and numbering grow with C_depth at fixed I_cp.
    for i_cp in {row["i_cp"] for row in rows}:
        series = sorted(
            (row for row in rows if row["i_cp"] == i_cp),
            key=lambda row: row["c_depth"],
        )
        gaps = [row["inconsistency_gap"] for row in series]
        numbering = [row["numbering"] for row in series]
        assert gaps == sorted(gaps)
        assert numbering == sorted(numbering)

    # Efficiency is only weakly affected by either knob in the model
    # (the checkpoint wait is small next to R): spread under 10%.
    etas = [row["eta_lams"] for row in rows]
    assert (max(etas) - min(etas)) / max(etas) < 0.10

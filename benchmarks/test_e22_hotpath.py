"""E22 — simulator hot-path performance (engine dispatch + E6 workload).

Unlike E1–E21 this series regenerates no paper figure: it benchmarks
the *simulator itself*, so hot-path regressions surface in CI before
they slow every other experiment down.  Two levels:

- **Micro**: pure engine dispatch over pre-scheduled no-op events —
  the heap + dispatch loop with zero protocol work.
- **Meso**: the E6 saturated-throughput workload (the hottest real
  configuration), measured in simulator events/sec and frames/sec.

The assertions are deliberately loose sanity floors (orders of
magnitude below any machine this runs on) — the real regression gate
is comparing ``BENCH_hotpath.json`` artifacts from the same machine
(``python -m repro bench-baseline`` / ``make bench-smoke``).

Also asserted here: the perf work's correctness contract — identical
seeds produce bit-identical tracer summaries whether or not a timeline
or listeners are attached (the Tracer fast path must never change what
a simulation computes, only how fast).
"""

from __future__ import annotations

from repro.benchmark import bench_engine_dispatch, bench_saturated

# Loose floors: CI containers are slow and noisy, so these only catch
# catastrophic regressions (an accidentally quadratic loop, per-event
# allocation storms), not percent-level drift.
MIN_DISPATCH_EVENTS_PER_SEC = 50_000
MIN_SATURATED_EVENTS_PER_SEC = 10_000


def test_engine_dispatch_micro(run_once):
    result = run_once(bench_engine_dispatch, total_events=100_000)
    print(f"\n[E22] engine dispatch: {result['events_per_sec']:,.0f} events/s "
          f"(p50 {result['per_event_p50_us']:.3f}us, "
          f"p95 {result['per_event_p95_us']:.3f}us)")
    assert result["events"] == 100_000
    assert result["events_per_sec"] > MIN_DISPATCH_EVENTS_PER_SEC
    assert result["per_event_p50_us"] <= result["per_event_p95_us"]


def test_saturated_meso(run_once):
    result = run_once(bench_saturated, duration=1.0)
    print(f"\n[E22] saturated E6: {result['events_per_sec']:,.0f} events/s, "
          f"{result['frames_per_sec']:,.0f} frames/s, "
          f"{result['delivered']:,} delivered")
    assert result["delivered"] > 1_000  # the run did real protocol work
    assert result["events_per_sec"] > MIN_SATURATED_EVENTS_PER_SEC
    assert result["frames"] >= result["delivered"]


def test_observers_do_not_change_results():
    """Same seed ⇒ identical counters with and without observers.

    The Tracer fast path (``active`` flag) skips record construction
    when nobody is listening; attaching a timeline or a listener must
    change *observability only* — every counter, sample statistic, and
    delivered count stays bit-identical.
    """
    from repro.workloads.generators import SaturatedSource
    from repro.workloads.scenarios import build_simulation, preset

    def run(record_timeline: bool, attach_listener: bool):
        scenario = preset("noisy")  # nonzero BER exercises the RNG path
        setup = build_simulation(scenario, "lams", seed=7)
        if record_timeline:
            setup.tracer.record_timeline = True
        events_seen = []
        if attach_listener:
            setup.tracer.listeners.append(events_seen.append)
        sender = setup.endpoint_a.sender
        source = SaturatedSource(
            setup.sim, setup.endpoint_a,
            backlog_fn=lambda: sender.pending_count,
            low_water=64, chunk=128,
            poll_interval=scenario.iframe_time * 64,
        )
        source.start()
        setup.sim.run(until=0.25)
        summary = setup.tracer.summary()
        return (
            summary,
            len(setup.delivered),
            setup.sim.event_count,
            sender.iframes_sent,
            sender.retransmissions,
            len(events_seen),
        )

    bare = run(record_timeline=False, attach_listener=False)
    timeline = run(record_timeline=True, attach_listener=False)
    listened = run(record_timeline=False, attach_listener=True)
    both = run(record_timeline=True, attach_listener=True)

    # Simulation outcomes identical across observer configurations...
    assert bare[:5] == timeline[:5] == listened[:5] == both[:5]
    # ...while the observers really were live (records were produced).
    assert bare[5] == 0 and timeline[5] == 0
    assert listened[5] > 0 and both[5] > 0

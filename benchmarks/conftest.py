"""Benchmark-suite configuration.

Each benchmark file regenerates one evaluation series of the paper
(experiments E1–E12, see DESIGN.md), prints the series as a table, and
asserts the paper's qualitative shape — who wins, which direction the
curve moves, where the structural results (finite vs infinite buffer,
bounded vs unbounded numbering) land.

Simulation-backed experiments run exactly once per benchmark round via
``benchmark.pedantic``; the timing numbers measure the harness itself,
while the scientific output is the printed table (run with ``-s``).

Replicated benchmarks (E20) opt into the parallel sweep runner by
setting ``REPRO_SWEEP_JOBS=N`` in the environment: the ``replicated``
fixture fans the per-seed simulations over ``N`` worker processes, with
results bit-identical to the serial path (same seeds, same summaries).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentResult, render_table
from repro.experiments.parallel import parallel_replicate

SWEEP_JOBS = int(os.environ.get("REPRO_SWEEP_JOBS", "1"))


def emit(result: ExperimentResult, columns=None) -> None:
    """Print an experiment's table (visible with ``pytest -s``)."""
    print()
    print(render_table(result.rows, columns=columns,
                       title=f"[{result.experiment_id}] {result.title}"))
    if result.notes:
        print(f"  note: {result.notes}")


@pytest.fixture
def sweep_jobs() -> int:
    """Worker-process count for replicated benchmarks (REPRO_SWEEP_JOBS)."""
    return SWEEP_JOBS


@pytest.fixture
def replicated(sweep_jobs):
    """Run a :class:`~repro.experiments.parallel.MeasureSpec` replication.

    ``replicated(spec, metric, seeds)`` returns the same
    :class:`~repro.experiments.sweeps.ReplicationSummary` as serial
    ``replicate`` — over ``REPRO_SWEEP_JOBS`` processes when set.
    """

    def runner(spec, metric, seeds):
        return parallel_replicate(spec, metric, seeds, jobs=sweep_jobs)

    return runner


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner

"""Benchmark-suite configuration.

Each benchmark file regenerates one evaluation series of the paper
(experiments E1–E12, see DESIGN.md), prints the series as a table, and
asserts the paper's qualitative shape — who wins, which direction the
curve moves, where the structural results (finite vs infinite buffer,
bounded vs unbounded numbering) land.

Simulation-backed experiments run exactly once per benchmark round via
``benchmark.pedantic``; the timing numbers measure the harness itself,
while the scientific output is the printed table (run with ``-s``).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentResult, render_table


def emit(result: ExperimentResult, columns=None) -> None:
    """Print an experiment's table (visible with ``pytest -s``)."""
    print()
    print(render_table(result.rows, columns=columns,
                       title=f"[{result.experiment_id}] {result.title}"))
    if result.notes:
        print(f"  note: {result.notes}")


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner

"""E8 — burst errors and the cumulative-NAK coverage condition (§3.3).

Simulates saturated transfers over a Gilbert–Elliott channel whose Bad
state models laser-mispointing bursts, for burst lengths below and
above the paper's coverage condition ``C_depth · W_cp > L_burst``.

Paper shape asserted: LAMS-DLC's goodput stays high while bursts are
covered and degrades gracefully beyond; SR-HDLC is far below LAMS-DLC
at every burst length (its recovery is per-window and timeout-bound).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e8_burst_utilization


def test_e8_burst_utilization(run_once):
    result = run_once(e8_burst_utilization, duration=3.0)
    emit(result)
    rows = result.rows

    lams = {row["mean_burst_s"]: row for row in rows if row["protocol"] == "lams"}
    hdlc = {row["mean_burst_s"]: row for row in rows if row["protocol"] == "hdlc"}

    # LAMS-DLC dominates SR-HDLC at every burst length.
    for burst in lams:
        assert lams[burst]["efficiency"] > 3 * hdlc[burst]["efficiency"]

    # Covered bursts keep LAMS-DLC efficiency high.
    covered = [row for row in lams.values() if row["covered"]]
    uncovered = [row for row in lams.values() if not row["covered"]]
    assert covered and uncovered, "grid must straddle the coverage condition"
    assert min(row["efficiency"] for row in covered) > 0.85

    # Efficiency decreases as bursts lengthen.
    ordered = [lams[key]["efficiency"] for key in sorted(lams)]
    assert ordered == sorted(ordered, reverse=True)

"""E10 — enforced recovery and failure detection (paper Section 3.2).

Simulates link outages of increasing length during a batch transfer and
regenerates the protocol's failure-handling behaviour: Request-NAK
probing, Enforced-NAK recovery, failure declaration, and the zero-loss
guarantee.

Paper shape asserted:

- short outages recover (Request-NAK → Enforced-NAK) with no frame
  lost; duplicates appear only in this enforced corner (the paper's
  admitted limitation, removed downstream by the resequencer);
- outages the failure budget cannot bridge are *declared* failures with
  every unresolved frame retained for the network layer — zero loss in
  every case.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e10_recovery


def test_e10_outage_recovery(run_once):
    result = run_once(e10_recovery)
    emit(
        result,
        columns=[
            "outage", "recovered", "request_naks_sent", "delivered_unique",
            "duplicates", "buffered_at_sender", "lost",
        ],
    )
    rows = sorted(result.rows, key=lambda row: row["outage"])

    # Zero loss, always: every frame either delivered or still held.
    for row in rows:
        assert row["lost"] == 0, f"loss at outage={row['outage']}"

    # The shortest outage recovers; the longest is a declared failure.
    assert rows[0]["recovered"]
    assert not rows[-1]["recovered"]

    # Every recovery attempt probed at least once.
    for row in rows:
        assert row["request_naks_sent"] >= 1

    # Duplicates only ever appear in recovered (enforced) runs.
    for row in rows:
        if not row["recovered"]:
            assert row["duplicates"] == 0

"""E1 — retransmission factor s̄ vs BER (paper Sections 2 and 4).

Regenerates the comparison of the mean number of transmissions per
delivered frame: NAK-only (``s̄ = 1/(1-P_F)``) vs positive-ack
(``s̄ = 1/(1-(P_F+P_C-P_F P_C))``) vs piggybacked acks (``P_C = P_F``).

Paper shape asserted: the pos-ack factor dominates the NAK-only factor
at every BER, the piggyback factor dominates both, and all gaps widen
as the BER grows.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e1_retransmission_factor


def test_e1_retransmission_factor(run_once):
    result = run_once(e1_retransmission_factor)
    emit(result)

    lams = result.column("s_bar_lams")
    hdlc = result.column("s_bar_hdlc")
    piggy = result.column("s_bar_piggyback")

    # NAK-only never retransmits more than pos-ack; piggyback is worst.
    for l, h, p in zip(lams, hdlc, piggy):
        assert l <= h <= p

    # The advantage widens with BER.
    gaps = [p - l for l, p in zip(lams, piggy)]
    assert gaps == sorted(gaps)
    assert gaps[-1] > gaps[0]

    # All factors start at ~1 for the cleanest channel.
    assert lams[0] < 1.01

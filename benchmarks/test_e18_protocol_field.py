"""E18 — the full protocol field (paper Section 1's genealogy, measured).

The paper positions LAMS-DLC against a lineage: Go-Back-N, selective
repeat (SR-HDLC), the Stutter family, and NBDT's multiphase/continuous
modes.  All of them are implemented in this library; this benchmark
runs every one under identical saturated load and random streams.

Shape asserted (the paper's ordering arguments):

- GBN < SR-HDLC (Section 2.3's discard waste);
- SR-HDLC < NBDT-multiphase < NBDT-continuous (Section 1: NBDT's modes
  exist to reclaim HDLC's idle time, continuous more than multiphase);
- LAMS-DLC and NBDT-continuous both near line rate (neither stalls) —
  LAMS-DLC's advantages over NBDT are the ones E13/E10 measure
  (bounded memory, failure detection), not raw throughput.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e18_protocol_field


def test_e18_protocol_field(run_once):
    result = run_once(e18_protocol_field, duration=2.0)
    emit(result)
    eff = {row["protocol"]: row["efficiency"] for row in result.rows}

    # The genealogy's ordering, end to end.
    assert eff["gbn"] < eff["hdlc"]
    assert eff["hdlc"] < eff["nbdt-multiphase"]
    assert eff["nbdt-multiphase"] < eff["nbdt-continuous"]

    # The two non-stalling protocols sit near the line rate...
    assert eff["lams"] > 0.85
    assert eff["nbdt-continuous"] > 0.85
    # ...and far above everything windowed/phase-alternating.
    assert eff["lams"] > 5 * eff["nbdt-multiphase"]

"""E19 — validation matrix: model vs simulation across every preset.

Extends E12's single-point validation to the full operating envelope
(short_hop / nominal / long_haul / noisy × LAMS-DLC / SR-HDLC).

Bands asserted:

- LAMS-DLC: measured within 10% of the Section-4 prediction at *every*
  preset — the paper's analysis of its own protocol is essentially
  exact;
- SR-HDLC: measured within a factor of 2.5 (the analysis's
  one-frame-per-retransmission-period assumption is systematically
  optimistic), and never *above* 1.2× the model;
- the LAMS > HDLC ordering preserved in both worlds at every preset.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e19_validation_matrix


def test_e19_validation_matrix(run_once):
    result = run_once(e19_validation_matrix, duration=1.5)
    emit(result)

    by_key = {(row["preset"], row["protocol"]): row for row in result.rows}
    presets = {row["preset"] for row in result.rows}

    for preset_name in presets:
        lams = by_key[(preset_name, "lams")]
        hdlc = by_key[(preset_name, "hdlc")]

        # LAMS analysis: tight agreement everywhere.
        assert 0.90 < lams["ratio"] < 1.10, (preset_name, lams["ratio"])

        # HDLC analysis: bounded optimism, no pessimism beyond noise.
        assert 0.4 < hdlc["ratio"] < 1.2, (preset_name, hdlc["ratio"])

        # Ordering preserved in both model and measurement.
        assert lams["model"] > hdlc["model"]
        assert lams["measured"] > hdlc["measured"]

"""E6 — high-traffic throughput efficiency η (paper Section 4).

Regenerates the paper's headline comparison:

    η_LAMS = N / (N_total t_f + s̄ R + δ_LAMS)
    η_HDLC = N / (N_HDLC_total t_f + (m+1) s̄ R + (m+1) δ_HDLC)

over offered traffic N and over BER.

Paper shape asserted: "as the channel traffic increases, the throughput
efficiency of LAMS-DLC will be much better than that of SR-HDLC" —
η_LAMS increases toward 1 with N while η_HDLC stays pinned near its
per-window ceiling; the ratio grows with N and widens with BER.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e6_throughput_vs_ber, e6_throughput_vs_n


def test_e6_throughput_vs_n(run_once):
    result = run_once(e6_throughput_vs_n)
    emit(result)

    eta_lams = result.column("eta_lams")
    eta_hdlc = result.column("eta_hdlc")
    ratios = result.column("ratio")

    # LAMS-DLC efficiency increases with N toward (but below) 1.
    assert eta_lams == sorted(eta_lams)
    assert eta_lams[-1] > 0.9
    assert all(value < 1.0 for value in eta_lams)

    # HDLC's efficiency is flat: its per-window ceiling.
    assert max(eta_hdlc) - min(eta_hdlc) < 0.25 * max(eta_hdlc)

    # The win factor grows with traffic and ends up large.
    assert ratios == sorted(ratios)
    assert ratios[-1] > 10.0


def test_e6_window_sweep_paper_point(run_once):
    """The paper's canonical comparison grants HDLC W = B_LAMS; LAMS-DLC
    must still win there (by roughly 2x), and η_HDLC must increase with
    W while staying below η_LAMS at every finite window."""
    from repro.experiments.registry import e6_window_sweep

    result = run_once(e6_window_sweep)
    emit(result)
    rows = sorted(result.rows, key=lambda row: row["window"])

    etas = [row["eta_hdlc"] for row in rows]
    assert etas == sorted(etas)  # bigger window, better HDLC

    paper_point = next(row for row in rows if row["is_paper_point"])
    # At W = B_LAMS the HDLC receive buffer alone (W frames of
    # resequencing space) matches LAMS-DLC's entire footprint, and the
    # paper charges it 2*B_LAMS total — yet LAMS-DLC stays ahead.
    assert paper_point["eta_lams"] > 1.5 * paper_point["eta_hdlc"]
    assert paper_point["eta_hdlc"] > 0.3  # HDLC is respectable here

    # Even 4x the paper's window does not reach LAMS-DLC.
    assert all(row["eta_hdlc"] < row["eta_lams"] for row in rows)


def test_e6_throughput_vs_ber(run_once):
    result = run_once(e6_throughput_vs_ber)
    emit(result)

    eta_lams = result.column("eta_lams")
    eta_hdlc = result.column("eta_hdlc")

    # Both protocols degrade with BER.
    assert eta_lams == sorted(eta_lams, reverse=True)
    assert eta_hdlc == sorted(eta_hdlc, reverse=True)

    # LAMS-DLC wins at every operating point of the paper's envelope.
    for l, h in zip(eta_lams, eta_hdlc):
        assert l > h

"""E3 — mean frame holding time H_frame (paper Section 4).

Regenerates ``H_frame = H_succ / (1-P_F)`` over BER and checkpoint
interval, against the paper's resolving-period bound.

Paper shape asserted: holding time grows with BER and with ``I_cp``
(shrinking the checkpoint interval shrinks the holding time — the
"buffer control" knob of Section 3.4), and the mean always sits below
the worst-case resolving-period bound of Section 3.3.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e3_holding_time


def test_e3_holding_time(run_once):
    result = run_once(e3_holding_time)
    emit(result)

    rows = result.rows
    # Monotone in I_cp at fixed BER.
    for ber in {row["ber"] for row in rows}:
        series = [row for row in rows if row["ber"] == ber]
        series.sort(key=lambda row: row["i_cp"])
        values = [row["h_frame"] for row in series]
        assert values == sorted(values)

    # Monotone in BER at fixed I_cp.
    for i_cp in {row["i_cp"] for row in rows}:
        series = [row for row in rows if row["i_cp"] == i_cp]
        series.sort(key=lambda row: row["ber"])
        values = [row["h_frame"] for row in series]
        assert values == sorted(values)

    # The per-attempt holding time respects the resolving-period bound
    # (Section 3.3's bound applies per transmission: renumbering resets
    # the clock; the cumulative mean h_frame is s̄ attempts chained).
    for row in rows:
        assert row["h_attempt"] < row["resolving_bound"] * 1.05

    # Approximation tracks the exact form.
    for row in rows:
        assert abs(row["h_frame"] - row["h_frame_approx"]) / row["h_frame"] < 0.05

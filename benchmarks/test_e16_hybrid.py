"""E16 — Type-I hybrid ARQ/FEC (paper Section 1, references [13–15]).

The paper surveys combined ARQ+FEC schemes whose "motivation is that
the relatively low throughput of ARQ schemes is caused by
retransmissions".  We evaluate the Type-I construction on the LAMS-DLC
model across a codec-strength ladder and the channel-BER range.

Shape asserted: at low channel BER, no coding wins (parity is pure
overhead); at high channel BER, a codec wins; the optimal codec
strength is monotone-nondecreasing in channel BER — the crossover
structure the hybrid-ARQ literature predicts.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e16_hybrid_arq_fec


LADDER_ORDER = ["none", "hamming74", "rep3", "hamming74+rep3", "rep5"]


def test_e16_hybrid_arq_fec(run_once):
    result = run_once(e16_hybrid_arq_fec)
    emit(result, columns=["channel_ber", "codec", "rate", "residual_ber", "p_f", "goodput"])

    by_ber: dict[float, dict[str, float]] = {}
    for row in result.rows:
        by_ber.setdefault(row["channel_ber"], {})[row["codec"]] = row["goodput"]

    bers = sorted(by_ber)
    winners = [max(by_ber[ber], key=by_ber[ber].get) for ber in bers]

    # Clean channel: coding only hurts.
    assert winners[0] == "none"
    # Dirty channel: some codec wins.
    assert winners[-1] != "none"
    # Optimal strength never weakens as the channel degrades.
    strengths = [LADDER_ORDER.index(winner) for winner in winners]
    assert strengths == sorted(strengths)

    # Sanity: goodput is a proper efficiency.
    for row in result.rows:
        assert 0.0 <= row["goodput"] <= 1.0

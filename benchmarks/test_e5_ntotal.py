"""E5 — the N_total subperiod recursion (paper Section 4, high traffic).

Regenerates the paper's recursion: subperiods of one mean holding time
(``h = H_frame/t_f`` frame slots), new frames filling what the
resurfacing retransmission load ``Σ N_j P_R^{i-j}`` leaves free.

Paper shape asserted: the recursion's total converges to the closed
form ``N·s̄``; the first subperiod carries no retransmission load; the
load ramps up to its equilibrium share ``P_R·h`` within a few
subperiods.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.analysis import lams as lams_model
from repro.experiments.registry import e5_n_total
from repro.workloads import preset


def test_e5_recursion_vs_closed_form(run_once):
    result = run_once(e5_n_total)
    emit(result)
    for row in result.rows:
        assert row["n_total_recursive"] == pytest.approx(
            row["n_total_closed"], rel=1e-6
        )
    # Subperiod count grows with N once N exceeds one holding time.
    counts = result.column("subperiods")
    assert counts == sorted(counts)


def test_e5_transient_structure(run_once):
    params = preset("noisy").model_parameters()
    schedule = run_once(lams_model.subperiod_schedule, params, 50_000)
    loads = schedule.retransmission_load
    # First subperiod: nothing to retransmit yet.
    assert loads[0] == 0.0
    # Load ramps to the equilibrium share P_R * h and stays there while
    # new frames remain.
    h = lams_model.holding_time(params) / params.iframe_time
    equilibrium = params.p_f * h
    mid = len(loads) // 2
    assert loads[mid] == pytest.approx(equilibrium, rel=0.05)
    # The tail drains: final loads are tiny.
    assert loads[-1] < 1.0
    # Frame conservation.
    assert sum(schedule.new_frames) == pytest.approx(50_000)

"""E2 — low-traffic total delivery time D_low(N) (paper Section 4).

Regenerates ``D_low^LAMS(N)`` and ``D_low^HDLC(N)`` (both the derived
and the paper-printed HDLC variant) over batch sizes up to one window.

Paper shape asserted: the two protocols are near-equivalent when
``alpha`` is small and ``P_C`` tiny (the paper's stated equivalence
point), and LAMS-DLC wins once ``alpha`` is large (high mobility) or
the error rate is high.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis import hdlc as hdlc_model
from repro.analysis import lams as lams_model
from repro.experiments.registry import e2_delivery_time
from repro.workloads import preset


def test_e2_delivery_time_series(run_once):
    result = run_once(e2_delivery_time)
    emit(result)
    # D_low grows with N for both protocols, and the approximation
    # tracks the exact form closely.
    lams = result.column("d_low_lams")
    hdlc = result.column("d_low_hdlc")
    assert lams == sorted(lams)
    assert hdlc == sorted(hdlc)
    for exact, approx in zip(lams, result.column("d_low_lams_approx")):
        assert abs(exact - approx) / exact < 0.02


def test_e2_near_parity_at_benign_point(run_once):
    """alpha -> 0, P_C -> 0: the paper says the totals are nearly equal."""
    params = preset("nominal").with_(
        alpha=0.0, cframe_ber=0.0, iframe_ber=1e-7
    ).model_parameters()
    n = params.window_size
    d_lams = run_once(lams_model.total_delivery_time_low, params, n)
    d_hdlc = hdlc_model.total_delivery_time_low(params, n)
    assert abs(d_lams - d_hdlc) / d_hdlc < 0.25


def test_e2_lams_wins_under_mobility_and_noise(run_once):
    """Large alpha (mobile network) + high BER: LAMS-DLC delivers faster."""
    params = preset("noisy").with_(alpha=0.5).model_parameters()
    n = params.window_size
    d_lams = run_once(lams_model.total_delivery_time_low, params, n)
    assert d_lams < hdlc_model.total_delivery_time_low(params, n)


def test_e2_measured_overlay(run_once):
    """Single-seed batch transfers sit within a small factor of D_low,
    with the model's LAMS/HDLC ranking preserved."""
    from repro.experiments.registry import e2_delivery_time_measured

    result = run_once(e2_delivery_time_measured)
    emit(result)
    for row in result.rows:
        assert row["completed"]
        ratio = row["measured_to_last_delivery"] / row["d_low_model"]
        assert 0.5 < ratio < 3.0, row
    by_n = {}
    for row in result.rows:
        by_n.setdefault(row["n_frames"], {})[row["protocol"]] = row
    for n, pair in by_n.items():
        model_says_hdlc_faster = (
            pair["hdlc"]["d_low_model"] < pair["lams"]["d_low_model"]
        )
        measured_says = (
            pair["hdlc"]["measured_to_last_delivery"]
            < pair["lams"]["measured_to_last_delivery"]
        )
        assert model_says_hdlc_faster == measured_says, n

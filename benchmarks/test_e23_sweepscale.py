"""E23 — sweep-scaling performance (the Monte-Carlo replication plane).

Like E22 this regenerates no paper figure: it benchmarks the machinery
every replicated experiment rides — :func:`repro.experiments.parallel
.run_sweep` over a persistent warm :class:`~repro.experiments.parallel
.SweepPool`, the sharded :class:`~repro.experiments.parallel
.ResultCache`, and streaming aggregation.  Three contracts:

- **Correctness under parallelism**: a jobs=2 sweep over warm workers
  is *bit-identical* to the serial sweep on the same seeds, and a
  streamed aggregation is bit-identical to the batch one.
- **Free re-runs**: a fully cache-hot sweep executes zero simulations
  and answers from one shard-index read.
- **Sanity floors**: points/sec is orders of magnitude above
  catastrophic-regression territory.  The real ≥2x gate is comparing
  ``BENCH_hotpath.json`` ``sweep_scale`` sections from the same
  machine (``python -m repro bench-baseline`` / ``make bench-sweep``).

Print the measured tables with ``pytest -s``.
"""

from __future__ import annotations

from repro.benchmark import bench_sweep_scale
from repro.experiments.parallel import (
    MeasurePoint,
    MeasureSpec,
    ResultCache,
    SweepPool,
    parallel_replicate_all,
    replication_seeds,
    run_sweep,
)
from repro.simulator.trace import Tracer
from repro.workloads.scenarios import preset

SEEDS = 8
DURATION = 0.05
METRICS = ["efficiency", "eta", "delivered"]

# Loose floors only: CI containers are slow, noisy, and possibly
# single-core.  These catch accidental quadratic work per point, not
# percent-level drift.
MIN_POINTS_PER_SEC = 0.5
MIN_CACHE_HOT_POINTS_PER_SEC = 50.0


def _spec() -> MeasureSpec:
    return MeasureSpec.create(
        "measure_saturated", preset("short_hop"), "lams", duration=DURATION
    )


def _points() -> list[MeasurePoint]:
    seeds = replication_seeds(0, SEEDS, name="bench_sweep")
    return [MeasurePoint(_spec(), seed) for seed in seeds]


def test_sweep_scale_section(run_once):
    result = run_once(bench_sweep_scale, seeds=SEEDS, duration=DURATION,
                      jobs=(2,))
    serial = result["serial"]
    print(f"\n[E23] sweep serial: {serial['points_per_sec']:,.2f} points/s "
          f"({result['points']} points)")
    for run in result["parallel"]:
        print(f"[E23] sweep jobs={run['jobs']} ({run['start_method']}): "
              f"{run['points_per_sec']:,.2f} points/s, "
              f"bit-identical={run['bit_identical_to_serial']}")
    hot = result["cache_hot"]
    print(f"[E23] cache-hot re-run: {hot['wall_seconds'] * 1e3:,.1f} ms, "
          f"{hot['points_per_sec']:,.0f} points/s, {hot['hits']} hits")
    assert serial["points_per_sec"] > MIN_POINTS_PER_SEC
    for run in result["parallel"]:
        assert run["bit_identical_to_serial"]
        assert run["points_per_sec"] > MIN_POINTS_PER_SEC
    assert hot["bit_identical_to_serial"]
    assert hot["hits"] == result["points"]
    assert hot["points_per_sec"] > MIN_CACHE_HOT_POINTS_PER_SEC


def test_parallel_sweep_bit_identical_to_serial():
    points = _points()
    serial = run_sweep(points, jobs=1)
    with SweepPool(2) as pool:
        parallel = run_sweep(points, pool=pool)
    assert parallel == serial


def test_cache_hot_rerun_executes_nothing(tmp_path):
    points = _points()
    with ResultCache(str(tmp_path)) as cache:
        cold = run_sweep(points, jobs=1, cache=cache)
    stats = Tracer()
    with ResultCache(str(tmp_path)) as cache:
        warm = run_sweep(points, jobs=1, cache=cache, stats=stats)
    assert warm == cold
    assert stats.counter("sweep.executed").value == 0
    assert stats.counter("sweep.cache_hits").value == len(points)


def test_streaming_aggregation_bit_identical():
    spec = _spec()
    seeds = replication_seeds(0, SEEDS, name="bench_sweep")
    batch = parallel_replicate_all(spec, METRICS, seeds, jobs=2)
    stream = parallel_replicate_all(spec, METRICS, seeds, jobs=2,
                                    streaming=True)
    for metric in METRICS:
        assert stream[metric].count == batch[metric].count
        assert stream[metric].mean == batch[metric].mean
        assert stream[metric].stdev == batch[metric].stdev
        assert stream[metric].half_width == batch[metric].half_width

"""E12 — closed-form model vs discrete-event simulation.

The paper's evaluation is analytic only; this benchmark closes the loop
the paper couldn't: the executable protocols are measured under
saturated load and compared against the Section-4 predictions built
from identical parameters.

Agreement bands asserted (the model is a deterministic mean-value
analysis with simplifying period assumptions — shape and magnitude,
not digits):

- LAMS-DLC holding time within 10% of ``H_frame``;
- LAMS-DLC efficiency within 15% of ``η_LAMS``;
- SR-HDLC efficiency within a factor of 3 of ``η_HDLC``;
- the *ordering* (LAMS ≫ HDLC) identical in model and measurement.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.experiments.registry import e12_validation


def test_e12_model_vs_simulation(run_once):
    result = run_once(e12_validation, duration=3.0)
    emit(result)
    cells = {(row["protocol"], row["metric"]): row for row in result.rows}

    lams_holding = cells[("lams", "holding_time")]
    assert lams_holding["measured"] == pytest.approx(lams_holding["model"], rel=0.10)

    lams_eff = cells[("lams", "efficiency")]
    assert lams_eff["measured"] == pytest.approx(lams_eff["model"], rel=0.15)

    hdlc_eff = cells[("hdlc", "efficiency")]
    ratio = hdlc_eff["measured"] / hdlc_eff["model"]
    assert 1 / 3 < ratio < 3

    # Ordering preserved in both worlds.
    assert lams_eff["model"] > hdlc_eff["model"]
    assert lams_eff["measured"] > hdlc_eff["measured"]

"""E14 — ablation: Stutter mode for SR-HDLC (paper Section 1 background).

The paper motivates LAMS-DLC partly against the Stutter family
(Stutter GBN [1], SR+ST / SR+GBN of Miller & Lin [3]): use the stalled
window's idle line time to repeat unacknowledged frames.  We implement
stutter as an SR-HDLC option and measure a lossy batch transfer with it
on and off.

Shape asserted: stutter strictly reduces completion time (the idle time
really was recoverable) while inflating transmissions by orders of
magnitude — the trade the paper's introduction describes, and the
overhead LAMS-DLC avoids by never stalling in the first place.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e14_stutter


def test_e14_stutter_ablation(run_once):
    result = run_once(e14_stutter)
    emit(result)
    by_mode = {row["stutter"]: row for row in result.rows}
    plain, stuttered = by_mode[False], by_mode[True]

    assert plain["completed"] and stuttered["completed"]
    assert plain["delivered"] == stuttered["delivered"] == 400

    # Stutter converts idle time into speed...
    assert stuttered["duration"] < plain["duration"]
    # ...paid for in channel occupancy.
    assert stuttered["iframes_sent"] > 5 * plain["iframes_sent"]

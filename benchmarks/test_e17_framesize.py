"""E17 — frame-size optimisation (paper Section 1 NBDT / Section 2.3).

"Absolute numbering … allows the frame size to be controlled for the
optimal size" (on NBDT) and "the overhead in short frames is
significant, which causes performance degradation" (Section 2.3).

Shape asserted: goodput over payload size is unimodal around the
optimum; the optimum shrinks as BER grows; the closed-form
``sqrt(h/BER)`` approximation lands within a few percent of the exact
integer optimum; and the paper's default 8,192-bit payload sits in the
optimal region at the paper's nominal BER of 1e-6.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.analysis import framesize
from repro.experiments.registry import e17_frame_size


def test_e17_frame_size(run_once):
    result = run_once(e17_frame_size)
    emit(result)

    by_ber: dict[float, list[dict]] = {}
    for row in result.rows:
        by_ber.setdefault(row["ber"], []).append(row)

    optima = {ber: rows[0]["optimal_bits"] for ber, rows in by_ber.items()}

    # The optimum shrinks with BER.
    bers = sorted(optima)
    assert [optima[ber] for ber in bers] == sorted(
        (optima[ber] for ber in bers), reverse=True
    )

    # Unimodality: goodput rises toward the optimum, falls after it.
    for ber, rows in by_ber.items():
        rows.sort(key=lambda row: row["payload_bits"])
        values = [row["goodput"] for row in rows]
        peak_index = values.index(max(values))
        assert values[: peak_index + 1] == sorted(values[: peak_index + 1])
        assert values[peak_index:] == sorted(values[peak_index:], reverse=True)

    # Closed-form approximation near the exact optimum.
    for ber in bers:
        exact = framesize.optimal_frame_size(80, ber)
        approx = framesize.optimal_frame_size_approx(80, ber)
        assert approx == pytest.approx(exact, rel=0.05)

    # The paper's default payload is near-optimal at its nominal BER.
    goodput_default = framesize.goodput_per_channel_bit(8192, 80, 1e-6)
    goodput_best = framesize.goodput_per_channel_bit(
        framesize.optimal_frame_size(80, 1e-6), 80, 1e-6
    )
    assert goodput_default > 0.999 * goodput_best

"""E20 — the headline comparison with statistical confidence.

Every simulation number elsewhere is a single seed; this benchmark
replicates the saturated LAMS-DLC vs SR-HDLC comparison across ten
independent seeds and reports 95% confidence intervals.

Asserted: the intervals are tight (the DES is long enough that run-to-
run noise is small), they do not overlap between protocols (the win is
statistically unambiguous), and the LAMS interval contains — or sits
within a few percent of — the Section-4 prediction.

Runs serially by default; set ``REPRO_SWEEP_JOBS=N`` to fan the per-seed
simulations over N worker processes (bit-identical summaries).
"""

from __future__ import annotations

from conftest import SWEEP_JOBS, emit

from repro.analysis import lams as lams_model
from repro.experiments.parallel import MeasureSpec, parallel_replicate
from repro.experiments.registry import ExperimentResult
from repro.workloads import preset

SEEDS = range(100, 110)
DURATION = 1.0


def run_replicated(jobs: int = SWEEP_JOBS) -> tuple[ExperimentResult, dict]:
    scenario = preset("noisy")
    summaries = {}
    rows = []
    for protocol in ("lams", "hdlc"):
        spec = MeasureSpec.create(
            "measure_saturated", scenario, protocol, duration=DURATION
        )
        summary = parallel_replicate(
            spec, "efficiency", SEEDS, jobs=jobs
        )
        summaries[protocol] = summary
        rows.append(
            {
                "protocol": protocol,
                "mean": summary.mean,
                "ci95_half_width": summary.half_width,
                "stdev": summary.stdev,
                "n_seeds": summary.count,
            }
        )
    params = scenario.model_parameters()
    model_eta = lams_model.throughput_efficiency(params, 50_000)
    result = ExperimentResult(
        "E20",
        "Saturated efficiency with 95% CIs over ten seeds (noisy preset)",
        rows,
        notes=f"Section-4 prediction for LAMS-DLC at this point: {model_eta:.4f}.",
    )
    return result, {"summaries": summaries, "model_eta": model_eta}


def test_e20_confidence_intervals(run_once):
    result, extra = run_once(run_replicated)
    emit(result)
    lams = extra["summaries"]["lams"]
    hdlc = extra["summaries"]["hdlc"]

    # Tight intervals: the measurements are stable across seeds.
    assert lams.relative_half_width() < 0.02
    assert hdlc.relative_half_width() < 0.10

    # Statistically unambiguous separation.
    assert not lams.overlaps(hdlc)
    assert lams.low > 10 * hdlc.high

    # The model's prediction is within a few percent of the LAMS CI.
    model_eta = extra["model_eta"]
    assert abs(lams.mean - model_eta) / model_eta < 0.05

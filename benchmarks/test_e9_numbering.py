"""E9 — required sequence-numbering size (paper Sections 2.3 and 3.3).

Regenerates the structural comparison: LAMS-DLC's requirement is the
constant ``⌈(R + W_cp/2 + C_depth·W_cp) / t_f⌉`` (renumbering bounds
the holding time by the resolving period), while HDLC's requirement —
one number per frame for an unbounded holding time — grows without
bound as the coverage quantile approaches 1.

Paper shape asserted: the LAMS requirement is BER-independent; the
HDLC quantile requirement increases in both the quantile and the BER
and overtakes the LAMS constant.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis import bounds
from repro.experiments.registry import e9_numbering
from repro.workloads import preset


def test_e9_numbering_requirements(run_once):
    result = run_once(e9_numbering)
    emit(result)
    rows = result.rows

    # LAMS requirement is a BER-independent constant.
    lams_values = {row["lams_required"] for row in rows}
    assert len(lams_values) == 1

    # HDLC requirement grows with the quantile at every BER...
    for row in rows:
        assert row["hdlc_q90"] <= row["hdlc_q999"] <= row["hdlc_q999999"]
    # ...and with BER at a fixed high quantile.
    q999999 = [row["hdlc_q999999"] for row in sorted(rows, key=lambda r: r["ber"])]
    assert q999999 == sorted(q999999)

    # At high coverage the HDLC requirement exceeds the LAMS constant.
    lams_required = rows[0]["lams_required"]
    assert rows[-1]["hdlc_q999999"] > lams_required


def test_e9_bound_matches_config_validator(run_once):
    """The analysis bound and the protocol config's validator agree."""
    scenario = preset("long_haul")
    params = scenario.model_parameters()
    config = scenario.lams_config()
    assert run_once(bounds.lams_required_numbering_size, params) == config.required_numbering_size(
        scenario.round_trip_time, scenario.iframe_time
    )

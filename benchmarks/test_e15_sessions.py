"""E15 — short link lifetimes and retargeting overhead (paper Section 1).

"Each link in a LAMS network is active during a relatively short time
period ... LAMS networks also have a large retargeting overhead which
occupies a significant portion of the link lifetime.  Thus LAMS-DLC
should be designed to ... maximize the throughput efficiency during the
short time period available for data delivery."

The session manager runs both protocols over four 0.5 s passes
separated by gaps, with small (10 ms) and large (100 ms) per-pass
initialisation overheads, carrying unresolved traffic across passes.

Shape asserted: zero loss for both protocols across session teardowns;
goodput per second of link time decreases with overhead for both; and
LAMS-DLC's goodput exceeds SR-HDLC's several-fold at every overhead —
the paper's core design argument.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e15_link_sessions


def test_e15_link_sessions(run_once):
    result = run_once(e15_link_sessions)
    emit(result)
    rows = result.rows
    by_key = {(row["protocol"], row["init_overhead_s"]): row for row in rows}

    # Zero loss across every session teardown and carry-over.
    for row in rows:
        assert row["lost"] == 0
        assert row["passes"] == 4

    # Overhead strictly reduces goodput for both protocols.
    for protocol in ("lams", "hdlc"):
        assert (
            by_key[(protocol, 0.10)]["goodput_eff"]
            < by_key[(protocol, 0.01)]["goodput_eff"]
        )

    # LAMS-DLC dominates at every overhead level.
    for overhead in (0.01, 0.10):
        assert (
            by_key[("lams", overhead)]["goodput_eff"]
            > 3 * by_key[("hdlc", overhead)]["goodput_eff"]
        )

    # LAMS-DLC fills the usable link time: > 0.7 efficiency even with
    # 20% of each pass burned on retargeting.
    assert by_key[("lams", 0.10)]["goodput_eff"] > 0.7

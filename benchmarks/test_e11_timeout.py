"""E11 — HDLC timeout-margin sensitivity (paper Section 4).

The paper argues ``t_out = R + alpha`` must carry a large margin
``alpha >= R_max - R`` in a high-mobility network (large ``var(R_t)``),
and that this margin is pure loss for SR-HDLC's retransmission periods.
The orbit model supplies a physically derived ``alpha`` for a real
LEO pair; the sweep extends well beyond it.

Paper shape asserted: η_HDLC is non-increasing in alpha; η_LAMS does
not depend on alpha at all; the orbit-derived alpha sits inside the
swept range.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e11_alpha_sensitivity


def test_e11_alpha_sensitivity(run_once):
    result = run_once(e11_alpha_sensitivity)
    emit(result)
    rows = sorted(result.rows, key=lambda row: row["alpha"])

    eta_hdlc = [row["eta_hdlc"] for row in rows]
    eta_lams = [row["eta_lams"] for row in rows]

    # HDLC decays (weakly) with alpha; strictly between the extremes.
    assert eta_hdlc == sorted(eta_hdlc, reverse=True)
    assert eta_hdlc[-1] < eta_hdlc[0]

    # LAMS-DLC is exactly alpha-independent.
    assert len(set(eta_lams)) == 1

    # The orbit-derived alpha was included in the sweep.
    assert any(row["is_orbit_alpha"] for row in rows)

    # And LAMS-DLC wins at every margin.
    for l, h in zip(eta_lams, eta_hdlc):
        assert l > h

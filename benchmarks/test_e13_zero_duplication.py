"""E13 — ablation: the zero-duplication extension (paper Section 3.2).

The paper: "Note, however, that it may lead to I-frame duplication if
the link failure is not recoverable during the link lifetime.  A more
recent version of LAMS-DLC guarantees zero duplication as well as zero
loss, however the analysis for this model has yet to be completed."

We implemented that more recent version (receiver-side suppression of
duplicate incarnations) and measure both variants across an identical
enforced-recovery scenario.

Shape asserted: zero loss in both variants; duplicates strictly
positive without the extension and exactly zero with it; retransmission
effort unchanged (the suppression is receive-side only).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.registry import e13_zero_duplication


def test_e13_zero_duplication(run_once):
    result = run_once(e13_zero_duplication)
    emit(result)
    by_mode = {row["zero_duplication"]: row for row in result.rows}
    baseline, extended = by_mode[False], by_mode[True]

    # Both recover and lose nothing.
    for row in (baseline, extended):
        assert row["recovered"]
        assert row["lost"] == 0
        assert row["delivered_unique"] == 3000

    # The corner the paper admits: duplicates without the extension...
    assert baseline["duplicates"] > 0
    # ...and the extension's guarantee: none with it.
    assert extended["duplicates"] == 0

    # Same sender behaviour — the fix costs nothing on the link.
    assert extended["retransmissions"] == baseline["retransmissions"]

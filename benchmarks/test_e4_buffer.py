"""E4 — transparent buffer size: B_LAMS finite, B_HDLC = ∞ (Section 4).

Two parts:

- **Model**: ``B_LAMS = s̄(R + (n̄_cp-½)I_cp)/t_f + t_proc/t_f`` over
  distance and checkpoint interval, with ``B_HDLC = ∞`` alongside.
- **Simulation**: constant 80%-of-line-rate offered load; LAMS-DLC's
  sending buffer plateaus near the model's B_LAMS while SR-HDLC's grows
  between the mid-run and end-of-run samples (no transparent size).
"""

from __future__ import annotations

import math

from conftest import emit

from repro.experiments.registry import e4_buffer_model, e4_buffer_simulation


def test_e4_model_buffer_sizes(run_once):
    result = run_once(e4_buffer_model)
    emit(result)

    rows = result.rows
    # B_LAMS grows with distance (R) at fixed I_cp...
    for i_cp in {row["i_cp"] for row in rows}:
        series = sorted(
            (row for row in rows if row["i_cp"] == i_cp),
            key=lambda row: row["distance_km"],
        )
        values = [row["b_lams_frames"] for row in series]
        assert values == sorted(values)
    # ...and with I_cp at fixed distance.
    for distance in {row["distance_km"] for row in rows}:
        series = sorted(
            (row for row in rows if row["distance_km"] == distance),
            key=lambda row: row["i_cp"],
        )
        values = [row["b_lams_frames"] for row in series]
        assert values == sorted(values)
    # HDLC has no transparent size anywhere.
    assert all(math.isinf(row["b_hdlc"]) for row in rows)


def test_e4_simulated_divergence(run_once):
    result = run_once(e4_buffer_simulation, duration=2.0)
    emit(
        result,
        columns=[
            "protocol", "load", "occupancy_mid", "occupancy_end",
            "growth", "efficiency", "b_lams_model",
        ],
    )
    by_protocol = {row["protocol"]: row for row in result.rows}
    lams, hdlc = by_protocol["lams"], by_protocol["hdlc"]

    # LAMS-DLC: plateau — growth is a rounding-noise fraction of the level.
    assert abs(lams["growth"]) < 0.1 * max(1.0, lams["occupancy_end"])
    # Its plateau sits within a small factor of the model's B_LAMS.
    assert lams["occupancy_end"] < 3.0 * lams["b_lams_model"]

    # SR-HDLC: strict, large growth — the unbounded buffer in action.
    assert hdlc["growth"] > 10 * max(1.0, abs(lams["growth"]))
    assert hdlc["occupancy_end"] > 2 * hdlc["occupancy_mid"] * 0.9

    # And the throughput gap that causes it.
    assert lams["efficiency"] > 5 * hdlc["efficiency"]

# Development targets for the LAMS-DLC reproduction.

PYTHON ?= python3

.PHONY: install test bench report examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

report:
	$(PYTHON) -m repro report --output evaluation_report.txt

examples:
	for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} +

# Development targets for the LAMS-DLC reproduction.

PYTHON ?= python3

.PHONY: install test build-ext bench bench-smoke bench-sweep report examples sweep-smoke faults-smoke soak-smoke constellation-smoke transport-smoke transport-soak-smoke channels-smoke clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Build the optional compiled engine core in place (docs/TUNING.md
# "Compiled core").  Everything works without it; REPRO_ENGINE=compiled
# just warns and falls back to the pure loop until this has run.
build-ext:
	$(PYTHON) setup.py build_ext --inplace

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Fast (<60s) hot-path regression check: the E22 micro/meso benchmarks
# plus a fresh BENCH_hotpath.json perf baseline (see docs/TUNING.md).
# The trailing compare diffs the new history record against the
# previous one — informational only (the leading '-' keeps a >=10%
# swing from failing the target; use `bench-baseline --compare
# --strict` in CI when a hard gate is wanted).
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_e22_hotpath.py -q -s
	PYTHONPATH=src $(PYTHON) -m repro bench-baseline --repeats 2 \
		--duration 1.0 --micro-events 100000
	-PYTHONPATH=src $(PYTHON) -m repro bench-baseline --compare

# Sweep-scaling smoke: the E23 benchmarks run a tiny replicated sweep
# serially and over a warm jobs=2 pool and assert the parallel and
# streamed results are bit-identical to serial, plus that a cache-hot
# re-run executes zero simulations (see docs/TUNING.md "Sweep scaling").
bench-sweep:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_e23_sweepscale.py -q -s

report:
	$(PYTHON) -m repro report --output evaluation_report.txt

# A two-job parallel mini-sweep: exercises the multiprocessing pool,
# the on-disk result cache, and the unified endpoint-pair API end to end.
sweep-smoke:
	PYTHONPATH=src $(PYTHON) -m repro sweep --preset short_hop \
		--protocols lams hdlc --seeds 2 --duration 0.05 \
		--metrics efficiency --jobs 2 --cache-dir .sweep-cache

# The fault-injection matrix (E21) through the sweep runner: outage
# detection and declared-failure latency checked against the paper's
# C_depth*W_cp bounds, with zero frame loss in every cell.
faults-smoke:
	PYTHONPATH=src $(PYTHON) -m repro sweep --experiments E21 \
		--jobs 2 --cache-dir .sweep-cache

# A short randomized chaos soak under the runtime invariant monitors
# (docs/INVARIANTS.md): every episode draws a fresh scenario, fault
# plan, and workload from the fixed master seed; any invariant
# violation fails the target with a reproducer command.
soak-smoke:
	PYTHONPATH=src $(PYTHON) -m repro soak --episodes 12 --seed 20260806 \
		--jobs 2 --fail-fast

# Constellation-layer smoke (docs/TOPOLOGY.md): a tiny 4-node ring
# through the `constellation` CLI, then the E24 experiment with its
# determinism-certifying scale cell shrunk to a dozen links.
constellation-smoke:
	PYTHONPATH=src $(PYTHON) -m repro constellation --topology ring \
		--size 4 --messages 10 --duration 0.5
	PYTHONPATH=src $(PYTHON) -c "\
	from repro.experiments import run_experiment; \
	result = run_experiment('E24', scale_links=12, duration=0.5); \
	assert all(row['delivery_ratio'] == 1.0 for row in result.rows), result.rows; \
	assert all(row['deterministic'] in (None, True) for row in result.rows), result.rows; \
	print('E24 ok:', ', '.join(row['cell'] for row in result.rows))"

# Transport-backend smoke (docs/TRANSPORT.md): a loopback LAMS-DLC
# transfer over real asyncio-UDP sockets with the invariant monitors
# armed (clean + lossy golden scenarios), then the DES-vs-UDP
# conformance harness asserting byte-identical delivery and identical
# monitor verdicts on both backends.
transport-smoke:
	PYTHONPATH=src $(PYTHON) -m repro transmit --golden clean --frames 24 \
		--timeout 20
	PYTHONPATH=src $(PYTHON) -m repro transmit --golden lossy --frames 24 \
		--timeout 20
	PYTHONPATH=src $(PYTHON) -m repro transmit --conform --frames 32 \
		--timeout 20

# Live chaos-soak on the UDP backend (docs/TRANSPORT.md "Resilience"):
# seeded episodes run as supervised real-time loopback sessions with
# transport-level fault injection (endpoint stalls, peer restarts,
# handshake blackholes, send-error bursts); the supervisor must ride
# every fault out via reconnect + backlog replay with zero invariant
# violations, and fault-free episodes are cross-checked against the
# DES reference digest.
transport-soak-smoke:
	PYTHONPATH=src $(PYTHON) -m repro soak --backend udp --episodes 3 \
		--seed 7 --fail-fast

# Time-varying channel smoke (docs/CHANNELS.md): synthesize a
# Gilbert–Elliott error trace, replay it, and verify the
# delivered-payload digest reproduces bit-identically; then a
# two-point E25 cell asserting throughput degrades when only the
# feedback (checkpoint/NAK) direction loses frames.
channels-smoke:
	PYTHONPATH=src $(PYTHON) -m repro trace-synth --preset noisy \
		--model gilbert-elliott \
		--params '{"good_ber": 1e-7, "bad_ber": 1e-4, "mean_good": 0.02, "mean_bad": 0.004}' \
		--frames 150 --seed 3 --output .channels-smoke-trace.jsonl --verify
	PYTHONPATH=src $(PYTHON) -c "\
	from repro.experiments import run_experiment; \
	result = run_experiment('E25', duration=0.5, \
		feedback_bers=(0.0, 5e-3), depths=(2,)); \
	clean, lossy = result.rows; \
	assert lossy['efficiency'] < clean['efficiency'], result.rows; \
	print('E25 ok: efficiency %.3f -> %.3f under feedback loss' \
		% (clean['efficiency'], lossy['efficiency']))"

examples:
	for script in examples/*.py; do \
		echo "=== $$script ==="; \
		PYTHONPATH=src $(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .sweep-cache
	rm -f .channels-smoke-trace.jsonl src/repro/simulator/_speedups*.so
	find . -name __pycache__ -type d -prune -exec rm -rf {} +

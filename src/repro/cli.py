"""Command-line interface: ``python -m repro <command>``.

The commands cover the library's everyday uses:

- ``experiments list`` / ``experiments run <id>`` — the E1–E19 registry.
- ``model`` — the Section-4 closed-form quantities at one operating point.
- ``compare`` — model-level LAMS-DLC vs SR-HDLC at one operating point.
- ``simulate`` — run an executable protocol (LAMS-DLC, SR-HDLC, GBN, or
  NBDT) over a simulated link.
- ``sweep`` — replicated measurements (or registry experiments) over a
  ``multiprocessing`` pool with an on-disk result cache (``--jobs N``,
  ``--cache-dir``, ``--no-cache``).
- ``soak`` — randomized chaos episodes under the full invariant-monitor
  suite (``--episodes N --seed S --jobs J --fail-fast``); exits
  non-zero if any invariant was violated, printing each violation with
  its trace window and reproducer command.
- ``transmit`` / ``serve`` — run LAMS-DLC over the real asyncio-UDP
  transport backend: loopback sessions with the invariant monitors
  attached (``transmit``), the DES-vs-UDP conformance harness
  (``transmit --conform``), or one endpoint per process
  (``serve`` + ``transmit --connect HOST:PORT``).  See
  ``docs/TRANSPORT.md``.
- ``orbit`` — LEO pair geometry: visibility windows and RTT statistics.
- ``trace-synth`` — record a replayable error trace from any registered
  model driving a batch transfer (``--verify`` replays it and checks
  the delivered-payload digest bit-identically); see docs/CHANNELS.md.
- ``channels`` — list or describe the registered error models
  (``--model NAME --timeline`` prints a time-varying model's BER).
- ``report`` — regenerate the full evaluation as one document.

Every command accepts ``--preset`` (short_hop / nominal / long_haul /
noisy) plus overrides for the physical and protocol knobs.

The cross-cutting knobs — ``--seed``, ``--jobs``/``--chunksize``,
``--error-model``, ``--fault-plan`` — are defined once as argparse
*parent parsers* and shared by every command that accepts them, so
they spell and behave identically everywhere.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import bounds, compare, delay
from .analysis import hdlc as hdlc_model
from .analysis import lams as lams_model
from .experiments import experiment_ids, render_table, run_experiment
from .experiments.runner import measure_batch_transfer, measure_saturated
from .simulator.orbit import Satellite, rtt_statistics, visibility_windows
from .workloads import preset
from .workloads.scenarios import LinkScenario

__all__ = ["main", "build_parser"]


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", default="nominal",
                        help="scenario preset (short_hop/nominal/long_haul/noisy)")
    parser.add_argument("--bit-rate", type=float, default=None, help="bits/second")
    parser.add_argument("--distance-km", type=float, default=None)
    parser.add_argument("--iframe-ber", type=float, default=None)
    parser.add_argument("--cframe-ber", type=float, default=None)
    parser.add_argument("--checkpoint-interval", type=float, default=None,
                        help="W_cp in seconds")
    parser.add_argument("--cumulation-depth", type=int, default=None, help="C_depth")
    parser.add_argument("--window-size", type=int, default=None, help="HDLC W")
    parser.add_argument("--alpha", type=float, default=None,
                        help="HDLC timeout margin t_out - R")


def _scenario_from_args(args: argparse.Namespace) -> LinkScenario:
    scenario = preset(args.preset)
    overrides = {}
    for field in ("bit_rate", "distance_km", "iframe_ber", "cframe_ber",
                  "checkpoint_interval", "cumulation_depth", "window_size", "alpha"):
        value = getattr(args, field)
        if value is not None:
            overrides[field] = value
    return scenario.with_(**overrides) if overrides else scenario


# -- shared parent parsers --------------------------------------------------
#
# One definition per cross-cutting knob; every subcommand that accepts
# the knob lists the parent, so help text, types, and defaults cannot
# drift between commands.


def _seed_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=0,
                        help="simulation / master seed (derived streams "
                             "make runs reproducible)")
    return parent


def _pool_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--jobs", type=int, default=1,
                        help="worker processes")
    parent.add_argument("--chunksize", type=int, default=0,
                        help="work units per worker dispatch (0 = adaptive)")
    return parent


def _error_model_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--error-model", default=None,
                        help="registered error-model name for both frame "
                             "classes (perfect/bernoulli/gilbert-elliott/...)")
    return parent


def _fault_plan_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--fault-plan", default=None, metavar="FILE",
                        help="JSON FaultPlan to inject during the run "
                             "(see docs/FAULTS.md)")
    return parent


def _validate_pool_args(args: argparse.Namespace) -> Optional[str]:
    """Shared --jobs/--chunksize validation; an error message or None."""
    if args.jobs < 1:
        return "--jobs must be >= 1"
    if args.chunksize < 0:
        return "--chunksize must be >= 0 (0 = adaptive)"
    return None


def _apply_error_model_arg(
    scenario: LinkScenario, args: argparse.Namespace,
) -> Optional[LinkScenario]:
    """Fold a validated --error-model into the scenario; None on error."""
    name = getattr(args, "error_model", None)
    if name is None:
        return scenario
    from .simulator.errormodel import available_error_models

    if name.lower() not in available_error_models():
        print(f"error: unknown error model {name!r} "
              f"(use one of: {', '.join(available_error_models())})",
              file=sys.stderr)
        return None
    return scenario.with_(iframe_error_model=name, cframe_error_model=name)


def _load_fault_plan_arg(args: argparse.Namespace) -> tuple[Optional[object], bool]:
    """Load a --fault-plan file; ``(plan, ok)`` with errors printed."""
    path = getattr(args, "fault_plan", None)
    if path is None:
        return None, True
    from .faults import FaultPlan

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return FaultPlan.from_json(handle.read()), True
    except (OSError, ValueError, TypeError) as error:
        print(f"error: cannot load fault plan {path!r}: {error}",
              file=sys.stderr)
        return None, False


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.action == "list":
        for eid in experiment_ids():
            result_fn = run_experiment.__globals__["REGISTRY"][eid]
            doc = (result_fn.__doc__ or "").strip().splitlines()[0]
            print(f"{eid:8s} {doc}")
        return 0
    result = run_experiment(args.id)
    print(render_table(result.rows, title=f"[{result.experiment_id}] {result.title}"))
    if result.notes:
        print(f"\nnote: {result.notes}")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    params = scenario.model_parameters()
    n = args.frames
    rows = [
        {"quantity": "P_F (I-frame error prob)", "value": params.p_f},
        {"quantity": "P_C (control error prob)", "value": params.p_c},
        {"quantity": "s_bar LAMS", "value": lams_model.s_bar(params)},
        {"quantity": "s_bar HDLC", "value": hdlc_model.s_bar(params)},
        {"quantity": "H_frame LAMS (s)", "value": lams_model.holding_time(params)},
        {"quantity": "B_LAMS (frames)", "value": lams_model.transparent_buffer_size(params)},
        {"quantity": f"D_low LAMS(N={n}) (s)",
         "value": lams_model.total_delivery_time_low(params, n)},
        {"quantity": f"D_low HDLC(N={n}) (s)",
         "value": hdlc_model.total_delivery_time_low(params, min(n, params.window_size))},
        {"quantity": f"eta LAMS (N={n})",
         "value": lams_model.throughput_efficiency(params, n)},
        {"quantity": f"eta HDLC (N={n})",
         "value": hdlc_model.throughput_efficiency(params, n)},
        {"quantity": "numbering required (LAMS)",
         "value": bounds.lams_required_numbering_size(params)},
        {"quantity": "inconsistency gap bound (s)",
         "value": bounds.lams_inconsistency_gap(params)},
        {"quantity": "delay p50 LAMS (s)", "value": delay.lams_delay_quantile(params, 0.5)},
        {"quantity": "delay p99.99 LAMS (s)",
         "value": delay.lams_delay_quantile(params, 0.9999)},
    ]
    print(render_table(rows, title=f"Section-4 model at preset '{scenario.name}'"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    row = compare.comparison_row(scenario.model_parameters(), args.frames)
    print(render_table([row], title=f"LAMS-DLC vs SR-HDLC at preset '{scenario.name}' "
                                    f"(N={args.frames})"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = _apply_error_model_arg(_scenario_from_args(args), args)
    if scenario is None:
        return 2
    plan, ok = _load_fault_plan_arg(args)
    if not ok:
        return 2
    if plan is not None:
        from .experiments.runner import measure_fault_plan

        if args.saturated:
            print("error: --fault-plan runs a finite batch; drop --saturated",
                  file=sys.stderr)
            return 2
        result = measure_fault_plan(
            scenario, plan, total_time=args.duration,
            n_frames=args.frames, seed=args.seed, protocol=args.protocol,
        )
        print(render_table([result], title=f"simulated {args.protocol} under "
                                           f"fault plan '{plan.name}' "
                                           f"({len(plan)} faults)"))
        return 0
    if args.saturated:
        result = measure_saturated(scenario, args.protocol, args.duration, seed=args.seed)
    else:
        result = measure_batch_transfer(
            scenario, args.protocol, args.frames, seed=args.seed,
            max_time=args.duration,
        )
    print(render_table([result], title=f"simulated {args.protocol} over "
                                       f"preset '{scenario.name}'"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.parallel import (
        MeasureSpec,
        ResultCache,
        SweepPool,
        parallel_replicate_all,
        replication_seeds,
        resolve_jobs,
        run_experiments_parallel,
    )
    from .simulator.trace import Tracer

    problem = _validate_pool_args(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    plan, ok = _load_fault_plan_arg(args)
    if not ok:
        return 2
    if args.experiments and (plan is not None or args.error_model is not None):
        print("error: --fault-plan/--error-model shape the scenario; "
              "registry experiments (--experiments) define their own",
              file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    stats = Tracer()
    # One warm pool for the whole invocation: every protocol (or
    # experiment batch) reuses the same initialized workers.  On a
    # single-core host the request resolves to serial — no pool.
    jobs = resolve_jobs(args.jobs)
    pool = SweepPool(jobs) if jobs > 1 else None

    try:
        if args.experiments:
            try:
                results = run_experiments_parallel(
                    args.experiments, jobs=jobs, cache=cache, stats=stats,
                    pool=pool, chunksize=args.chunksize,
                )
            except KeyError as error:
                print(f"error: {error.args[0]}", file=sys.stderr)
                return 2
            for eid in args.experiments:
                result = results[eid]
                print(render_table(
                    result.rows, title=f"[{result.experiment_id}] {result.title}"
                ))
                print()
        else:
            from .core.endpoint import resolve_protocol

            try:
                for protocol in args.protocols:
                    resolve_protocol(protocol)
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            scenario = _apply_error_model_arg(_scenario_from_args(args), args)
            if scenario is None:
                return 2
            master_seed = (args.master_seed if args.master_seed is not None
                           else args.seed)
            seeds = replication_seeds(master_seed, args.seeds)
            rows = []
            for protocol in args.protocols:
                if plan is not None:
                    # Replicated fault-plan runs: the plan rides in the
                    # MeasureSpec kwargs (protocol too — the runner takes
                    # it as a keyword), and the cache is skipped because
                    # FaultPlan objects are not cache-key serialisable.
                    spec = MeasureSpec.create(
                        "measure_fault_plan", scenario, None,
                        fault_plan=plan, total_time=args.duration,
                        protocol=protocol,
                    )
                    point_cache = None
                else:
                    spec = MeasureSpec.create(
                        "measure_saturated", scenario, protocol,
                        duration=args.duration,
                    )
                    point_cache = cache
                # Streaming aggregation: summaries fold in as results
                # arrive, bit-identical to batch (docs/API.md).
                try:
                    summaries = parallel_replicate_all(
                        spec, args.metrics, seeds, jobs=jobs,
                        cache=point_cache, stats=stats,
                        pool=pool, chunksize=args.chunksize, streaming=True,
                    )
                except KeyError as error:
                    print(f"error: metric {error.args[0]!r} is not in the "
                          f"runner's output; pick --metrics from the "
                          f"{spec.runner} result columns", file=sys.stderr)
                    return 2
                for metric in args.metrics:
                    summary = summaries[metric]
                    rows.append({
                        "protocol": protocol,
                        "metric": metric,
                        "mean": summary.mean,
                        "ci95_half_width": summary.half_width,
                        "n": summary.count,
                    })
            print(render_table(
                rows,
                title=f"replicated sweep over preset '{scenario.name}' "
                      f"({args.seeds} seeds, master {master_seed})",
            ))
    finally:
        if pool is not None:
            pool.close()
        if cache is not None:
            cache.close()

    executed = stats.counter("sweep.executed").value
    hits = stats.counter("sweep.cache_hits").value
    workers = sorted(
        name.split(".")[2]
        for name in stats.counters
        if name.startswith("sweep.worker.") and name.endswith(".tasks")
    )
    start = f", start={pool.start_method}" if pool is not None else ""
    print(f"\nsweep: {executed} executed, {hits} cached "
          f"(jobs={jobs}, workers={len(workers) or 1}{start}"
          f"{'' if cache is None else ', cache=' + cache.root})")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .experiments.parallel import ResultCache

    with ResultCache(args.cache_dir) as cache:
        if args.action == "info":
            info = cache.info()
            print(f"cache {cache.root}: {info['entries']} entries in "
                  f"{info['shards']} shard(s), {info['v1_files']} legacy "
                  f"v1 file(s)")
            return 0
        if args.action == "clear":
            removed = cache.clear()
            print(f"cache {cache.root}: removed {removed} entries")
            return 0
        # migrate: absorb v1 per-point files and compact shards.
        report = cache.migrate()
        print(f"cache {cache.root}: {report['entries']} entries in one "
              f"compacted shard ({report['v1_absorbed']} v1 files absorbed, "
              f"{report['shards_compacted']} old shards compacted)")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .analysis.tuning import recommend_config

    config, rationale = recommend_config(
        bit_rate=args.bit_rate,
        distance_km=args.distance_km,
        iframe_ber=args.iframe_ber,
        cframe_ber=args.cframe_ber,
        mean_burst=args.mean_burst,
        wait_budget=args.wait_budget,
    )
    rows = [
        {"knob": "payload_bits", "value": config.iframe_payload_bits,
         "rule": rationale["payload_rule"]},
        {"knob": "checkpoint_interval_s", "value": config.checkpoint_interval,
         "rule": rationale["checkpoint_rule"]},
        {"knob": "cumulation_depth", "value": config.cumulation_depth,
         "rule": rationale["cumulation_rule"]},
        {"knob": "numbering_bits", "value": config.numbering_bits,
         "rule": rationale["numbering_rule"]},
        {"knob": "failure_detection_s",
         "value": rationale["failure_detection_latency"], "rule": "C_depth * W_cp"},
    ]
    print(render_table(rows, title=f"recommended LAMS-DLC configuration "
                                   f"({args.bit_rate/1e6:.0f} Mbps x "
                                   f"{args.distance_km:.0f} km, "
                                   f"BER {args.iframe_ber:g})"))
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from .chaos import run_soak
    from .experiments.parallel import SweepPool, resolve_jobs

    if args.episodes < 1:
        print("error: --episodes must be >= 1", file=sys.stderr)
        return 2
    problem = _validate_pool_args(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2

    def progress(report: dict) -> None:
        status = "ok" if report["ok"] else "VIOLATION"
        if report.get("backend") == "udp":
            reason = report.get("failure_reason")
            outcome = "completed" if report["completed"] else f"failed:{reason}"
            print(f"episode[{report['episode']:>3}] {report['scenario']:<28} "
                  f"faults={len(report['fault_plan'].get('faults', ()))} "
                  f"delivered={report['delivered']}/{report['n_frames']} "
                  f"reconnects={report['reconnects']} {outcome} {status}")
        else:
            print(f"episode[{report['episode']:>3}] {report['scenario']:<28} "
                  f"faults={len(report['fault_plan'].get('faults', ()))} "
                  f"delivered={report['delivered']}/{report['offered']} "
                  f"failures={report['failures_declared']} {status}")

    jobs = resolve_jobs(args.jobs)
    pool = SweepPool(jobs) if jobs > 1 else None
    try:
        result = run_soak(
            episodes=args.episodes, master_seed=args.seed, jobs=jobs,
            fail_fast=args.fail_fast, only=args.only, progress=progress,
            pool=pool, chunksize=args.chunksize, backend=args.backend,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if pool is not None:
            pool.close()

    summary = result.summary()
    print(f"\nsoak: {summary['episodes_completed']}/"
          f"{summary['episodes_requested']} episodes "
          f"(master seed {summary['master_seed']}), "
          f"{summary['violations']} violation(s)"
          f"{', stopped early' if summary['stopped_early'] else ''}")
    if not result.violations:
        print("all invariants held")
        return 0
    for episode in result.episodes:
        for violation in episode.get("violations", ()):
            print(f"\n-- {violation['invariant']} at t={violation['time']:.6f} "
                  f"(episode {episode['episode']})")
            print(f"   {violation['message']}")
            command = episode.get("reproducer", {}).get("command")
            if command:
                print(f"   reproduce: {command}")
            for line in violation.get("trace_window", ())[-10:]:
                print(f"   | {line}")
    return 1


def _cmd_constellation(args: argparse.Namespace) -> int:
    from .topology import (
        LinkSpec,
        build_constellation,
        chain_topology,
        cross_traffic,
        grid_topology,
        ring_topology,
    )

    if args.duration <= 0:
        print("error: --duration must be positive", file=sys.stderr)
        return 2
    scenario = _apply_error_model_arg(_scenario_from_args(args), args)
    if scenario is None:
        return 2
    template = LinkSpec(scenario=scenario)
    if args.topology == "ring":
        topo = ring_topology(args.size, template, name=f"ring-{args.size}")
    elif args.topology == "chain":
        topo = chain_topology(args.size, template, name=f"chain-{args.size}")
    else:
        per_plane = max(3, args.size // max(1, args.planes))
        topo = grid_topology(args.planes, per_plane, template,
                             name=f"grid-{args.planes}x{per_plane}")
    flows = cross_traffic(
        topo.node_names(), stride=args.stride, messages=args.messages,
        interval=args.duration / max(1, 2 * args.messages),
    )
    constellation = build_constellation(
        topo, master_seed=args.seed, flows=flows, horizon=args.duration,
        probe_interval=args.duration / 50.0,
        dynamic_routing=args.dynamic_routing,
    )
    constellation.run(until=args.duration)
    rollup = constellation.network_rollup()
    print(render_table(
        constellation.link_summaries(),
        title=f"{topo.name}: {len(topo.nodes)} nodes, "
              f"{len(topo.links)} LAMS-DLC links, {len(flows)} flows, "
              f"{args.duration:g}s (seed {args.seed})",
    ))
    print()
    print(render_table(
        [{"quantity": key, "value": rollup[key]} for key in sorted(rollup)],
        title="network rollup",
    ))
    return 0


def _parse_hostport(value: str, default_port: int = 47901) -> tuple[str, int]:
    """``HOST[:PORT]`` -> ``(host, port)``; raises ValueError."""
    host, sep, port = value.rpartition(":")
    if not sep:
        return value, default_port
    if not host:
        raise ValueError(f"missing host in {value!r}")
    return host, int(port)


def _transport_scenario(args: argparse.Namespace) -> Optional[LinkScenario]:
    """The scenario a transport command runs: golden or preset-derived."""
    if getattr(args, "golden", None) is not None:
        from .transport.conformance import golden_scenario

        scenario = golden_scenario(args.golden)
    else:
        scenario = _scenario_from_args(args)
    return _apply_error_model_arg(scenario, args)


def _cmd_transmit(args: argparse.Namespace) -> int:
    if args.frames < 1:
        print("error: --frames must be >= 1", file=sys.stderr)
        return 2
    if args.conform and args.connect:
        print("error: --conform runs loopback sessions; drop --connect",
              file=sys.stderr)
        return 2
    plan, ok = _load_fault_plan_arg(args)
    if not ok:
        return 2

    if args.conform:
        if plan is not None or args.error_model is not None:
            print("error: --conform runs the fixed golden scenarios; drop "
                  "--fault-plan/--error-model", file=sys.stderr)
            return 2
        from .transport.conformance import run_conformance

        names = [args.golden] if args.golden is not None else None
        reports = run_conformance(
            names, seed=args.seed, n_frames=args.frames,
            payload_bytes=args.payload_bytes, timeout=args.timeout,
        )
        for report in reports:
            print(report.summary())
        matches = all(report.matches for report in reports)
        print(f"\nconformance: {sum(r.matches for r in reports)}/"
              f"{len(reports)} scenario(s) match across backends")
        return 0 if matches else 1

    scenario = _transport_scenario(args)
    if scenario is None:
        return 2

    if args.connect:
        from .transport.session import run_client

        try:
            peer = _parse_hostport(args.connect)
        except ValueError as error:
            print(f"error: bad --connect address: {error}", file=sys.stderr)
            return 2
        report = run_client(
            scenario, connect=peer, seed=args.seed, n_frames=args.frames,
            payload_bytes=args.payload_bytes, timeout=args.timeout,
            install_signals=True,
        )
        status = "complete" if report.completed else f"INCOMPLETE:{report.reason}"
        print(f"transmit -> {peer[0]}:{peer[1]}: offered {report.offered} "
              f"frame(s), {report.retransmissions} retransmission(s), "
              f"{report.held_remaining} still held, "
              f"{report.elapsed:.2f}s [{status}]")
        if report.reason == "interrupted":
            return 130
        return 0 if report.completed else 1

    from .transport.session import run_transfer

    result = run_transfer(
        scenario, "lams", args.seed,
        n_frames=args.frames, payload_bytes=args.payload_bytes,
        timeout=args.timeout, jitter=args.jitter, drop=args.drop,
        fault_plan=plan, run_with_invariants=not args.no_invariants,
        install_signals=True,
    )
    digest = "match" if result.digest == result.expected_digest else "MISMATCH"
    incomplete = ""
    if not result.completed:
        incomplete = f" [INCOMPLETE:{result.failure_reason}]"
    print(f"transport loopback: {result.scenario} (seed {result.seed}, "
          f"{result.n_frames} frames)")
    print(f"delivered {result.delivered_unique}/{result.n_frames} unique "
          f"({result.duplicates} duplicate(s)), digest {digest}, "
          f"{result.elapsed:.2f}s{incomplete}")
    stats = result.stats
    print(f"forward: {stats['forward_frames_sent']} frame(s) sent, "
          f"{stats['forward_frames_corrupted']} corrupted, "
          f"{stats['forward_frames_dropped']} dropped; "
          f"retransmissions {stats['retransmissions']}")
    if result.monitors is None:
        print("invariants: monitors disabled (--no-invariants)")
    else:
        print(f"invariants: {result.monitors.report()}")
    if result.failure_reason == "interrupted":
        return 130
    return 0 if result.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    scenario = _transport_scenario(args)
    if scenario is None:
        return 2
    try:
        bind = _parse_hostport(args.bind)
    except ValueError as error:
        print(f"error: bad --bind address: {error}", file=sys.stderr)
        return 2
    from .transport.session import run_serve

    print(f"serving {scenario.name} on {bind[0]}:{bind[1]} "
          f"for {args.duration:g}s ...")
    report = run_serve(
        scenario, bind=bind, seed=args.seed, duration=args.duration,
        install_signals=True,
    )
    print(f"serve: {report.received_unique} unique payload(s) "
          f"({report.duplicates} duplicate(s)), "
          f"{report.datagrams_received} datagram(s) "
          f"({report.datagrams_undecodable} undecodable), "
          f"digest {report.digest[:16]}..., {report.elapsed:.1f}s "
          f"[{report.reason}]")
    return 130 if report.reason == "interrupted" else 0


def _cmd_bench_baseline(args: argparse.Namespace) -> int:
    from .benchmark import (
        compare_last_two,
        profile_hotpath_bench,
        run_hotpath_bench,
        write_baseline,
    )

    if args.compare:
        try:
            comparison = compare_last_two(args.history,
                                          threshold=args.compare_threshold)
        except (OSError, ValueError) as error:
            print(f"bench-compare: {error}", file=sys.stderr)
            return 2 if args.strict else 0
        old = (comparison["old_commit"] or "unknown")[:12]
        new = (comparison["new_commit"] or "unknown")[:12]
        print(f"bench-compare: {old} -> {new} "
              f"(threshold {comparison['threshold']:.0%})")
        for caveat in comparison["caveats"]:
            print(f"  note: {caveat}")
        for row in comparison["rows"]:
            marker = ("REGRESSED" if row["regressed"]
                      else "improved" if row["improved"] else "ok")
            print(f"  {row['metric']:<42} {row['old']:>14,.1f} -> "
                  f"{row['new']:>14,.1f}  {row['delta']:+7.1%}  {marker}")
        regressions = comparison["regressions"]
        if regressions:
            print(f"bench-compare: {len(regressions)} metric(s) regressed "
                  f">= {comparison['threshold']:.0%}", file=sys.stderr)
            return 1 if args.strict else 0
        print("bench-compare: no regressions")
        return 0

    if args.repeats < 1:
        print("error: --repeats must be >= 1", file=sys.stderr)
        return 2
    if args.duration <= 0:
        print("error: --duration must be positive", file=sys.stderr)
        return 2

    if args.profile:
        try:
            reports = profile_hotpath_bench(
                top_n=args.profile_top,
                micro_events=args.micro_events,
                duration=args.duration,
                scenario=args.scenario,
                protocol=args.protocol,
                seed=args.seed,
                sweep_seeds=args.sweep_seeds,
                sweep_duration=args.sweep_duration,
                include_sweep_scale=not args.skip_sweep_scale,
                constellation_links=tuple(args.constellation_links)[:2],
                constellation_duration=args.constellation_duration,
                include_constellation_scale=not args.skip_constellation_scale,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        for kind, report in reports.items():
            print(f"===== profile: {kind} (top {args.profile_top} "
                  f"by cumulative time) =====")
            print(report)
        print("profiled run: no baseline written "
              "(instrumentation overhead invalidates the numbers)")
        return 0

    try:
        payload = run_hotpath_bench(
            repeats=args.repeats,
            micro_events=args.micro_events,
            duration=args.duration,
            scenario=args.scenario,
            protocol=args.protocol,
            seed=args.seed,
            sweep_seeds=args.sweep_seeds,
            sweep_duration=args.sweep_duration,
            include_sweep_scale=not args.skip_sweep_scale,
            constellation_links=tuple(args.constellation_links),
            constellation_duration=args.constellation_duration,
            include_constellation_scale=not args.skip_constellation_scale,
            force_parallel=args.force_parallel,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    history = None if args.no_history else args.history
    write_baseline(args.output, payload=payload, history_path=history)
    micro = payload["engine_dispatch"]
    meso = payload["saturated_throughput"]
    print(f"engine={payload.get('engine')} "
          f"batch_window={payload.get('batch_window')}")
    print(f"engine dispatch : {micro['events_per_sec']:,.0f} events/sec "
          f"(p50 {micro['per_event_p50_us']:.3f}us, "
          f"p95 {micro['per_event_p95_us']:.3f}us per event)")
    print(f"saturated (E6)  : {meso['events_per_sec']:,.0f} events/sec, "
          f"{meso['frames_per_sec']:,.0f} frames/sec, "
          f"{meso['delivered']:,} delivered")
    sweep = payload.get("sweep_scale")
    if sweep:
        serial = sweep["serial"]
        line = f"sweep (E23)     : {serial['points_per_sec']:,.1f} points/sec serial"
        for run in sweep["parallel"]:
            line += f", {run['points_per_sec']:,.1f} @ jobs={run['jobs']}"
        hot = sweep.get("cache_hot")
        if hot:
            line += (f"; cache-hot re-run {hot['wall_seconds'] * 1e3:,.1f} ms "
                     f"({hot['points_per_sec']:,.0f} points/sec)")
        print(line)
        skipped = sweep.get("parallel_skipped")
        if skipped:
            print(f"sweep (E23)     : parallel cells skipped ({skipped}; "
                  "--force-parallel overrides)")
    constellation = payload.get("constellation_scale")
    if constellation:
        for scale in constellation["scales"]:
            print(f"constellation   : {scale['links']:>4} links -> "
                  f"{scale['events_per_sec']:,.0f} events/sec, "
                  f"peak heap {scale['peak_heap']:,}, "
                  f"peak buffered/link {scale['peak_buffered_per_link']:,} "
                  f"(build {scale['build_wall_seconds'] * 1e3:,.1f} ms)")
    commit = payload.get("git_commit")
    print(f"baseline written to {args.output} "
          f"(commit {commit[:12] if commit else 'unknown'}, "
          f"host {payload.get('hostname')}, cpus {payload.get('cpu_count')}"
          f"{'' if history is None else ', history ' + history})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import generate_report

    text = generate_report(experiment_ids=args.only)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_orbit(args: argparse.Namespace) -> int:
    sat_a = Satellite("a", altitude_km=args.altitude, inclination_deg=args.inclination)
    sat_b = Satellite(
        "b", altitude_km=args.altitude, inclination_deg=args.inclination,
        raan_deg=args.raan_b, phase_deg=args.phase_b,
    )
    stats = rtt_statistics(sat_a, sat_b, 0.0, args.span, step_s=args.step)
    print(render_table(
        [{"quantity": key, "value": value} for key, value in stats.items()],
        title=f"RTT statistics over {args.span:.0f}s "
              f"(altitude {args.altitude:.0f} km)",
    ))
    windows = visibility_windows(
        sat_a, sat_b, 0.0, args.span, max_range_km=args.max_range, step_s=args.step
    )
    rows = [
        {"start_s": w.start, "end_s": w.end, "duration_s": w.duration}
        for w in windows
    ]
    print()
    print(render_table(rows, title=f"visibility windows (max range "
                                   f"{args.max_range:.0f} km)"))
    return 0


def _cmd_trace_synth(args: argparse.Namespace) -> int:
    import json

    from .simulator.channels import replay_trace, synthesize_trace, write_trace

    scenario = _scenario_from_args(args)
    model_spec = None
    if args.params is not None:
        if args.model is None:
            print("error: --params requires --model", file=sys.stderr)
            return 2
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as error:
            print(f"error: --params is not valid JSON: {error}", file=sys.stderr)
            return 2
        if not isinstance(params, dict):
            print("error: --params must be a JSON object", file=sys.stderr)
            return 2
        model_spec = (args.model, params)
    elif args.model is not None:
        model_spec = args.model
    try:
        result = synthesize_trace(
            scenario, model_spec, protocol=args.protocol, seed=args.seed,
            n_frames=args.frames, max_time=args.max_time,
        )
    except (TypeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    write_trace(
        args.output, result.records, mode="frame",
        model=args.model, scenario=scenario.name, seed=args.seed,
        bit_rate=scenario.bit_rate, digest=result.digest,
        extra={"protocol": args.protocol, "n_frames": args.frames},
    )
    print(f"trace written to {args.output}: {len(result.records)} frame "
          f"records, {result.delivered} payloads delivered in "
          f"{result.duration:.3f}s")
    print(f"delivered-payload digest: {result.digest}")
    if args.verify:
        replayed = replay_trace(
            scenario, args.output, protocol=args.protocol, seed=args.seed,
            n_frames=args.frames, max_time=args.max_time,
        )
        if replayed.digest != result.digest:
            print(f"verify: FAIL — replay digest {replayed.digest} != "
                  f"recorded digest {result.digest}", file=sys.stderr)
            return 1
        print("verify: ok — replay reproduces the digest bit-identically")
    return 0


def _cmd_channels(args: argparse.Namespace) -> int:
    import inspect
    import json

    from .simulator.errormodel import (
        available_error_models,
        error_model_factory,
        resolve_error_model,
    )

    if args.model is None:
        rows = []
        for name in available_error_models():
            factory = error_model_factory(name)
            doc = inspect.getdoc(factory) or ""
            rows.append({"model": name,
                         "summary": doc.splitlines()[0] if doc else ""})
        print(render_table(rows, title="registered error models"))
        return 0

    try:
        factory = error_model_factory(args.model)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"{args.model}: {factory.__module__}.{factory.__qualname__}")
    print(f"  signature: {inspect.signature(factory)}")
    doc = inspect.getdoc(factory)
    if doc:
        print()
        print("\n".join(f"  {line}" for line in doc.splitlines()))
    if args.timeline:
        params = {}
        if args.params is not None:
            try:
                params = json.loads(args.params)
            except json.JSONDecodeError as error:
                print(f"error: --params is not valid JSON: {error}",
                      file=sys.stderr)
                return 2
        scenario = _scenario_from_args(args)
        try:
            instance = resolve_error_model(
                (args.model, params), ber=scenario.iframe_ber,
                bit_rate=scenario.bit_rate,
            )
        except (TypeError, ValueError) as error:
            print(f"error: cannot instantiate {args.model!r}: {error}",
                  file=sys.stderr)
            return 1
        if not hasattr(instance, "instantaneous_ber"):
            print(f"error: {args.model!r} has no instantaneous_ber(t) — "
                  f"--timeline only applies to time-varying models",
                  file=sys.stderr)
            return 1
        rows = []
        t = 0.0
        while t <= args.span + 1e-9:
            rows.append({"t_s": t, "ber": instance.instantaneous_ber(t)})
            t += args.step
        print()
        print(render_table(rows, title=f"instantaneous BER over {args.span:g}s"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LAMS-DLC ARQ protocol reproduction (Ward & Choi, 1991)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Shared parents: one definition per cross-cutting knob.
    seed_parent = _seed_parent()
    pool_parent = _pool_parent()
    error_model_parent = _error_model_parent()
    fault_plan_parent = _fault_plan_parent()

    exp = subparsers.add_parser("experiments", help="run the E1-E19 registry")
    exp_sub = exp.add_subparsers(dest="action", required=True)
    exp_sub.add_parser("list", help="list experiment ids")
    exp_run = exp_sub.add_parser("run", help="run one experiment")
    exp_run.add_argument("id", help="experiment id, e.g. E6")
    exp.set_defaults(handler=_cmd_experiments)

    model = subparsers.add_parser("model", help="closed-form quantities")
    _add_scenario_arguments(model)
    model.add_argument("--frames", type=int, default=50_000)
    model.set_defaults(handler=_cmd_model)

    cmp_parser = subparsers.add_parser("compare", help="LAMS vs HDLC (model)")
    _add_scenario_arguments(cmp_parser)
    cmp_parser.add_argument("--frames", type=int, default=50_000)
    cmp_parser.set_defaults(handler=_cmd_compare)

    sim_parser = subparsers.add_parser(
        "simulate", help="run the executable protocol",
        parents=[seed_parent, error_model_parent, fault_plan_parent],
    )
    _add_scenario_arguments(sim_parser)
    sim_parser.add_argument(
        "--protocol",
        choices=("lams", "hdlc", "gbn", "nbdt-continuous", "nbdt-multiphase"),
        default="lams",
    )
    sim_parser.add_argument("--frames", type=int, default=5000)
    sim_parser.add_argument("--duration", type=float, default=60.0,
                            help="max (batch) or total (saturated) seconds")
    sim_parser.add_argument("--saturated", action="store_true",
                            help="saturated source instead of a finite batch")
    sim_parser.set_defaults(handler=_cmd_simulate)

    sweep_parser = subparsers.add_parser(
        "sweep", help="replicated measurements over a process pool",
        parents=[seed_parent, pool_parent, error_model_parent,
                 fault_plan_parent],
    )
    _add_scenario_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--experiments", nargs="*", default=None, metavar="ID",
        help="registry mode: run these experiment ids instead of replications",
    )
    sweep_parser.add_argument(
        "--protocols", nargs="*",
        default=["lams", "hdlc"],
        help="protocols to replicate (any repro.api name)",
    )
    sweep_parser.add_argument("--seeds", type=int, default=8,
                              help="replications per protocol")
    sweep_parser.add_argument("--master-seed", type=int, default=None,
                              help="deprecated alias of --seed (the master "
                                   "seed replication seeds derive from)")
    sweep_parser.add_argument("--duration", type=float, default=1.0,
                              help="simulated seconds per replication")
    sweep_parser.add_argument("--metrics", nargs="*", default=["efficiency"],
                              help="runner metrics to summarise")
    sweep_parser.add_argument("--cache-dir", default=".sweep-cache",
                              help="on-disk result cache directory")
    sweep_parser.add_argument("--no-cache", action="store_true",
                              help="disable the result cache")
    sweep_parser.set_defaults(handler=_cmd_sweep)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or maintain the on-disk sweep result cache"
    )
    cache_parser.add_argument("action", choices=("info", "migrate", "clear"),
                              help="info: show entry/shard counts; migrate: "
                                   "absorb v1 files and compact shards; "
                                   "clear: delete every cached result")
    cache_parser.add_argument("--cache-dir", default=".sweep-cache",
                              help="cache directory to operate on")
    cache_parser.set_defaults(handler=_cmd_cache)

    tune_parser = subparsers.add_parser(
        "tune", help="recommend a LAMS-DLC configuration for a link"
    )
    tune_parser.add_argument("--bit-rate", type=float, required=True)
    tune_parser.add_argument("--distance-km", type=float, required=True)
    tune_parser.add_argument("--iframe-ber", type=float, default=1e-6)
    tune_parser.add_argument("--cframe-ber", type=float, default=1e-8)
    tune_parser.add_argument("--mean-burst", type=float, default=0.0,
                             help="mean burst length in seconds")
    tune_parser.add_argument("--wait-budget", type=float, default=0.10,
                             help="checkpoint wait as a fraction of RTT")
    tune_parser.set_defaults(handler=_cmd_tune)

    soak_parser = subparsers.add_parser(
        "soak", help="randomized chaos soak under invariant monitors",
        parents=[seed_parent, pool_parent],
    )
    soak_parser.add_argument("--episodes", type=int, default=50,
                             help="number of randomized episodes")
    soak_parser.add_argument("--fail-fast", action="store_true",
                             help="stop scheduling new episodes after the "
                                  "first violation")
    soak_parser.add_argument("--only", type=int, default=None, metavar="INDEX",
                             help="run a single episode index (reproducing "
                                  "a violation report)")
    soak_parser.add_argument("--backend", choices=("des", "udp"), default="des",
                             help="episode substrate: 'des' (virtual time) or "
                                  "'udp' (supervised real-time loopback "
                                  "sessions with transport fault injection)")
    soak_parser.set_defaults(handler=_cmd_soak)

    constellation_parser = subparsers.add_parser(
        "constellation",
        help="run a multi-link constellation (topology layer) and print "
             "per-link + network rollup stats",
        parents=[seed_parent, error_model_parent],
    )
    _add_scenario_arguments(constellation_parser)
    constellation_parser.add_argument(
        "--topology", choices=("ring", "chain", "grid"), default="ring",
        help="constellation shape",
    )
    constellation_parser.add_argument(
        "--size", type=int, default=6,
        help="nodes for ring, hops for chain, total satellites for grid",
    )
    constellation_parser.add_argument(
        "--planes", type=int, default=3,
        help="orbital planes (grid topology only)",
    )
    constellation_parser.add_argument("--stride", type=int, default=2,
                                      help="cross-traffic destination offset")
    constellation_parser.add_argument("--messages", type=int, default=40,
                                      help="datagrams per flow")
    constellation_parser.add_argument("--duration", type=float, default=2.0,
                                      help="simulated seconds")
    constellation_parser.add_argument(
        "--dynamic-routing", action="store_true",
        help="recompute routes and reclaim payloads on declared link failures",
    )
    constellation_parser.set_defaults(handler=_cmd_constellation)

    transmit_parser = subparsers.add_parser(
        "transmit",
        help="run LAMS-DLC over real asyncio-UDP sockets (loopback with "
             "invariant monitors, --connect for two-process, --conform "
             "for the DES-vs-UDP conformance harness)",
        parents=[seed_parent, error_model_parent, fault_plan_parent],
    )
    _add_scenario_arguments(transmit_parser)
    transmit_parser.add_argument(
        "--golden", choices=("clean", "lossy"), default=None,
        help="use a golden conformance scenario instead of --preset "
             "(real-time-friendly rates; see docs/TRANSPORT.md)",
    )
    transmit_parser.add_argument("--frames", type=int, default=48,
                                 help="payloads to transfer")
    transmit_parser.add_argument("--payload-bytes", type=int, default=256,
                                 help="bytes per payload")
    transmit_parser.add_argument("--timeout", type=float, default=30.0,
                                 help="wall-clock cap on the session")
    transmit_parser.add_argument("--jitter", type=float, default=0.0,
                                 help="uniform extra one-way delay in seconds")
    transmit_parser.add_argument("--drop", type=float, default=None,
                                 help="i.i.d. datagram loss probability "
                                      "(the 'uniform-loss' error model)")
    transmit_parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                                 help="two-process mode: send to a running "
                                      "'repro serve' instead of loopback")
    transmit_parser.add_argument("--conform", action="store_true",
                                 help="run the golden scenarios on both "
                                      "backends and compare digests and "
                                      "monitor verdicts")
    transmit_parser.add_argument("--no-invariants", action="store_true",
                                 help="skip the invariant monitor suite "
                                      "(loopback mode)")
    transmit_parser.set_defaults(handler=_cmd_transmit)

    serve_parser = subparsers.add_parser(
        "serve",
        help="receive side of a two-process UDP session "
             "(pair with 'transmit --connect')",
        parents=[seed_parent, error_model_parent],
    )
    _add_scenario_arguments(serve_parser)
    serve_parser.add_argument(
        "--golden", choices=("clean", "lossy"), default=None,
        help="use a golden conformance scenario instead of --preset",
    )
    serve_parser.add_argument("--bind", default="127.0.0.1:47901",
                              metavar="HOST:PORT",
                              help="address to listen on (the peer is "
                                   "learned from the first datagram)")
    serve_parser.add_argument("--duration", type=float, default=30.0,
                              help="seconds to serve before reporting")
    serve_parser.set_defaults(handler=_cmd_serve)

    bench_parser = subparsers.add_parser(
        "bench-baseline",
        help="measure hot-path performance and write BENCH_hotpath.json",
    )
    bench_parser.add_argument("--output", default="BENCH_hotpath.json",
                              help="baseline file to write")
    bench_parser.add_argument("--repeats", type=int, default=3,
                              help="repeat count (best-of is reported)")
    bench_parser.add_argument("--micro-events", type=int, default=200_000,
                              help="events for the dispatch micro-benchmark")
    bench_parser.add_argument("--duration", type=float, default=2.0,
                              help="simulated seconds for the saturated run")
    bench_parser.add_argument("--scenario", default="nominal",
                              help="link scenario preset")
    bench_parser.add_argument("--protocol", default="lams",
                              help="protocol under test")
    bench_parser.add_argument("--seed", type=int, default=1,
                              help="simulation seed")
    bench_parser.add_argument("--history", default="BENCH_history.jsonl",
                              help="JSONL trajectory file to append to")
    bench_parser.add_argument("--no-history", action="store_true",
                              help="skip appending to the history trajectory")
    bench_parser.add_argument("--sweep-seeds", type=int, default=16,
                              help="replication points for the sweep-scale "
                                   "section")
    bench_parser.add_argument("--sweep-duration", type=float, default=0.05,
                              help="simulated seconds per sweep-scale point")
    bench_parser.add_argument("--constellation-links", type=int, nargs="+",
                              default=[10, 100, 1000], metavar="N",
                              help="ring sizes for the constellation-scale "
                                   "benchmark")
    bench_parser.add_argument("--constellation-duration", type=float,
                              default=0.2,
                              help="simulated seconds per constellation scale")
    bench_parser.add_argument("--skip-constellation-scale",
                              action="store_true",
                              help="skip the constellation-scale benchmark")
    bench_parser.add_argument("--skip-sweep-scale", action="store_true",
                              help="omit the sweep_scale section")
    bench_parser.add_argument("--force-parallel", action="store_true",
                              help="run parallel sweep cells even on a "
                                   "single-core host (skewed: they measure "
                                   "pool oversubscription, not speedup)")
    bench_parser.add_argument("--profile", action="store_true",
                              help="run each bench kind under cProfile and "
                                   "print hot functions instead of writing a "
                                   "baseline")
    bench_parser.add_argument("--profile-top", type=int, default=25,
                              metavar="N",
                              help="rows per profile report (with --profile)")
    bench_parser.add_argument("--compare", action="store_true",
                              help="diff the last two history records "
                                   "instead of benchmarking")
    bench_parser.add_argument("--compare-threshold", type=float, default=0.10,
                              metavar="FRAC",
                              help="relative slowdown that counts as a "
                                   "regression (with --compare)")
    bench_parser.add_argument("--strict", action="store_true",
                              help="exit nonzero when --compare finds "
                                   "regressions")
    bench_parser.set_defaults(handler=_cmd_bench_baseline)

    report_parser = subparsers.add_parser(
        "report", help="regenerate the full evaluation report"
    )
    report_parser.add_argument("--only", nargs="*", default=None,
                               help="experiment ids to include (default: all)")
    report_parser.add_argument("--output", default=None,
                               help="write to a file instead of stdout")
    report_parser.set_defaults(handler=_cmd_report)

    orbit_parser = subparsers.add_parser("orbit", help="LEO pair geometry")
    orbit_parser.add_argument("--altitude", type=float, default=1000.0)
    orbit_parser.add_argument("--inclination", type=float, default=60.0)
    orbit_parser.add_argument("--raan-b", type=float, default=30.0)
    orbit_parser.add_argument("--phase-b", type=float, default=0.0)
    orbit_parser.add_argument("--span", type=float, default=12_000.0)
    orbit_parser.add_argument("--step", type=float, default=5.0)
    orbit_parser.add_argument("--max-range", type=float, default=6000.0)
    orbit_parser.set_defaults(handler=_cmd_orbit)

    trace_parser = subparsers.add_parser(
        "trace-synth",
        help="record an error trace from a registered model driving a "
             "batch transfer (every trace is a replayable regression "
             "fixture; see docs/CHANNELS.md)",
        parents=[seed_parent],
    )
    _add_scenario_arguments(trace_parser)
    trace_parser.add_argument("--model", default=None,
                              help="registered error-model name to record "
                                   "(default: the scenario's I-frame model)")
    trace_parser.add_argument("--params", default=None, metavar="JSON",
                              help="JSON object of model constructor kwargs, "
                                   "e.g. '{\"good_ber\": 1e-7, ...}'")
    trace_parser.add_argument("--protocol", default="lams",
                              help="protocol driving the recorded transfer")
    trace_parser.add_argument("--frames", type=int, default=200,
                              help="payloads in the recorded batch")
    trace_parser.add_argument("--max-time", type=float, default=60.0,
                              help="simulated-seconds cap on the batch")
    trace_parser.add_argument("--output", default="trace.jsonl",
                              help="JSONL trace file to write")
    trace_parser.add_argument("--verify", action="store_true",
                              help="replay the written trace and fail unless "
                                   "the delivered-payload digest matches "
                                   "bit-identically")
    trace_parser.set_defaults(handler=_cmd_trace_synth)

    channels_parser = subparsers.add_parser(
        "channels",
        help="list registered error models, or describe one "
             "(--model NAME [--timeline])",
    )
    _add_scenario_arguments(channels_parser)
    channels_parser.add_argument("--model", default=None,
                                 help="describe one registered model instead "
                                      "of listing all")
    channels_parser.add_argument("--params", default=None, metavar="JSON",
                                 help="constructor kwargs for --timeline")
    channels_parser.add_argument("--timeline", action="store_true",
                                 help="print instantaneous_ber(t) over --span "
                                      "(time-varying models only)")
    channels_parser.add_argument("--span", type=float, default=600.0,
                                 help="timeline span in seconds")
    channels_parser.add_argument("--step", type=float, default=60.0,
                                 help="timeline step in seconds")
    channels_parser.set_defaults(handler=_cmd_channels)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""NBDT receiver: completely selective acknowledgement reports."""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..simulator.engine import Simulator
from ..simulator.link import SimplexChannel
from ..simulator.trace import Tracer
from .config import NbdtConfig
from .frames import NbdtIFrame, NbdtReport, NbdtReportRequest

__all__ = ["NbdtReceiver"]


class NbdtReceiver:
    """Tracks received absolute ids; reports cumulative + missing."""

    def __init__(
        self,
        sim: Simulator,
        config: NbdtConfig,
        control_channel: SimplexChannel,
        name: str = "nbdt.rx",
        tracer: Optional[Tracer] = None,
        deliver: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.control_channel = control_channel
        self.name = name
        self.tracer = tracer or Tracer()
        self.deliver = deliver if deliver is not None else (lambda packet: None)

        self._cumulative = 0          # everything below is received
        self._beyond: set[int] = set()  # received ids above the prefix
        self._since_report = 0

        self.iframes_received = 0
        self.iframes_corrupted = 0
        self.duplicates = 0
        self.delivered = 0
        self.reports_sent = 0

    # -- frame input ---------------------------------------------------------

    def on_iframe(self, frame: NbdtIFrame, corrupted: bool) -> None:
        self.iframes_received += 1
        if corrupted:
            # Detected error; the next report's gap list recovers it.
            self.iframes_corrupted += 1
            if frame.poll:
                self._send_report()
            return
        if frame.fid < self._cumulative or frame.fid in self._beyond:
            self.duplicates += 1
        else:
            self._beyond.add(frame.fid)
            while self._cumulative in self._beyond:
                self._beyond.remove(self._cumulative)
                self._cumulative += 1
            self.delivered += 1
            self.deliver(frame.payload)  # bulk transfer: deliver on arrival
            self._since_report += 1
            if (
                self.config.mode == "continuous"
                and self._since_report >= self.config.report_every
            ):
                self._send_report()
        if frame.poll:
            self._send_report()

    def on_report_request(self, frame: NbdtReportRequest, corrupted: bool) -> None:
        if corrupted:
            return
        self._send_report()

    # -- reporting -----------------------------------------------------------

    @property
    def highest_seen(self) -> int:
        if self._beyond:
            return max(self._beyond)
        return self._cumulative - 1

    def missing_ids(self) -> tuple[int, ...]:
        """Gaps between the cumulative prefix and the highest id seen."""
        top = self.highest_seen
        return tuple(
            fid for fid in range(self._cumulative, top + 1) if fid not in self._beyond
        )

    def _send_report(self) -> None:
        self._since_report = 0
        missing = self.missing_ids()
        report = NbdtReport(
            cumulative=self._cumulative,
            highest_seen=self.highest_seen,
            missing=missing,
            size_bits=self.config.report_bits(len(missing)),
        )
        self.control_channel.send(report)
        self.reports_sent += 1
        self.tracer.emit(
            self.sim.now, self.name, "report_sent",
            cumulative=self._cumulative, missing=len(missing),
        )

    def __repr__(self) -> str:
        return f"<NbdtReceiver {self.name} cum={self._cumulative} beyond={len(self._beyond)}>"

"""NBDT frame formats: absolutely numbered I-frames and status reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["NbdtIFrame", "NbdtReport", "NbdtReportRequest"]


@dataclass(frozen=True)
class NbdtIFrame:
    """An I-frame with a 32-bit absolute frame id (never reused)."""

    fid: int
    payload: Any
    size_bits: int
    poll: bool = False
    """Request an immediate status report (closes a multiphase phase)."""

    is_control = False

    def __post_init__(self) -> None:
        if self.fid < 0:
            raise ValueError("frame id cannot be negative")
        if self.size_bits <= 0:
            raise ValueError("I-frame must have positive size")


@dataclass(frozen=True)
class NbdtReport:
    """A completely selective acknowledgement.

    ``cumulative`` — every id below it has been received;
    ``missing`` — the gaps between ``cumulative`` and ``highest_seen``.
    Everything at or below ``highest_seen`` and not listed as missing is
    therefore positively acknowledged.
    """

    cumulative: int
    highest_seen: int
    missing: tuple[int, ...] = ()
    size_bits: int = 96

    is_control = True

    def __post_init__(self) -> None:
        if self.cumulative < 0:
            raise ValueError("cumulative cannot be negative")
        if self.highest_seen < -1:
            raise ValueError("highest_seen cannot be below -1")
        if len(set(self.missing)) != len(self.missing):
            raise ValueError("duplicate ids in missing list")


@dataclass(frozen=True)
class NbdtReportRequest:
    """Sender's poll for a status report."""

    request_time: float
    size_bits: int = 64

    is_control = True

"""NBDT: the NADIR Bulk Data Transfer baseline (paper §1, reference [7]).

Absolute 32-bit frame numbering, completely selective acknowledgement
reports, and the two improved modes the paper describes: multiphase
(alternating transmission/retransmission phases) and continuous (mixed).
Implemented to make the paper's critiques measurable: unbounded sender
memory until positive acknowledgement, and no reliability machinery.
"""

from .config import NbdtConfig
from .frames import NbdtIFrame, NbdtReport, NbdtReportRequest
from .protocol import NbdtEndpoint, nbdt_pair
from .receiver import NbdtReceiver
from .sender import NbdtOutstanding, NbdtSender

__all__ = [
    "NbdtConfig",
    "NbdtEndpoint",
    "NbdtIFrame",
    "NbdtOutstanding",
    "NbdtReceiver",
    "NbdtReport",
    "NbdtReportRequest",
    "NbdtSender",
    "nbdt_pair",
]

"""NBDT sender: multiphase and continuous bulk-transfer modes.

Both modes rely on absolute numbering (frame ids are never reused, so
there is no window and no numbering-driven stall) and on completely
selective acknowledgement reports.

- **multiphase** — strict alternation: transmit a phase (new frames),
  poll, wait for the report, retransmit exactly the reported-missing as
  the next phase, poll again … interleaving new data only when no
  retransmissions are owed.
- **continuous** — retransmissions are mixed into the stream: reported
  gaps are re-sent ahead of new frames without pausing transmission.

The paper's critiques are visible by construction: every frame stays in
the sender's memory until *positively* acknowledged by a report (the
"huge memory … implemented by secondary device"), and there is no
failure-detection machinery at all ("they do not consider the
reliability of protocol") — a dead receiver leaves the sender polling
forever.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from ..simulator.engine import Simulator
from ..simulator.link import SimplexChannel
from ..simulator.trace import Tracer
from .config import NbdtConfig
from .frames import NbdtIFrame, NbdtReport, NbdtReportRequest

__all__ = ["NbdtSender", "NbdtOutstanding"]


@dataclass
class NbdtOutstanding:
    """One transmitted, not-yet-acknowledged frame."""

    fid: int
    payload: Any
    first_send_time: float
    retransmit_count: int = 0
    last_send_time: float = -1.0


class NbdtSender:
    """Sender state machine for one direction of an NBDT link."""

    def __init__(
        self,
        sim: Simulator,
        config: NbdtConfig,
        data_channel: SimplexChannel,
        name: str = "nbdt.tx",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.data_channel = data_channel
        self.name = name
        self.tracer = tracer or Tracer()

        self._pending: deque[Any] = deque()
        self._outstanding: dict[int, NbdtOutstanding] = {}
        self._retransmit_queue: deque[int] = deque()
        self._requeued: set[int] = set()
        self._next_fid = 0
        self._started = False
        self._report_timer = sim.timer(self._on_report_timeout)

        # Multiphase state: frames still owed to the current phase.
        self._phase_new_remaining = 0
        self._awaiting_report = False

        self.data_channel.on_idle(self._maybe_send)

        self.iframes_sent = 0
        self.retransmissions = 0
        self.releases = 0
        self.reports_received = 0
        self.polls_sent = 0
        self.timeouts = 0
        self.holding_time_sum = 0.0
        self.holding_samples = 0
        self.peak_occupancy = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeError("sender already started")
        self._started = True
        self._begin_phase_if_idle()
        self._maybe_send()

    def stop(self) -> None:
        self._report_timer.cancel()
        self._started = False

    # -- network-layer interface -------------------------------------------------

    def accept(self, packet: Any) -> bool:
        capacity = self.config.send_buffer_capacity
        if capacity is not None and self.occupancy >= capacity:
            return False
        self._pending.append(packet)
        if self.occupancy > self.peak_occupancy:
            self.peak_occupancy = self.occupancy
        if self._started:
            self._begin_phase_if_idle()
            self._maybe_send()
        return True

    @property
    def occupancy(self) -> int:
        """Sender memory: pending plus everything awaiting positive ack."""
        return len(self._pending) + len(self._outstanding)

    @property
    def unresolved_count(self) -> int:
        return self.occupancy

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def mean_holding_time(self) -> float:
        if self.holding_samples == 0:
            return 0.0
        return self.holding_time_sum / self.holding_samples

    def held_payloads(self) -> list[Any]:
        payloads = list(self._pending)
        payloads.extend(record.payload for record in self._outstanding.values())
        return payloads

    # -- transmission ----------------------------------------------------------------

    def _begin_phase_if_idle(self) -> None:
        """Multiphase: open a transmission phase when nothing is owed."""
        if self.config.mode != "multiphase":
            return
        if self._awaiting_report or self._retransmit_queue or self._phase_new_remaining:
            return
        if self._pending:
            self._phase_new_remaining = len(self._pending)

    def _maybe_send(self) -> None:
        if not self._started or not self.data_channel.is_idle:
            return
        if self.config.mode == "continuous":
            self._maybe_send_continuous()
        else:
            self._maybe_send_multiphase()

    def _maybe_send_continuous(self) -> None:
        if self._retransmit_queue:
            fid = self._retransmit_queue.popleft()
            self._requeued.discard(fid)
            record = self._outstanding.get(fid)
            if record is None:
                self._maybe_send_continuous()
                return
            record.retransmit_count += 1
            self.retransmissions += 1
            self._emit(record, poll=self._nothing_else_sendable())
        elif self._pending:
            self._emit(self._admit(), poll=self._nothing_else_sendable())

    def _maybe_send_multiphase(self) -> None:
        if self._awaiting_report:
            return
        if self._retransmit_queue:
            fid = self._retransmit_queue.popleft()
            record = self._outstanding.get(fid)
            if record is None:
                self._maybe_send_multiphase()
                return
            record.retransmit_count += 1
            self.retransmissions += 1
            last = not self._retransmit_queue
            self._emit(record, poll=last)
            if last:
                self._close_phase()
        elif self._phase_new_remaining > 0 and self._pending:
            record = self._admit()
            self._phase_new_remaining -= 1
            last = self._phase_new_remaining == 0 or not self._pending
            self._emit(record, poll=last)
            if last:
                self._phase_new_remaining = 0
                self._close_phase()

    def _close_phase(self) -> None:
        self._awaiting_report = True
        self._report_timer.start(self.config.timeout)

    def _nothing_else_sendable(self) -> bool:
        return not self._retransmit_queue and not self._pending

    def _admit(self) -> NbdtOutstanding:
        payload = self._pending.popleft()
        record = NbdtOutstanding(
            fid=self._next_fid, payload=payload, first_send_time=self.sim.now
        )
        self._next_fid += 1
        self._outstanding[record.fid] = record
        return record

    def _emit(self, record: NbdtOutstanding, poll: bool) -> None:
        frame = NbdtIFrame(
            fid=record.fid,
            payload=record.payload,
            size_bits=self.config.iframe_bits,
            poll=poll,
        )
        record.last_send_time = self.sim.now
        self.data_channel.send(frame)
        self.iframes_sent += 1
        if poll:
            self.polls_sent += 1
            if self.config.mode == "continuous":
                self._report_timer.start(self.config.timeout)
        if self.occupancy > self.peak_occupancy:
            self.peak_occupancy = self.occupancy
        self.tracer.emit(
            self.sim.now, self.name, "iframe_sent", fid=record.fid, poll=poll,
        )

    # -- report handling --------------------------------------------------------------

    def on_report(self, report: NbdtReport, corrupted: bool) -> None:
        if corrupted:
            return  # the report timer recovers a lost/corrupted report
        self.reports_received += 1
        self._awaiting_report = False
        missing = set(report.missing)
        # Positive acknowledgement: everything at or below highest_seen
        # that the receiver does not list as missing.
        for fid in [f for f in self._outstanding if f <= report.highest_seen]:
            if fid in missing:
                continue
            record = self._outstanding.pop(fid)
            self.releases += 1
            self.holding_time_sum += self.sim.now - record.first_send_time
            self.holding_samples += 1
        # Retransmission work: the reported gaps.  In continuous mode a
        # gap can be re-reported while its retransmission is still in
        # flight (the report was issued before the re-sent copy could
        # arrive), so those are guarded by one timeout (>= RTT by
        # configuration).  Multiphase reports always postdate the whole
        # previous phase — every listed gap genuinely needs a re-send.
        in_flight_possible = self.config.mode == "continuous"
        for fid in sorted(missing):
            record = self._outstanding.get(fid)
            if record is None or fid in self._requeued:
                continue
            if (
                in_flight_possible
                and record.retransmit_count > 0
                and self.sim.now - record.last_send_time < self.config.timeout
            ):
                continue
            self._retransmit_queue.append(fid)
            self._requeued.add(fid)
        # Trailing losses: frames beyond the receiver's highest seen id
        # can never appear in its gap list.  Anything we sent more than
        # one timeout ago that the report does not cover was lost off
        # the tail — retransmit it.  (Freshly sent frames are protected
        # by the same guard; the next report covers them.)
        for fid in sorted(self._outstanding):
            if fid <= report.highest_seen or fid in self._requeued:
                continue
            record = self._outstanding[fid]
            if self.sim.now - record.last_send_time < self.config.timeout:
                continue
            self._retransmit_queue.append(fid)
            self._requeued.add(fid)
        if self.config.mode == "multiphase":
            self._requeued.clear()
            if not self._retransmit_queue:
                self._begin_phase_if_idle()
        if self._outstanding or self._pending:
            self._report_timer.start(self.config.timeout)
        else:
            self._report_timer.cancel()
        self.tracer.emit(
            self.sim.now, self.name, "report",
            acked=self.releases, missing=len(missing),
        )
        self._maybe_send()

    def _on_report_timeout(self) -> None:
        """No report arrived: poll again (NBDT has no failure handling)."""
        if not self._outstanding and not self._pending:
            return
        self.timeouts += 1
        self.data_channel.send(NbdtReportRequest(request_time=self.sim.now))
        self._report_timer.start(self.config.timeout)
        self.tracer.emit(self.sim.now, self.name, "report_request")

    def __repr__(self) -> str:
        return (
            f"<NbdtSender {self.name} mode={self.config.mode} "
            f"sent={self.iframes_sent} outstanding={len(self._outstanding)}>"
        )

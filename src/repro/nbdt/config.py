"""Configuration for the NBDT baseline (paper Section 1, reference [7]).

NBDT — the NADIR Bulk Data Transfer protocol — is the paper's closest
prior art: an HDLC variant for point-to-point satellite links using
*absolute* (32-bit) frame numbering and *completely selective*
acknowledgement, in two modes:

- **multiphase**: "the sender performs transmissions and
  retransmissions alternately on the basis of completely selective
  acknowledgement" — send a phase, collect the report, retransmit the
  missing, repeat;
- **continuous**: "transmissions and retransmissions can be mixed
  during a communication".

The paper's critiques, which the implementation makes measurable:
"the huge memory is implemented by secondary device" (the sender must
hold *everything* until positively acknowledged — no transparent buffer
size) "and they do not consider the reliability of protocol".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["NbdtConfig"]


@dataclass
class NbdtConfig:
    """Tunables of one NBDT endpoint."""

    mode: str = "continuous"
    """``"multiphase"`` or ``"continuous"`` (the two improved modes)."""

    report_every: int = 64
    """Continuous mode: receiver emits a selective-ack report after this
    many I-frame arrivals (NBDT's bulk-transfer status cadence)."""

    timeout: float = 0.1
    """Poll/report timeout: re-request a report if none arrives."""

    iframe_payload_bits: int = 8192
    iframe_overhead_bits: int = 112
    """Larger than HDLC's: the 32-bit absolute number costs header bits."""
    report_base_bits: int = 96
    report_per_missing_bits: int = 32
    processing_time: float = 10e-6

    send_buffer_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("multiphase", "continuous"):
            raise ValueError("mode must be 'multiphase' or 'continuous'")
        if self.report_every < 1:
            raise ValueError("report_every must be >= 1")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.iframe_payload_bits <= 0 or self.iframe_overhead_bits < 0:
            raise ValueError("I-frame sizes must be positive")
        if self.report_base_bits <= 0 or self.report_per_missing_bits < 0:
            raise ValueError("report sizes must be positive")
        if self.processing_time < 0:
            raise ValueError("processing_time cannot be negative")

    @property
    def iframe_bits(self) -> int:
        return self.iframe_payload_bits + self.iframe_overhead_bits

    def report_bits(self, missing_count: int) -> int:
        """Wire size of a selective-ack report listing the gaps."""
        if missing_count < 0:
            raise ValueError("missing_count cannot be negative")
        return self.report_base_bits + self.report_per_missing_bits * missing_count

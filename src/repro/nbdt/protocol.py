"""NBDT endpoint wiring, matching the other protocols' endpoint shape."""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core.endpoint import register_pair_factory
from ..simulator.engine import Simulator
from ..simulator.link import FullDuplexLink, SimplexChannel
from ..simulator.trace import Tracer
from .config import NbdtConfig
from .frames import NbdtIFrame, NbdtReport, NbdtReportRequest
from .receiver import NbdtReceiver
from .sender import NbdtSender

__all__ = ["NbdtEndpoint", "nbdt_pair"]


class NbdtEndpoint:
    """One side of an NBDT link (multiphase or continuous)."""

    def __init__(
        self,
        sim: Simulator,
        config: NbdtConfig,
        outgoing: SimplexChannel,
        name: str = "nbdt",
        tracer: Optional[Tracer] = None,
        deliver: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.name = name
        self.tracer = tracer or Tracer()
        self.sender = NbdtSender(
            sim, config, data_channel=outgoing, name=f"{name}.tx", tracer=self.tracer
        )
        self.receiver = NbdtReceiver(
            sim, config, control_channel=outgoing, name=f"{name}.rx",
            tracer=self.tracer, deliver=deliver,
        )

    def start(self, send: bool = True, receive: bool = True) -> None:
        if send:
            self.sender.start()

    def stop(self) -> None:
        self.sender.stop()

    def accept(self, packet: Any) -> bool:
        return self.sender.accept(packet)

    def on_frame(self, frame: Any, corrupted: bool) -> None:
        if isinstance(frame, NbdtIFrame):
            self.receiver.on_iframe(frame, corrupted)
        elif isinstance(frame, NbdtReport):
            self.sender.on_report(frame, corrupted)
        elif isinstance(frame, NbdtReportRequest):
            self.receiver.on_report_request(frame, corrupted)
        else:
            raise TypeError(f"unknown frame type: {type(frame).__name__}")

    def __repr__(self) -> str:
        return f"<NbdtEndpoint {self.name} mode={self.config.mode}>"


@register_pair_factory("nbdt")
def _make_nbdt_pair(
    sim: Simulator,
    link: FullDuplexLink,
    config: NbdtConfig,
    *,
    config_b: Optional[NbdtConfig] = None,
    tracer: Optional[Tracer] = None,
    deliver_a: Optional[Callable[[Any], None]] = None,
    deliver_b: Optional[Callable[[Any], None]] = None,
) -> tuple[NbdtEndpoint, NbdtEndpoint]:
    """The registered ``"nbdt"`` pair factory (see ``repro.api``)."""
    endpoint_a = NbdtEndpoint(
        sim, config, outgoing=link.forward, name=f"{link.name}.A",
        tracer=tracer, deliver=deliver_a,
    )
    endpoint_b = NbdtEndpoint(
        sim, config_b or config, outgoing=link.reverse, name=f"{link.name}.B",
        tracer=tracer, deliver=deliver_b,
    )
    link.attach(endpoint_a.on_frame, endpoint_b.on_frame)
    return endpoint_a, endpoint_b


def nbdt_pair(
    sim: Simulator,
    link: FullDuplexLink,
    config: NbdtConfig,
    config_b: Optional[NbdtConfig] = None,
    tracer: Optional[Tracer] = None,
    deliver_a: Optional[Callable[[Any], None]] = None,
    deliver_b: Optional[Callable[[Any], None]] = None,
) -> tuple[NbdtEndpoint, NbdtEndpoint]:
    """Create and wire a pair of NBDT endpoints across *link*.

    .. deprecated:: transport backend PR
       Thin shim over the unified factory registry — use
       ``repro.api.make_endpoint_pair("nbdt", ...)`` instead.
       Scheduled for removal in the 1.0 release (see docs/API.md
       "Backends").
    """
    import warnings

    warnings.warn(
        "nbdt_pair is deprecated; use "
        "repro.api.make_endpoint_pair('nbdt', ...) (removal target: 1.0)",
        DeprecationWarning, stacklevel=2,
    )
    return _make_nbdt_pair(
        sim, link, config,
        config_b=config_b, tracer=tracer,
        deliver_a=deliver_a, deliver_b=deliver_b,
    )

"""Recovery metrics: how fast the protocol notices and survives faults.

:class:`RecoveryMetrics` is a :class:`~repro.simulator.trace.Tracer`
listener that correlates the fault timeline (``fault_start`` /
``fault_end`` from the :class:`~repro.faults.injector.FaultInjector`)
with the protocol's own events to produce one
:class:`OutageRecord` per channel-cutting fault:

- **time_to_checkpoint_timeout** — outage start → the sender's
  ``C_depth * W_cp`` watchdog firing (Section 3.2's detection step).
- **time_to_first_request_nak** — outage start → the first probe.
- **time_to_enforced_nak** — outage start → enforced recovery
  completing (a valid Enforced-NAK arrived); ``None`` if it never did.
- **time_to_declared_failure** — outage start → the sender declaring
  link failure; ``None`` when the link recovered instead.
- **frames_lost** — frames the outage swallowed (both loss phases,
  per the ``frame_lost_outage`` trace event).
- **post_recovery_delivery_delay** — outage end → the first I-frame
  delivery afterwards: how long the resequencing pipeline stays dry
  after the link returns.

All quantities derive purely from simulation events, so a fault plan's
metrics are bit-identical across repeated runs and across serial vs
parallel sweep execution at the same seed.

:func:`detection_bound` / :func:`declared_failure_bound` compute the
paper's latency guarantees for a configuration, so tests (and E21) can
assert measured ≤ bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

from ..simulator.trace import TraceRecord, Tracer

__all__ = [
    "OutageRecord",
    "RecoveryMetrics",
    "declared_failure_bound",
    "detection_bound",
]

_CUTTING_KINDS = ("outage", "feedback-blackout")


def detection_bound(config: Any) -> float:
    """Worst-case outage-start → Request-NAK latency (Section 3.2).

    The receiver checkpoints every ``W_cp``; the sender's watchdog
    restarts on each valid checkpoint and fires after ``C_depth * W_cp``
    of silence.  The last checkpoint arrives no later than the outage
    start, so the probe fires within ``C_depth * W_cp`` of it.
    """
    return config.checkpoint_timeout


def declared_failure_bound(config: Any, expected_rtt: float) -> float:
    """Worst-case outage-start → declared-failure latency.

    Detection (``C_depth * W_cp``) plus the failure timer: the expected
    Request-NAK → Enforced-NAK response time (``R + t_proc``) plus one
    more checkpoint-timeout of grace, as the sender implements it.
    Holds when no checkpoints arrive during the outage (a full cut);
    surviving plain checkpoints restart the probe budget instead.
    """
    return (
        config.checkpoint_timeout
        + expected_rtt
        + config.processing_time
        + config.checkpoint_timeout
    )


@dataclass
class OutageRecord:
    """Recovery timeline of one channel-cutting fault."""

    index: int
    kind: str
    start: float
    direction: str = "both"
    end: Optional[float] = None
    frames_lost: int = 0
    time_to_checkpoint_timeout: Optional[float] = None
    time_to_first_request_nak: Optional[float] = None
    time_to_enforced_nak: Optional[float] = None
    time_to_declared_failure: Optional[float] = None
    post_recovery_delivery_delay: Optional[float] = None

    @property
    def recovered(self) -> bool:
        """The link came back without a declared failure."""
        return (
            self.time_to_declared_failure is None
            and self.time_to_enforced_nak is not None
        )

    def as_row(self) -> dict[str, Any]:
        """Flat dict form (NaN for never-happened), for tables/caches."""

        def _num(value: Optional[float]) -> float:
            return float("nan") if value is None else value

        return {
            "outage_index": self.index,
            "kind": self.kind,
            "outage_start": self.start,
            "outage_end": _num(self.end),
            "frames_lost": self.frames_lost,
            "t_checkpoint_timeout": _num(self.time_to_checkpoint_timeout),
            "t_request_nak": _num(self.time_to_first_request_nak),
            "t_enforced_nak": _num(self.time_to_enforced_nak),
            "t_declared_failure": _num(self.time_to_declared_failure),
            "t_post_recovery_delivery": _num(self.post_recovery_delivery_delay),
            "outage_recovered": self.recovered,
        }


class RecoveryMetrics:
    """Tracer listener building per-outage recovery records.

    Attach before the simulation runs (construction registers the
    listener); read :attr:`outages` / :meth:`summary` afterwards.
    Events between a ``fault_start`` and the next cutting fault's start
    are attributed to that fault — the protocol's reaction necessarily
    trails the outage itself.
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self.outages: list[OutageRecord] = []
        self.request_naks = 0
        self.enforced_naks = 0
        self.recoveries = 0
        self.failures_declared = 0
        self.frames_lost_total = 0
        self._open: dict[tuple[str, int], OutageRecord] = {}
        tracer.listeners.append(self._on_record)

    def detach(self) -> None:
        """Stop listening (metrics stay readable)."""
        try:
            self.tracer.listeners.remove(self._on_record)
        except ValueError:
            pass

    # -- attribution ------------------------------------------------------

    def _current(self, time: float) -> Optional[OutageRecord]:
        """The most recent outage whose start precedes *time*."""
        latest = None
        for record in self.outages:
            if record.start <= time:
                latest = record
        return latest

    def _on_record(self, record: TraceRecord) -> None:
        event = record.event
        if record.source == "faults":
            kind = record.detail.get("kind")
            if kind not in _CUTTING_KINDS:
                return
            index = record.detail["index"]
            if event == "fault_start":
                outage = OutageRecord(
                    index=index, kind=kind, start=record.time,
                    direction=record.detail.get("direction", "both"),
                )
                self.outages.append(outage)
                self._open[(kind, index)] = outage
            elif event == "fault_end":
                outage = self._open.pop((kind, index), None)
                if outage is not None:
                    outage.end = record.time
            return

        if event == "frame_lost_outage":
            self.frames_lost_total += 1
            for outage in self._open.values():
                outage.frames_lost += 1
            return

        current = self._current(record.time)
        if event == "checkpoint_timeout":
            if current is not None and current.time_to_checkpoint_timeout is None:
                current.time_to_checkpoint_timeout = record.time - current.start
        elif event == "request_nak_sent":
            self.request_naks += 1
            if current is not None and current.time_to_first_request_nak is None:
                current.time_to_first_request_nak = record.time - current.start
        elif event == "enforced_nak":
            self.enforced_naks += 1
        elif event == "enforced_recovery_complete":
            self.recoveries += 1
            if current is not None and current.time_to_enforced_nak is None:
                current.time_to_enforced_nak = record.time - current.start
        elif event == "link_failure_declared":
            self.failures_declared += 1
            if current is not None and current.time_to_declared_failure is None:
                current.time_to_declared_failure = record.time - current.start
        elif event == "deliver" and not record.detail.get("control", False):
            for outage in self.outages:
                if (
                    outage.post_recovery_delivery_delay is None
                    and outage.end is not None
                    and record.time >= outage.end
                ):
                    outage.post_recovery_delivery_delay = record.time - outage.end

    # -- reporting --------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Aggregate metrics as one flat dict (deterministic keys)."""
        detections = [
            o.time_to_first_request_nak
            for o in self.outages
            if o.time_to_first_request_nak is not None
        ]
        return {
            "outages": len(self.outages),
            "frames_lost_total": self.frames_lost_total,
            "request_naks": self.request_naks,
            "enforced_naks": self.enforced_naks,
            "recoveries": self.recoveries,
            "failures_declared": self.failures_declared,
            "mean_detection_latency": (
                sum(detections) / len(detections) if detections else math.nan
            ),
        }

    def __repr__(self) -> str:
        return (
            f"<RecoveryMetrics outages={len(self.outages)} "
            f"recoveries={self.recoveries} failures={self.failures_declared}>"
        )

"""Schedules a :class:`~repro.faults.plan.FaultPlan` onto a simulation.

The injector is pure orchestration: at each fault's start and end it
drives the live objects — ``SimplexChannel.down()``/``up()`` for
outages, error-model swap/restore for BER storms, a corrupting wrapper
for control-frame targeting — and emits ``fault_start`` / ``fault_end``
trace events that :class:`~repro.faults.metrics.RecoveryMetrics`
consumes.  Everything is scheduled on the :class:`Simulator` event
heap at construction time, so a plan is fully deterministic: the same
plan and seed produce the same event sequence regardless of process or
job count.

Outages are depth-counted per channel, so overlapping faults nest
correctly, and a channel that was already down when a fault began
(e.g. between session-manager passes) is *not* forced up when the
fault ends — the injector only restores state it took down itself.

Error-model faults (BER storms and control corruption) are tracked as
an ordered stack of *layers* over the channel's base model, rebuilt on
every fault boundary, so interleaved windows (fault A starts, fault B
starts, fault A ends while B is still active) keep B's effect applied.
A plain last-in-first-out stash restores in the wrong order for that
shape — a bug the chaos-soak invariant monitors caught: an "ended"
fault would strip a still-active deterministic corruption window,
letting checkpoints through a window the plan declares silent.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..simulator.engine import Simulator
from ..simulator.errormodel import ErrorModel, make_error_model
from ..simulator.link import FullDuplexLink, SimplexChannel
from ..simulator.trace import Tracer
from .plan import BerStorm, ControlCorruption, Fault, FaultPlan

__all__ = ["FaultInjector", "ControlCorruptingModel"]


class ControlCorruptingModel:
    """Wraps a base model, adding forced corruption for control frames.

    Draws one uniform variate per frame from the channel's own named
    RNG stream, so corruption decisions are deterministic under the
    simulation seed and independent of every other stream.
    """

    def __init__(self, base: ErrorModel, probability: float) -> None:
        self.base = base
        self.probability = probability

    def frame_error(self, start: float, bits: int, rng: np.random.Generator) -> bool:
        forced = bool(rng.random() < self.probability)
        # Always consult the base model so its RNG/state consumption is
        # identical with and without the fault window active.
        underlying = self.base.frame_error(start, bits, rng)
        return forced or underlying

    def __repr__(self) -> str:
        return f"ControlCorruptingModel(p={self.probability:g}, base={self.base!r})"


class FaultInjector:
    """Drives one fault plan against one full-duplex link."""

    #: Fault kinds this injector knows how to drive.  Transport-native
    #: kinds (socket send errors, endpoint stalls, peer restarts,
    #: handshake blackholes) need the UDP backend's
    #: :class:`~repro.transport.impair.TransportFaultInjector`; a plan
    #: containing one is rejected here rather than silently no-opped —
    #: a skipped fault would corrupt the latency monitors' silence
    #: timelines.
    supported_kinds: frozenset = frozenset(
        {"outage", "feedback-blackout", "ber-storm", "control-corruption"}
    )

    def __init__(
        self,
        sim: Simulator,
        link: FullDuplexLink,
        plan: FaultPlan,
        tracer: Optional[Tracer] = None,
    ) -> None:
        for fault in plan:
            if fault.kind not in self.supported_kinds:
                raise ValueError(
                    f"{type(self).__name__} cannot inject fault kind "
                    f"{fault.kind!r} (supported: "
                    f"{', '.join(sorted(self.supported_kinds))}); "
                    f"transport-native faults need the UDP backend"
                )
        self.sim = sim
        self.link = link
        self.plan = plan
        self.tracer = tracer if tracer is not None else link.tracer
        self.faults_started = 0
        self.faults_ended = 0
        self._outage_depth: dict[str, int] = {}
        self._took_down: dict[str, bool] = {}
        # Per (channel, attr): the untouched base model plus the ordered
        # list of active fault layers applied over it.
        self._base_models: dict[tuple[str, str], ErrorModel] = {}
        self._layers: dict[tuple[str, str], list[tuple[int, str, Any]]] = {}
        # Clamp to "now": on the real-time backend the clock has
        # already crept past t=0 by construction time, so a fault
        # starting at (or before) the session open fires immediately.
        for index, fault in enumerate(plan):
            sim.schedule_at(max(fault.start, sim.now), self._begin, index, fault)
            sim.schedule_at(max(fault.end, sim.now), self._finish, index, fault)

    # -- wiring -----------------------------------------------------------

    def _channels(self, direction: str) -> list[SimplexChannel]:
        if direction == "forward":
            return [self.link.forward]
        if direction == "reverse":
            return [self.link.reverse]
        return [self.link.forward, self.link.reverse]

    # -- fault lifecycle --------------------------------------------------

    def _begin(self, index: int, fault: Fault) -> None:
        self.faults_started += 1
        if fault.kind in ("outage", "feedback-blackout"):
            self._begin_outage(fault)
        elif fault.kind == "ber-storm":
            self._begin_storm(index, fault)
        elif fault.kind == "control-corruption":
            self._begin_corruption(index, fault)
        self.tracer.emit(
            self.sim.now, "faults", "fault_start",
            index=index, kind=fault.kind, direction=fault.direction,
            duration=fault.duration,
        )

    def _finish(self, index: int, fault: Fault) -> None:
        self.faults_ended += 1
        if fault.kind in ("outage", "feedback-blackout"):
            self._finish_outage(fault)
        elif fault.kind == "ber-storm":
            self._finish_storm(index, fault)
        elif fault.kind == "control-corruption":
            self._finish_corruption(index, fault)
        self.tracer.emit(
            self.sim.now, "faults", "fault_end",
            index=index, kind=fault.kind, direction=fault.direction,
        )

    # -- outages ----------------------------------------------------------

    def _begin_outage(self, fault: Fault) -> None:
        for channel in self._channels(fault.direction):
            depth = self._outage_depth.get(channel.name, 0)
            if depth == 0:
                # Only restore later what we actually took down now.
                self._took_down[channel.name] = channel.is_up
                if channel.is_up:
                    channel.down()
            self._outage_depth[channel.name] = depth + 1

    def _finish_outage(self, fault: Fault) -> None:
        for channel in self._channels(fault.direction):
            depth = self._outage_depth.get(channel.name, 0) - 1
            self._outage_depth[channel.name] = max(depth, 0)
            if depth <= 0 and self._took_down.pop(channel.name, False):
                channel.up()

    # -- BER storms -------------------------------------------------------

    def _begin_storm(self, index: int, fault: BerStorm) -> None:
        for channel in self._channels(fault.direction):
            model = make_error_model(
                fault.model, {"bit_rate": channel.bit_rate}, **fault.model_kwargs
            )
            if "iframe" in fault.targets:
                self._push_layer(channel, "iframe_errors", index, "replace", model)
            if "cframe" in fault.targets:
                self._push_layer(channel, "cframe_errors", index, "replace", model)

    def _finish_storm(self, index: int, fault: BerStorm) -> None:
        for channel in self._channels(fault.direction):
            if "iframe" in fault.targets:
                self._pop_layer(channel, "iframe_errors", index)
            if "cframe" in fault.targets:
                self._pop_layer(channel, "cframe_errors", index)

    # -- control-frame corruption ----------------------------------------

    def _begin_corruption(self, index: int, fault: ControlCorruption) -> None:
        for channel in self._channels(fault.direction):
            self._push_layer(
                channel, "cframe_errors", index, "wrap", fault.probability
            )

    def _finish_corruption(self, index: int, fault: ControlCorruption) -> None:
        for channel in self._channels(fault.direction):
            self._pop_layer(channel, "cframe_errors", index)

    # -- model layering (correct for arbitrary window overlap) ------------

    def _push_layer(
        self, channel: SimplexChannel, attr: str, index: int, mode: str, payload: Any,
    ) -> None:
        key = (channel.name, attr)
        if key not in self._base_models:
            self._base_models[key] = getattr(channel, attr)
        self._layers.setdefault(key, []).append((index, mode, payload))
        self._rebuild(channel, attr)

    def _pop_layer(self, channel: SimplexChannel, attr: str, index: int) -> None:
        key = (channel.name, attr)
        layers = self._layers.get(key)
        if not layers:
            return
        self._layers[key] = [layer for layer in layers if layer[0] != index]
        self._rebuild(channel, attr)

    def _rebuild(self, channel: SimplexChannel, attr: str) -> None:
        """Reapply the active layers, in activation order, over the base.

        Removing *any* fault's layer — not just the most recent — leaves
        every other active fault's effect in place, which a LIFO stash
        cannot do for interleaved windows.
        """
        key = (channel.name, attr)
        model = self._base_models.get(key)
        if model is None:
            return
        layers = self._layers.get(key, [])
        for _, mode, payload in layers:
            if mode == "replace":
                model = payload
            else:
                model = ControlCorruptingModel(model, payload)
        setattr(channel, attr, model)
        if not layers:
            del self._base_models[key]
            del self._layers[key]

    def __repr__(self) -> str:
        return (
            f"<FaultInjector plan={self.plan.name!r} "
            f"faults={len(self.plan)} started={self.faults_started}>"
        )

"""Declarative fault plans (paper Sections 2.1 and 3.2 failure regimes).

A :class:`FaultPlan` names, up front, every fault a run will suffer —
the experiment harness's answer to poking ``SimplexChannel.down()`` ad
hoc.  Four fault kinds cover the paper's failure surface:

- :class:`LinkOutage` — a timed cut of one or both directions: the
  link failures and retargeting gaps of Section 3.2.
- :class:`FeedbackBlackout` — a one-directional cut of the feedback
  (reverse) channel only: I-frames keep flowing but every checkpoint
  is lost, the regime where enforced recovery must distinguish "link
  dead" from "NAKs dying".
- :class:`BerStorm` — a window during which a channel's error model is
  swapped for a (typically much noisier) one, then restored: beam
  mispointing episodes beyond what a stationary Gilbert–Elliott
  process expresses.
- :class:`ControlCorruption` — corruption targeted at *control frames
  only*: checkpoints and Request-NAKs die while I-frames survive,
  isolating the feedback-error sensitivity of the NAK-based design.

Plans are plain frozen dataclasses: picklable (parallel sweeps),
repr-stable (result-cache keys), and JSON round-trippable (the
``--fault-plan`` CLI path).  Nothing here touches a simulator — the
:class:`~repro.faults.injector.FaultInjector` schedules a plan.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

__all__ = [
    "BerStorm",
    "ControlCorruption",
    "EndpointStall",
    "FaultPlan",
    "FeedbackBlackout",
    "HandshakeBlackhole",
    "LinkOutage",
    "PeerRestart",
    "SendErrorBurst",
    "TRANSPORT_FAULT_KINDS",
    "fault_from_dict",
]

_DIRECTIONS = ("forward", "reverse", "both")
_ENDPOINTS = ("a", "b")


def _check_window(start: float, duration: float) -> None:
    if start < 0:
        raise ValueError(f"fault start cannot be negative, got {start!r}")
    if duration <= 0:
        raise ValueError(f"fault duration must be positive, got {duration!r}")


def _check_direction(direction: str) -> None:
    if direction not in _DIRECTIONS:
        raise ValueError(
            f"direction must be one of {_DIRECTIONS}, got {direction!r}"
        )


def _check_endpoint(endpoint: str) -> None:
    if endpoint not in _ENDPOINTS:
        raise ValueError(
            f"endpoint must be one of {_ENDPOINTS}, got {endpoint!r}"
        )


@dataclass(frozen=True)
class LinkOutage:
    """Cut the link for ``[start, start + duration)``.

    ``direction`` selects which simplex channel(s) go down; ``"both"``
    is the paper's link failure / retargeting episode.
    """

    start: float
    duration: float
    direction: str = "both"
    kind: str = field(default="outage", init=False, repr=False)

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        _check_direction(self.direction)

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class FeedbackBlackout:
    """Cut only the feedback direction: data flows, acknowledgement dies.

    Equivalent to ``LinkOutage(direction="reverse")`` for an A→B
    transfer, named separately because it is the regime feedback-error
    analyses single out: the sender sees silence, not errors.
    """

    start: float
    duration: float
    kind: str = field(default="feedback-blackout", init=False, repr=False)

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def direction(self) -> str:
        return "reverse"


@dataclass(frozen=True)
class BerStorm:
    """Swap a channel's error model for the window, then restore it.

    ``model`` / ``params`` name a registered error model (see
    :func:`repro.simulator.errormodel.resolve_error_model`); missing
    constructor arguments (``bit_rate`` for Gilbert–Elliott) are filled
    from the channel being stormed.  ``targets`` picks which error
    process is replaced — I-frames, control frames, or both, matching
    the paper's separately-FEC'd frame classes.
    """

    start: float
    duration: float
    model: str = "bernoulli"
    params: tuple[tuple[str, Any], ...] = (("ber", 1e-3),)
    direction: str = "forward"
    targets: tuple[str, ...] = ("iframe", "cframe")
    kind: str = field(default="ber-storm", init=False, repr=False)

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        _check_direction(self.direction)
        if isinstance(self.params, Mapping):
            object.__setattr__(self, "params", tuple(sorted(self.params.items())))
        else:
            object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "targets", tuple(self.targets))
        for target in self.targets:
            if target not in ("iframe", "cframe"):
                raise ValueError(
                    f"storm target must be 'iframe' or 'cframe', got {target!r}"
                )
        if not self.targets:
            raise ValueError("a BER storm needs at least one target")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def model_kwargs(self) -> dict[str, Any]:
        return dict(self.params)


@dataclass(frozen=True)
class ControlCorruption:
    """Corrupt control frames (only) with extra probability for a window.

    Each control frame serialized during the window is additionally
    corrupted with ``probability`` on top of whatever the channel's
    control error model decides — ``probability=1.0`` kills every
    checkpoint deterministically.  Defaults to the reverse direction,
    where an A→B transfer's checkpoints travel.
    """

    start: float
    duration: float
    probability: float = 1.0
    direction: str = "reverse"
    kind: str = field(default="control-corruption", init=False, repr=False)

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        _check_direction(self.direction)
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability!r}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


# -- transport-native faults (the live UDP backend's failure surface) -----
#
# The four kinds below act on sockets and endpoint processes rather than
# on emulated channels, so only the transport-aware injector
# (:class:`repro.transport.impair.TransportFaultInjector`) can schedule
# them; the base DES :class:`~repro.faults.injector.FaultInjector`
# rejects plans containing them.


@dataclass(frozen=True)
class SendErrorBurst:
    """The OS send path fails for a window (``EAGAIN``/``ENOBUFS``-style).

    Each datagram handed to ``sendto`` during the window is refused
    with ``probability`` — counted as a send error and lost, exactly
    like the transient kernel errors the socket layer absorbs.
    ``direction`` picks whose sends fail: ``"forward"`` is endpoint A's
    outgoing datagrams, ``"reverse"`` endpoint B's.
    """

    start: float
    duration: float
    probability: float = 1.0
    direction: str = "forward"
    kind: str = field(default="send-error-burst", init=False, repr=False)

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        _check_direction(self.direction)
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability!r}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class EndpointStall:
    """One endpoint's process freezes for a window: nothing is sent,
    arriving datagrams are discarded, then normal operation resumes
    with protocol state intact (a GC pause / CPU-starved peer).
    """

    start: float
    duration: float
    endpoint: str = "b"
    kind: str = field(default="endpoint-stall", init=False, repr=False)

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        _check_endpoint(self.endpoint)

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def direction(self) -> str:
        """The traffic direction the stall silences (a stalled B stops
        feedback; a stalled A stops data)."""
        return "reverse" if self.endpoint == "b" else "forward"


@dataclass(frozen=True)
class PeerRestart:
    """One endpoint dies and comes back with no protocol state.

    During the window the peer is absent (like :class:`EndpointStall`);
    at the window's end it returns *fresh*, so the session must be
    re-established and the unacknowledged backlog replayed — the
    supervised-reconnect scenario.  Without a supervisor a restart
    degrades to a stall (the state loss goes unobserved).
    """

    start: float
    duration: float
    endpoint: str = "b"
    kind: str = field(default="peer-restart", init=False, repr=False)

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        _check_endpoint(self.endpoint)

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def direction(self) -> str:
        return "reverse" if self.endpoint == "b" else "forward"


@dataclass(frozen=True)
class HandshakeBlackhole:
    """Every datagram in both directions is silently discarded at the
    sockets for a window — the "server unreachable at connect time"
    regime that forces handshake timeout + backoff in a supervisor.
    """

    start: float
    duration: float
    kind: str = field(default="handshake-blackhole", init=False, repr=False)

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def direction(self) -> str:
        return "both"


Fault = Union[
    LinkOutage, FeedbackBlackout, BerStorm, ControlCorruption,
    SendErrorBurst, EndpointStall, PeerRestart, HandshakeBlackhole,
]

_FAULT_KINDS: dict[str, type] = {
    "outage": LinkOutage,
    "feedback-blackout": FeedbackBlackout,
    "ber-storm": BerStorm,
    "control-corruption": ControlCorruption,
    "send-error-burst": SendErrorBurst,
    "endpoint-stall": EndpointStall,
    "peer-restart": PeerRestart,
    "handshake-blackhole": HandshakeBlackhole,
}

#: Kinds that act on sockets/processes instead of emulated channels.
TRANSPORT_FAULT_KINDS = frozenset(
    {"send-error-burst", "endpoint-stall", "peer-restart",
     "handshake-blackhole"}
)


def fault_from_dict(data: Mapping[str, Any]) -> Fault:
    """Rebuild one fault from its :func:`dataclasses.asdict` form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in _FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r} "
            f"(use one of: {', '.join(sorted(_FAULT_KINDS))})"
        )
    cls = _FAULT_KINDS[kind]
    allowed = {f.name for f in fields(cls) if f.init}
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(
            f"unknown field(s) {sorted(unknown)} for fault kind {kind!r}"
        )
    if "params" in payload and isinstance(payload["params"], list):
        payload["params"] = tuple(tuple(item) for item in payload["params"])
    return cls(**payload)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of faults one run will experience."""

    faults: tuple[Fault, ...] = ()
    name: str = "faults"

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not hasattr(fault, "kind") or fault.kind not in _FAULT_KINDS:
                raise TypeError(f"not a fault: {fault!r}")

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def horizon(self) -> float:
        """Time of the last fault's end (0.0 for an empty plan)."""
        return max((fault.end for fault in self.faults), default=0.0)

    def outages(self) -> list[Fault]:
        """The channel-cutting faults (outages and feedback blackouts)."""
        return [f for f in self.faults if f.kind in ("outage", "feedback-blackout")]

    def transport_faults(self) -> list[Fault]:
        """The socket/process-level faults (UDP-backend only)."""
        return [f for f in self.faults if f.kind in TRANSPORT_FAULT_KINDS]

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe; ``asdict`` keeps the ``kind`` tags)."""
        return {
            "name": self.name,
            "faults": [asdict(fault) for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            name=data.get("name", "faults"),
            faults=tuple(fault_from_dict(f) for f in data.get("faults", ())),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def single_outage(
        cls, start: float, duration: float, direction: str = "both",
        name: str = "single-outage",
    ) -> "FaultPlan":
        """The workhorse one-outage plan (E10's scenario, declaratively)."""
        return cls(
            faults=(LinkOutage(start=start, duration=duration, direction=direction),),
            name=name,
        )

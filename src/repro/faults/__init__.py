"""Fault injection and recovery metrics for LAMS-DLC simulations.

Declare what goes wrong (:class:`FaultPlan` of outages, feedback
blackouts, BER storms, control-frame corruption), schedule it onto a
live simulation (:class:`FaultInjector`), and measure how the protocol
notices and recovers (:class:`RecoveryMetrics`).  See ``docs/FAULTS.md``.
"""

from .injector import ControlCorruptingModel, FaultInjector
from .metrics import (
    OutageRecord,
    RecoveryMetrics,
    declared_failure_bound,
    detection_bound,
)
from .plan import (
    TRANSPORT_FAULT_KINDS,
    BerStorm,
    ControlCorruption,
    EndpointStall,
    Fault,
    FaultPlan,
    FeedbackBlackout,
    HandshakeBlackhole,
    LinkOutage,
    PeerRestart,
    SendErrorBurst,
    fault_from_dict,
)

__all__ = [
    "BerStorm",
    "ControlCorruption",
    "ControlCorruptingModel",
    "EndpointStall",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FeedbackBlackout",
    "HandshakeBlackhole",
    "LinkOutage",
    "OutageRecord",
    "PeerRestart",
    "RecoveryMetrics",
    "SendErrorBurst",
    "TRANSPORT_FAULT_KINDS",
    "declared_failure_bound",
    "detection_bound",
    "fault_from_dict",
]

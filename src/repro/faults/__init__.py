"""Fault injection and recovery metrics for LAMS-DLC simulations.

Declare what goes wrong (:class:`FaultPlan` of outages, feedback
blackouts, BER storms, control-frame corruption), schedule it onto a
live simulation (:class:`FaultInjector`), and measure how the protocol
notices and recovers (:class:`RecoveryMetrics`).  See ``docs/FAULTS.md``.
"""

from .injector import ControlCorruptingModel, FaultInjector
from .metrics import (
    OutageRecord,
    RecoveryMetrics,
    declared_failure_bound,
    detection_bound,
)
from .plan import (
    BerStorm,
    ControlCorruption,
    Fault,
    FaultPlan,
    FeedbackBlackout,
    LinkOutage,
    fault_from_dict,
)

__all__ = [
    "BerStorm",
    "ControlCorruption",
    "ControlCorruptingModel",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FeedbackBlackout",
    "LinkOutage",
    "OutageRecord",
    "RecoveryMetrics",
    "declared_failure_bound",
    "detection_bound",
    "fault_from_dict",
]

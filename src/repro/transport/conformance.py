"""Cross-backend conformance: the same golden scenarios on DES and UDP.

The transport backend's correctness claim is that it changes the
*substrate*, not the *protocol*: the identical sender/receiver state
machines run over real sockets instead of virtual time.  This module
states that claim as an executable check — a set of **golden
scenarios** (small, real-time-friendly operating points) is run on both
backends with the same seed, payload set, and monitor suite, and the
outcomes are compared on:

- the **delivered-payload digest** — SHA-256 over the destination
  resequencer's in-order release stream, which must equal the digest of
  the offered payloads (zero loss, restored order) on both backends;
- the **monitor verdict** — the invariant suite's ok flag and the set
  of violated invariant names must match (normally both clean).

Event *timing* is not compared: wall time and virtual time schedule
differently by construction.  What must agree is what the paper's
guarantees talk about — the delivered byte stream and the invariants.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from ..netlayer.packet import Datagram
from ..netlayer.resequencer import Resequencer
from ..workloads.scenarios import LinkScenario, build_simulation

__all__ = [
    "BackendReport",
    "ConformanceReport",
    "GOLDEN_SCENARIOS",
    "golden_scenario",
    "make_payload",
    "payload_digest",
    "payload_index",
    "resequence_digest",
    "run_conformance",
    "run_des_reference",
]

_INDEX_DIGITS = 8
_HEADER_LEN = _INDEX_DIGITS + 1  # "00000042|"


def make_payload(index: int, size: int = 256) -> bytes:
    """Deterministic payload *index*: parseable header + pseudo-random fill.

    The header carries the end-to-end sequence number in clear ASCII so
    the destination can resequence; the filler is a cheap index-keyed
    byte pattern so digests catch any payload mixup, truncation, or
    corruption — not just reordering.
    """
    if size < _HEADER_LEN:
        raise ValueError(f"payload size must be >= {_HEADER_LEN}, got {size}")
    header = b"%0*d|" % (_INDEX_DIGITS, index)
    body = bytes((index * 131 + i * 29 + 7) & 0xFF
                 for i in range(size - _HEADER_LEN))
    return header + body


def payload_index(data: Any) -> Optional[int]:
    """The end-to-end sequence number of a :func:`make_payload` payload,
    or ``None`` for anything that does not parse."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        return None
    data = bytes(data)
    if len(data) < _HEADER_LEN or data[_INDEX_DIGITS:_HEADER_LEN] != b"|":
        return None
    head = data[:_INDEX_DIGITS]
    if not head.isdigit():
        return None
    return int(head)


def payload_digest(payloads: Iterable[bytes]) -> str:
    """SHA-256 over the concatenated payload stream (order-sensitive)."""
    digest = hashlib.sha256()
    for data in payloads:
        digest.update(data)
    return digest.hexdigest()


def resequence_digest(delivered: Iterable[Any]) -> tuple[str, int]:
    """Destination-resequence *delivered* payloads; ``(digest, dups)``.

    Mirrors the paper's destination-node responsibility: the DLC stream
    may arrive out of order (and, under enforced recovery, duplicated);
    the digest is over the in-order deduplicated release stream.
    """
    resequencer = Resequencer()
    released: list[bytes] = []
    for data in delivered:
        index = payload_index(data)
        if index is None:
            continue
        datagram = Datagram(source="flow", destination="dest",
                            sequence=index, created_at=0.0, data=bytes(data))
        released.extend(out.data for out in resequencer.push(datagram))
    return payload_digest(released), resequencer.duplicates_dropped


# -- golden scenarios -------------------------------------------------------

# Real-time-friendly operating points: 2 Mbps keeps serialization at
# ~1 ms/frame (far above scheduler jitter), 5,000 km keeps the paper's
# propagation regime (16.7 ms one way), and a 20 ms checkpoint interval
# keeps recovery rounds short enough that a lossy session still
# finishes in a couple of wall seconds.
GOLDEN_SCENARIOS: dict[str, LinkScenario] = {
    "clean": LinkScenario(
        name="golden-clean", bit_rate=2e6, distance_km=5000.0,
        iframe_ber=0.0, cframe_ber=0.0,
        iframe_payload_bits=2048, iframe_overhead_bits=80, cframe_bits=96,
        checkpoint_interval=0.020, cumulation_depth=3,
        processing_time=10e-6,
    ),
    # ~8% I-frame error rate: every session exercises NAK recovery and
    # renumbered retransmission; the control channel stays near-perfect
    # like the paper's FEC-protected checkpoints.
    "lossy": LinkScenario(
        name="golden-lossy", bit_rate=2e6, distance_km=5000.0,
        iframe_ber=4e-5, cframe_ber=1e-6,
        iframe_payload_bits=2048, iframe_overhead_bits=80, cframe_bits=96,
        checkpoint_interval=0.020, cumulation_depth=3,
        processing_time=10e-6,
    ),
}


def golden_scenario(name: str) -> LinkScenario:
    """Look up a golden conformance scenario by short name."""
    try:
        return GOLDEN_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown golden scenario {name!r}; "
            f"available: {sorted(GOLDEN_SCENARIOS)}"
        ) from None


# -- backend runs -----------------------------------------------------------


@dataclass(frozen=True)
class BackendReport:
    """One backend's outcome on one golden scenario."""

    backend: str
    completed: bool
    delivered_unique: int
    duplicates: int
    digest: str
    monitors_ok: bool
    violation_names: tuple[str, ...]
    retransmissions: Optional[int] = None

    @property
    def verdict(self) -> tuple[bool, tuple[str, ...]]:
        """The comparable monitor verdict: (ok, violated invariants)."""
        return (self.monitors_ok, self.violation_names)


def _violation_names(suite: Any) -> tuple[str, ...]:
    if suite is None:
        return ()
    return tuple(sorted({v.invariant for v in suite.violations}))


def run_des_reference(
    scenario: LinkScenario,
    protocol: str = "lams",
    seed: int = 0,
    *,
    n_frames: int = 48,
    payload_bytes: int = 256,
    overrides: Optional[dict] = None,
    max_virtual_time: float = 30.0,
) -> BackendReport:
    """The golden transfer on the DES backend, invariants attached.

    Offers the same :func:`make_payload` payload set the UDP session
    uses, runs (virtual time) until the destination has every payload
    and the sender's ledger has drained, then finalizes the monitors.
    """
    setup = build_simulation(
        scenario, protocol, seed=seed, overrides=overrides,
        run_with_invariants=True,
    )
    payloads = [make_payload(i, payload_bytes) for i in range(n_frames)]
    for payload in payloads:
        setup.endpoint_a.accept(payload)
    seen: set[int] = set()
    cursor = 0
    completed = False
    while setup.sim.now < max_virtual_time:
        setup.run(until=setup.sim.now + 0.05)
        while cursor < len(setup.delivered):
            index = payload_index(setup.delivered[cursor])
            if index is not None:
                seen.add(index)
            cursor += 1
        if len(seen) >= n_frames:
            completed = True
            break
    if completed:
        # Quiesce: drain the sender's zero-loss ledger (checkpoint
        # releases for the last frames are still in flight).
        sender = getattr(setup.endpoint_a, "sender", None)
        if sender is not None and hasattr(sender, "held_payloads"):
            config = sender.config
            budget = 2.0 * config.resolving_period(scenario.round_trip_time)
            target = setup.sim.now + budget + scenario.round_trip_time
            while setup.sim.now < target and sender.held_payloads():
                setup.run(until=setup.sim.now + 0.01)
    setup.endpoint_a.stop()
    setup.endpoint_b.stop()
    suite = setup.finalize_monitors()
    digest, duplicates = resequence_digest(list(setup.delivered))
    sender = getattr(setup.endpoint_a, "sender", None)
    return BackendReport(
        backend="des",
        completed=completed,
        delivered_unique=len(seen),
        duplicates=duplicates,
        digest=digest,
        monitors_ok=suite.ok if suite is not None else True,
        violation_names=_violation_names(suite),
        retransmissions=getattr(sender, "retransmissions", None),
    )


def _udp_report(result: Any) -> BackendReport:
    suite = result.monitors
    return BackendReport(
        backend="udp",
        completed=result.completed,
        delivered_unique=result.delivered_unique,
        duplicates=result.duplicates,
        digest=result.digest,
        monitors_ok=suite.ok if suite is not None else True,
        violation_names=_violation_names(suite),
        retransmissions=result.stats.get("retransmissions"),
    )


@dataclass(frozen=True)
class ConformanceReport:
    """DES-vs-UDP comparison for one golden scenario."""

    scenario: str
    seed: int
    n_frames: int
    expected_digest: str
    des: BackendReport
    udp: BackendReport

    @property
    def matches(self) -> bool:
        """Both backends complete, byte-exact, with identical verdicts."""
        return not self.mismatches()

    def mismatches(self) -> list[str]:
        """Human-readable list of every way the backends disagree."""
        problems: list[str] = []
        for report in (self.des, self.udp):
            if not report.completed:
                problems.append(f"{report.backend}: transfer incomplete "
                                f"({report.delivered_unique}/{self.n_frames})")
            if report.digest != self.expected_digest:
                problems.append(
                    f"{report.backend}: delivered digest "
                    f"{report.digest[:12]}... != expected "
                    f"{self.expected_digest[:12]}..."
                )
        if self.des.verdict != self.udp.verdict:
            problems.append(
                f"monitor verdicts differ: des={self.des.verdict} "
                f"udp={self.udp.verdict}"
            )
        return problems

    def summary(self) -> str:
        status = "MATCH" if self.matches else "MISMATCH"
        lines = [
            f"[{status}] {self.scenario} (seed={self.seed}, "
            f"{self.n_frames} frames)",
            f"  des: delivered={self.des.delivered_unique} "
            f"retx={self.des.retransmissions} ok={self.des.monitors_ok}",
            f"  udp: delivered={self.udp.delivered_unique} "
            f"retx={self.udp.retransmissions} ok={self.udp.monitors_ok}",
        ]
        lines.extend(f"  !! {problem}" for problem in self.mismatches())
        return "\n".join(lines)


def run_conformance(
    names: Optional[Iterable[str]] = None,
    *,
    protocol: str = "lams",
    seed: int = 0,
    n_frames: int = 48,
    payload_bytes: int = 256,
    timeout: float = 30.0,
    overrides: Optional[dict] = None,
) -> list[ConformanceReport]:
    """Run the golden scenarios on both backends and compare.

    This is the harness behind ``python -m repro transmit --conform``
    and the conformance test module.
    """
    from .session import run_transfer  # lazy: session imports this module

    reports: list[ConformanceReport] = []
    for name in (list(names) if names is not None else sorted(GOLDEN_SCENARIOS)):
        scenario = golden_scenario(name)
        des = run_des_reference(
            scenario, protocol, seed,
            n_frames=n_frames, payload_bytes=payload_bytes,
            overrides=overrides,
        )
        result = run_transfer(
            scenario, protocol, seed,
            n_frames=n_frames, payload_bytes=payload_bytes,
            timeout=timeout, overrides=overrides,
        )
        expected = payload_digest(
            make_payload(i, payload_bytes) for i in range(n_frames)
        )
        reports.append(ConformanceReport(
            scenario=name, seed=seed, n_frames=n_frames,
            expected_digest=expected,
            des=des, udp=_udp_report(result),
        ))
    return reports

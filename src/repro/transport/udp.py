"""UDP channels and links that duck-type the DES link layer.

The registered LAMS pair factory
(:func:`repro.core.protocol._make_lams_pair`) only touches a link
through ``link.forward`` / ``link.reverse`` / ``link.attach`` /
``link.round_trip_time`` / ``link.name``, and the sender half only
touches a channel through ``bit_rate``, ``send``, ``on_idle``,
``is_idle``, ``propagation_delay`` (plus the ``_fixed_delay`` /
``_transmitting`` / ``_queue`` fast-path attributes).  This module
provides socket-backed implementations of both shapes, so the exact
same factory wires endpoints over real sockets:

- :class:`UdpChannel` — one outgoing direction: FIFO serialization at
  ``bit_rate`` (paced on the :class:`~repro.transport.clock.AsyncioClock`),
  the :mod:`~repro.transport.impair` shim (delay/jitter/drop/corruption),
  then a real ``sendto``.  Supports ``down()``/``up()`` and live
  ``iframe_errors``/``cframe_errors`` swaps, so the
  :class:`~repro.faults.injector.FaultInjector` drives it unchanged.
- :class:`UdpEndpointSocket` — one bound datagram socket plus its
  outgoing channel; arriving datagrams are decoded (with a CRC-less
  salvage pass for corrupted-but-parseable frames) and dispatched to
  the attached endpoint between clock kicks.
- :class:`UdpLink` — a loopback pair of sockets presenting the
  :class:`~repro.simulator.link.FullDuplexLink` surface.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, Optional

from ..core.wire import WireFormatError, decode_frame, encode_frame
from ..simulator.rng import StreamRegistry
from ..simulator.trace import Tracer
from .clock import AsyncioClock
from .impair import Impairments, corrupt_crc

__all__ = ["UdpChannel", "UdpEndpointSocket", "UdpLink", "decode_datagram"]


def decode_datagram(data: bytes) -> tuple[Optional[Any], bool]:
    """Decode one datagram leniently; returns ``(frame, corrupted)``.

    A CRC-passing frame arrives clean; a CRC-failing one is re-parsed
    without verification (the DES channel's "corrupted but header
    readable" delivery); anything structurally unparseable is lost
    entirely (``(None, True)``).
    """
    try:
        return decode_frame(data), False
    except WireFormatError:
        pass
    try:
        return decode_frame(data, verify=False), True
    except WireFormatError:
        return None, True


class UdpChannel:
    """One emulated direction: serializer + impairment shim + socket.

    Mirrors :class:`~repro.simulator.link.SimplexChannel` closely —
    same FIFO/serialization semantics, same counters, same monotone
    arrival clamp, same per-class error-model attributes — but the
    "delivery" is a real datagram handed to *emit* at the emulated
    arrival instant.
    """

    def __init__(
        self,
        clock: AsyncioClock,
        name: str,
        emit: Callable[[bytes], None],
        bit_rate: float,
        impairments: Optional[Impairments] = None,
        streams: Optional[StreamRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {bit_rate!r}")
        self.sim = clock
        self.name = name
        self.bit_rate = bit_rate
        self.impairments = impairments if impairments is not None else Impairments()
        self.streams = streams or StreamRegistry()
        self.tracer = tracer or Tracer()
        self._emit = emit
        # Fast-path ABI shared with SimplexChannel (the sender half
        # reads these attributes directly).
        self._fixed_delay = float(self.impairments.propagation_delay)
        self._queue: deque[Any] = deque()
        self._transmitting = False
        self._last_arrival = -1.0
        self._is_up = True
        self.idle_callbacks: list[Callable[[], None]] = []
        self.iframe_errors, self.cframe_errors, self.drop_errors = (
            self.impairments.resolve_models(bit_rate)
        )
        self._jitter = float(self.impairments.jitter)
        self._iframe_rng = None
        self._cframe_rng = None
        self._drop_rng = None
        self._jitter_rng = None
        self.busy_seconds = 0.0
        self.frames_sent = 0
        self.frames_corrupted = 0
        self.frames_dropped = 0
        self.frames_lost_outage = 0
        self.bytes_sent = 0

    # -- wiring ----------------------------------------------------------

    def on_idle(self, callback: Callable[[], None]) -> None:
        """Register a callback fired whenever the transmit queue drains."""
        self.idle_callbacks.append(callback)

    # -- state -----------------------------------------------------------

    def propagation_delay(self, when: float) -> float:
        """The emulated (jitter-free) one-way delay."""
        return self._fixed_delay

    @property
    def is_idle(self) -> bool:
        return not self._transmitting and not self._queue

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def is_up(self) -> bool:
        return self._is_up

    def down(self) -> None:
        """Cut the direction: everything sent from now on is lost."""
        self._is_up = False

    def up(self) -> None:
        """Restore the direction."""
        self._is_up = True

    # -- transmission ----------------------------------------------------

    def send(self, frame: Any) -> None:
        """Queue *frame* for serialization (FIFO behind any busy frame)."""
        if self._transmitting:
            self._queue.append(frame)
            return
        if self._queue:
            self._queue.append(frame)
            self._start_next()
            return
        self._begin_transmit(frame)

    def transmission_time(self, frame: Any) -> float:
        return frame.size_bits / self.bit_rate

    def _begin_transmit(self, frame: Any) -> None:
        self._transmitting = True
        tx_time = frame.size_bits / self.bit_rate
        self.busy_seconds += tx_time
        clock = self.sim
        clock.schedule(tx_time, self._finish_transmit, frame, clock.now)

    def _start_next(self) -> None:
        if not self._queue:
            self._transmitting = False
            for callback in list(self.idle_callbacks):
                callback()
            return
        self._begin_transmit(self._queue.popleft())

    def _finish_transmit(self, frame: Any, departure: float) -> None:
        self.frames_sent += 1
        if not self._is_up:
            self._lose_to_outage(frame, phase="serialize")
            self._start_next()
            return
        clock = self.sim
        delay = self._fixed_delay
        if self._jitter:
            rng = self._jitter_rng
            if rng is None:
                rng = self._jitter_rng = self.streams.get(f"{self.name}.jitter")
            delay += rng.random() * self._jitter
        arrival = clock.now + delay
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival
        # Per-class corruption draw: same models, same named streams,
        # same size_bits as the DES channel would use for this frame.
        if frame.is_control:
            rng = self._cframe_rng
            if rng is None:
                rng = self._cframe_rng = self.streams.get(f"{self.name}.cframe")
            model = self.cframe_errors
        else:
            rng = self._iframe_rng
            if rng is None:
                rng = self._iframe_rng = self.streams.get(f"{self.name}.iframe")
            model = self.iframe_errors
        corrupted = model.frame_error(departure, frame.size_bits, rng)
        dropped = False
        if self.drop_errors is not None:
            rng = self._drop_rng
            if rng is None:
                rng = self._drop_rng = self.streams.get(f"{self.name}.drop")
            dropped = self.drop_errors.frame_error(departure, frame.size_bits, rng)
        data = self._encode(frame)
        if corrupted:
            self.frames_corrupted += 1
            data = corrupt_crc(data)
        if dropped:
            self.frames_dropped += 1
            if self.tracer.active:
                self.tracer.emit(clock.now, self.name, "udp_dropped",
                                 control=frame.is_control)
        else:
            clock.schedule_at(arrival, self._emit_datagram, data,
                              frame.is_control, corrupted)
        self._start_next()

    def _encode(self, frame: Any) -> bytes:
        payload = getattr(frame, "payload", None)
        if frame.is_control or payload is None:
            return encode_frame(frame)
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TypeError(
                f"the UDP backend carries real octets; I-frame payloads must "
                f"be bytes, got {type(payload).__name__}"
            )
        return encode_frame(frame, bytes(payload))

    def _emit_datagram(self, data: bytes, control: bool, corrupted: bool) -> None:
        if not self._is_up:
            self.frames_lost_outage += 1
            if self.tracer.active:
                self.tracer.emit(self.sim.now, self.name, "frame_lost_outage",
                                 phase="propagate", control=control)
            return
        self.bytes_sent += len(data)
        if self.tracer.active:
            self.tracer.emit(self.sim.now, self.name, "udp_sendto",
                             control=control, corrupted=corrupted,
                             size=len(data))
        self._emit(data)

    def _lose_to_outage(self, frame: Any, phase: str) -> None:
        self.frames_lost_outage += 1
        self.tracer.emit(
            self.sim.now, self.name, "frame_lost_outage",
            phase=phase, control=frame.is_control,
        )

    def utilization(self, now: Optional[float] = None) -> float:
        end = self.sim.now if now is None else now
        return self.busy_seconds / end if end > 0 else 0.0

    def __repr__(self) -> str:
        return f"<UdpChannel {self.name} rate={self.bit_rate:g}bps>"


class _UdpPeerProtocol(asyncio.DatagramProtocol):
    """Thin adapter handing datagrams to the owning socket object."""

    def __init__(self, owner: "UdpEndpointSocket") -> None:
        self._owner = owner

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self._owner._transport = transport

    def datagram_received(self, data: bytes, addr: Any) -> None:
        self._owner._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self._owner.socket_errors += 1


class UdpEndpointSocket:
    """One bound UDP socket, its outgoing channel, and frame dispatch.

    ``incoming_name`` labels receive-side trace events with the name of
    the emulated channel delivering *into* this socket (the peer's
    outgoing direction), matching the DES channel's ``deliver`` events.
    """

    def __init__(
        self,
        clock: AsyncioClock,
        channel: UdpChannel,
        incoming_name: str,
        tracer: Tracer,
        learn_peer: bool = False,
    ) -> None:
        self.clock = clock
        self.channel = channel
        self.incoming_name = incoming_name
        self.tracer = tracer
        self.learn_peer = learn_peer
        self.peer_addr: Optional[tuple] = None
        self.handler: Optional[Callable[[Any, bool], None]] = None
        self._transport: Optional[asyncio.DatagramTransport] = None
        self.datagrams_received = 0
        self.datagrams_undecodable = 0
        self.datagrams_unaddressed = 0
        self.bytes_received = 0
        self.socket_errors = 0
        # Fault surfaces driven by the TransportFaultInjector: a frozen
        # socket emulates a stalled/absent peer process (nothing out,
        # arrivals discarded), a blackholed one a dead network path;
        # forced_send_error_rate emulates kernel send-path failures.
        self.frozen = False
        self.blackholed = False
        self.forced_send_error_rate = 0.0
        self.send_errors = 0
        self.forced_send_errors = 0
        self.datagrams_stalled = 0
        self.datagrams_blackholed = 0
        self._fault_rng = None

    @classmethod
    async def open(
        cls,
        clock: AsyncioClock,
        *,
        outgoing_name: str,
        incoming_name: str,
        bit_rate: float,
        impairments: Optional[Impairments] = None,
        streams: Optional[StreamRegistry] = None,
        tracer: Optional[Tracer] = None,
        bind: tuple[str, int] = ("127.0.0.1", 0),
        peer: Optional[tuple[str, int]] = None,
        learn_peer: bool = False,
    ) -> "UdpEndpointSocket":
        """Bind a datagram socket and build its outgoing channel."""
        tracer = tracer or Tracer()
        channel = UdpChannel(
            clock, outgoing_name, emit=lambda data: None, bit_rate=bit_rate,
            impairments=impairments, streams=streams, tracer=tracer,
        )
        self = cls(clock, channel, incoming_name, tracer, learn_peer=learn_peer)
        channel._emit = self.sendto
        loop = asyncio.get_running_loop()
        await loop.create_datagram_endpoint(
            lambda: _UdpPeerProtocol(self), local_addr=bind,
        )
        if peer is not None:
            self.peer_addr = peer
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port)."""
        if self._transport is None:
            raise RuntimeError("socket not open")
        return self._transport.get_extra_info("sockname")[:2]

    def attach(self, handler: Callable[[Any, bool], None]) -> None:
        """Set the ``(frame, corrupted)`` callback for arriving frames."""
        self.handler = handler

    def freeze(self) -> None:
        """Emulate a stalled peer process: drop traffic in both directions."""
        self.frozen = True

    def unfreeze(self) -> None:
        self.frozen = False

    def sendto(self, data: bytes) -> None:
        """Ship one already-impaired datagram to the peer."""
        if self._transport is None or self.peer_addr is None:
            self.datagrams_unaddressed += 1
            return
        if self.frozen:
            self.datagrams_stalled += 1
            return
        if self.blackholed:
            self.datagrams_blackholed += 1
            return
        rate = self.forced_send_error_rate
        if rate:
            rng = self._fault_rng
            if rng is None:
                rng = self._fault_rng = self.channel.streams.get(
                    f"{self.channel.name}.senderr"
                )
            if rng.random() < rate:
                self.send_errors += 1
                self.forced_send_errors += 1
                if self.tracer.active:
                    self.tracer.emit(self.clock.now, self.channel.name,
                                     "udp_send_error", forced=True)
                return
        try:
            self._transport.sendto(data, self.peer_addr)
        except OSError as error:
            # Transient kernel send-path failures (EAGAIN, ENOBUFS,
            # ECONNREFUSED on a connected socket, ...): UDP promises no
            # delivery anyway, so the datagram is accounted as lost and
            # the pump keeps running.
            self.send_errors += 1
            if self.tracer.active:
                self.tracer.emit(self.clock.now, self.channel.name,
                                 "udp_send_error", forced=False,
                                 errno=getattr(error, "errno", None))

    def _on_datagram(self, data: bytes, addr: Any) -> None:
        if self.frozen:
            self.datagrams_stalled += 1
            return
        if self.blackholed:
            self.datagrams_blackholed += 1
            return
        self.datagrams_received += 1
        self.bytes_received += len(data)
        if self.peer_addr is None and self.learn_peer:
            self.peer_addr = addr
        frame, corrupted = decode_datagram(data)
        if frame is None:
            self.datagrams_undecodable += 1
            if self.tracer.active:
                self.tracer.emit(self.clock.now, self.incoming_name,
                                 "udp_undecodable", size=len(data))
            return
        # Bracketing kicks: run due timers before the arrival, stamp the
        # dispatch at wall time, and re-arm for whatever it scheduled.
        self.clock.kick()
        if self.tracer.active:
            self.tracer.emit(self.clock.now, self.incoming_name, "deliver",
                             control=frame.is_control, corrupted=corrupted)
        handler = self.handler
        if handler is not None:
            handler(frame, corrupted)
        self.clock.kick()

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None


class UdpLink:
    """A loopback socket pair with the :class:`FullDuplexLink` surface.

    ``forward`` carries A→B (socket A's outgoing channel), ``reverse``
    B→A; :meth:`attach` wires each endpoint's ``on_frame`` to the
    socket its traffic arrives at, exactly like the DES link.
    """

    def __init__(
        self,
        clock: AsyncioClock,
        name: str,
        socket_a: UdpEndpointSocket,
        socket_b: UdpEndpointSocket,
        streams: StreamRegistry,
        tracer: Tracer,
    ) -> None:
        self.sim = clock
        self.name = name
        self.socket_a = socket_a
        self.socket_b = socket_b
        self.forward = socket_a.channel
        self.reverse = socket_b.channel
        self.streams = streams
        self.tracer = tracer

    @classmethod
    async def open(
        cls,
        clock: AsyncioClock,
        *,
        name: str = "udp",
        bit_rate: float,
        impairments: Optional[Impairments] = None,
        reverse_impairments: Optional[Impairments] = None,
        seed: int = 0,
        streams: Optional[StreamRegistry] = None,
        tracer: Optional[Tracer] = None,
        host: str = "127.0.0.1",
    ) -> "UdpLink":
        """Open both localhost sockets and point them at each other."""
        streams = streams or StreamRegistry(seed=seed)
        tracer = tracer or Tracer()
        socket_a = await UdpEndpointSocket.open(
            clock, outgoing_name=f"{name}.fwd", incoming_name=f"{name}.rev",
            bit_rate=bit_rate, impairments=impairments, streams=streams,
            tracer=tracer, bind=(host, 0),
        )
        socket_b = await UdpEndpointSocket.open(
            clock, outgoing_name=f"{name}.rev", incoming_name=f"{name}.fwd",
            bit_rate=bit_rate,
            impairments=(reverse_impairments if reverse_impairments is not None
                         else impairments),
            streams=streams, tracer=tracer, bind=(host, 0),
        )
        socket_a.peer_addr = socket_b.address
        socket_b.peer_addr = socket_a.address
        return cls(clock, name, socket_a, socket_b, streams, tracer)

    def attach(
        self,
        endpoint_a: Callable[[Any, bool], None],
        endpoint_b: Callable[[Any, bool], None],
    ) -> None:
        """Wire receive handlers: A hears the reverse direction, B the forward."""
        self.socket_a.attach(endpoint_a)
        self.socket_b.attach(endpoint_b)

    def round_trip_time(self, when: float = 0.0) -> float:
        """Emulated propagation-only RTT (no serialization, no jitter)."""
        return (self.forward.propagation_delay(when)
                + self.reverse.propagation_delay(when))

    def down(self) -> None:
        self.forward.down()
        self.reverse.down()

    def up(self) -> None:
        self.forward.up()
        self.reverse.up()

    def close(self) -> None:
        """Close both sockets (pending emulated arrivals are dropped)."""
        self.socket_a.close()
        self.socket_b.close()

    def __repr__(self) -> str:
        return f"<UdpLink {self.name}>"

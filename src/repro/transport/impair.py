"""The emulated-impairment shim for the UDP backend.

A localhost socket is, for this protocol's purposes, a perfect
zero-delay channel — useless for studying ARQ behaviour.  The shim
reproduces :class:`~repro.workloads.scenarios.LinkScenario` conditions
on the wire, applied on the *sending* side before the datagram reaches
the kernel:

- **delay / jitter** — the scenario's one-way propagation delay plus an
  optional uniform jitter, scheduled on the
  :class:`~repro.transport.clock.AsyncioClock`; arrivals are clamped
  monotone exactly like the DES channel, so frames never overtake.
- **corruption** — drawn per frame from the same string-keyed
  error-model registry (:mod:`repro.simulator.errormodel`) the DES
  channel uses, with the same per-class named RNG streams
  (``"<channel>.iframe"`` / ``"<channel>.cframe"``), then applied to
  real bytes by flipping the CRC trailer: the frame stays parseable
  (header salvage, matching the DES ``corrupted=True`` delivery) but
  fails its checksum.
- **drop** — datagram loss, itself a registered error model
  (``"uniform-loss"``, registered here) drawn from its own stream, so
  loss processes are seeded and named like every other error process.

Because every random decision goes through a
:class:`~repro.simulator.rng.StreamRegistry` stream derived from the
session seed, a UDP run's impairment sequence is as reproducible as a
DES run's (timing, of course, is not).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

import numpy as np

from ..simulator.errormodel import (
    ErrorModel,
    ErrorModelSpec,
    register_error_model,
    resolve_error_model,
)

__all__ = ["Impairments", "UniformLossModel", "corrupt_crc"]


class UniformLossModel:
    """Size-independent i.i.d. datagram loss at a fixed probability.

    Registered as ``"uniform-loss"`` so drop processes resolve through
    the same registry as corruption processes.
    """

    def __init__(self, probability: float = 0.0, **_context: Any) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1]: {probability!r}")
        self.probability = probability

    def frame_error(self, start: float, bits: int, rng: np.random.Generator) -> bool:
        return bool(self.probability and rng.random() < self.probability)

    def __repr__(self) -> str:
        return f"UniformLossModel(p={self.probability:g})"


register_error_model("uniform-loss", UniformLossModel)


def corrupt_crc(data: bytes) -> bytes:
    """Damage *data* so its CRC fails but its structure still parses.

    Flipping the trailer (not the body) mirrors the DES channel, which
    delivers corrupted frames with readable headers — the receiving
    protocol decides what a detectable error salvages.
    """
    if not data:
        return data
    return data[:-1] + bytes((data[-1] ^ 0xFF,))


@dataclass(frozen=True)
class Impairments:
    """One direction's emulated link conditions.

    ``iframe_errors`` / ``cframe_errors`` / ``drop`` accept any
    :data:`~repro.simulator.errormodel.ErrorModelSpec` (registered
    name, ``(name, kwargs)``, mapping, instance); ``None`` keeps the
    historical default — Bernoulli at the class BER when nonzero,
    perfect otherwise.
    """

    propagation_delay: float = 0.0
    jitter: float = 0.0
    drop: ErrorModelSpec = None
    iframe_errors: ErrorModelSpec = None
    cframe_errors: ErrorModelSpec = None
    iframe_ber: float = 0.0
    cframe_ber: float = 0.0

    def __post_init__(self) -> None:
        if self.propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")
        if self.jitter < 0:
            raise ValueError("jitter cannot be negative")

    @classmethod
    def from_scenario(
        cls,
        scenario: Any,
        *,
        jitter: float = 0.0,
        drop: Optional[float] = None,
    ) -> "Impairments":
        """The scenario's link conditions as wire impairments.

        *drop* is a plain probability shorthand for the
        ``"uniform-loss"`` model (``None``/0 means no loss).
        """
        drop_spec: ErrorModelSpec = None
        if drop:
            drop_spec = ("uniform-loss", {"probability": float(drop)})
        return cls(
            propagation_delay=scenario.one_way_delay,
            jitter=jitter,
            drop=drop_spec,
            iframe_errors=scenario.iframe_error_model,
            cframe_errors=scenario.cframe_error_model,
            iframe_ber=scenario.iframe_ber,
            cframe_ber=scenario.cframe_ber,
        )

    def with_(self, **changes: Any) -> "Impairments":
        """A copy with fields replaced."""
        return replace(self, **changes)

    def resolve_models(
        self, bit_rate: float,
    ) -> tuple[ErrorModel, ErrorModel, Optional[ErrorModel]]:
        """``(iframe_model, cframe_model, drop_model)`` live instances."""
        iframe = resolve_error_model(
            self.iframe_errors, ber=self.iframe_ber, bit_rate=bit_rate,
        )
        cframe = resolve_error_model(
            self.cframe_errors, ber=self.cframe_ber, bit_rate=bit_rate,
        )
        drop = None
        if self.drop is not None:
            drop = resolve_error_model(self.drop, bit_rate=bit_rate)
        return iframe, cframe, drop

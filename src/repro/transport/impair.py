"""The emulated-impairment shim for the UDP backend.

A localhost socket is, for this protocol's purposes, a perfect
zero-delay channel — useless for studying ARQ behaviour.  The shim
reproduces :class:`~repro.workloads.scenarios.LinkScenario` conditions
on the wire, applied on the *sending* side before the datagram reaches
the kernel:

- **delay / jitter** — the scenario's one-way propagation delay plus an
  optional uniform jitter, scheduled on the
  :class:`~repro.transport.clock.AsyncioClock`; arrivals are clamped
  monotone exactly like the DES channel, so frames never overtake.
- **corruption** — drawn per frame from the same string-keyed
  error-model registry (:mod:`repro.simulator.errormodel`) the DES
  channel uses, with the same per-class named RNG streams
  (``"<channel>.iframe"`` / ``"<channel>.cframe"``), then applied to
  real bytes by flipping the CRC trailer: the frame stays parseable
  (header salvage, matching the DES ``corrupted=True`` delivery) but
  fails its checksum.
- **drop** — datagram loss, itself a registered error model
  (``"uniform-loss"``, registered here) drawn from its own stream, so
  loss processes are seeded and named like every other error process.

Because every random decision goes through a
:class:`~repro.simulator.rng.StreamRegistry` stream derived from the
session seed, a UDP run's impairment sequence is as reproducible as a
DES run's (timing, of course, is not).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Optional

import numpy as np

from ..faults.injector import FaultInjector
from ..faults.plan import TRANSPORT_FAULT_KINDS, Fault
from ..simulator.errormodel import (
    ErrorModel,
    ErrorModelSpec,
    register_error_model,
    resolve_error_model,
)

__all__ = [
    "Impairments",
    "TransportFaultInjector",
    "UniformLossModel",
    "corrupt_crc",
]


class UniformLossModel:
    """Size-independent i.i.d. datagram loss at a fixed probability.

    Registered as ``"uniform-loss"`` so drop processes resolve through
    the same registry as corruption processes.
    """

    def __init__(self, probability: float = 0.0, **_context: Any) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1]: {probability!r}")
        self.probability = probability

    def frame_error(self, start: float, bits: int, rng: np.random.Generator) -> bool:
        return bool(self.probability and rng.random() < self.probability)

    def draw_window(self, starts, sizes, rng: np.random.Generator) -> list[bool]:
        """Bulk draws, bit-identical to scalar: ``Generator.random(n)``
        yields the same variates as n successive ``random()`` calls, and
        a zero probability draws nothing either way."""
        if not self.probability:
            return [False] * len(sizes)
        probability = self.probability
        draws = rng.random(len(sizes))
        return [bool(draws.item(k) < probability) for k in range(len(sizes))]

    def __repr__(self) -> str:
        return f"UniformLossModel(p={self.probability:g})"


register_error_model("uniform-loss", UniformLossModel)


def corrupt_crc(data: bytes) -> bytes:
    """Damage *data* so its CRC fails but its structure still parses.

    Flipping the trailer (not the body) mirrors the DES channel, which
    delivers corrupted frames with readable headers — the receiving
    protocol decides what a detectable error salvages.
    """
    if not data:
        return data
    return data[:-1] + bytes((data[-1] ^ 0xFF,))


@dataclass(frozen=True)
class Impairments:
    """One direction's emulated link conditions.

    ``iframe_errors`` / ``cframe_errors`` / ``drop`` accept any
    :data:`~repro.simulator.errormodel.ErrorModelSpec` (registered
    name, ``(name, kwargs)``, mapping, instance); ``None`` keeps the
    historical default — Bernoulli at the class BER when nonzero,
    perfect otherwise.
    """

    propagation_delay: float = 0.0
    jitter: float = 0.0
    drop: ErrorModelSpec = None
    iframe_errors: ErrorModelSpec = None
    cframe_errors: ErrorModelSpec = None
    iframe_ber: float = 0.0
    cframe_ber: float = 0.0

    def __post_init__(self) -> None:
        if self.propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")
        if self.jitter < 0:
            raise ValueError("jitter cannot be negative")

    @classmethod
    def from_scenario(
        cls,
        scenario: Any,
        *,
        jitter: float = 0.0,
        drop: Optional[float] = None,
        direction: str = "forward",
    ) -> "Impairments":
        """The scenario's link conditions as wire impairments.

        *drop* is a plain probability shorthand for the
        ``"uniform-loss"`` model (``None``/0 means no loss).

        ``direction="reverse"`` builds the feedback direction (receiver
        -> sender, carrying checkpoints and NAKs) from the scenario's
        ``reverse_*`` fields, each falling back to the forward value —
        identical impairments unless the scenario declares an
        asymmetric feedback channel.
        """
        if direction not in ("forward", "reverse"):
            raise ValueError(
                f"direction must be 'forward' or 'reverse', got {direction!r}"
            )
        drop_spec: ErrorModelSpec = None
        if drop:
            drop_spec = ("uniform-loss", {"probability": float(drop)})
        iframe_errors = scenario.iframe_error_model
        cframe_errors = scenario.cframe_error_model
        iframe_ber = scenario.iframe_ber
        cframe_ber = scenario.cframe_ber
        if direction == "reverse":
            if scenario.reverse_iframe_error_model is not None:
                iframe_errors = scenario.reverse_iframe_error_model
            if scenario.reverse_cframe_error_model is not None:
                cframe_errors = scenario.reverse_cframe_error_model
            if scenario.reverse_iframe_ber is not None:
                iframe_ber = scenario.reverse_iframe_ber
            if scenario.reverse_cframe_ber is not None:
                cframe_ber = scenario.reverse_cframe_ber
        return cls(
            propagation_delay=scenario.one_way_delay,
            jitter=jitter,
            drop=drop_spec,
            iframe_errors=iframe_errors,
            cframe_errors=cframe_errors,
            iframe_ber=iframe_ber,
            cframe_ber=cframe_ber,
        )

    def with_(self, **changes: Any) -> "Impairments":
        """A copy with fields replaced."""
        return replace(self, **changes)

    def resolve_models(
        self, bit_rate: float,
    ) -> tuple[ErrorModel, ErrorModel, Optional[ErrorModel]]:
        """``(iframe_model, cframe_model, drop_model)`` live instances."""
        iframe = resolve_error_model(
            self.iframe_errors, ber=self.iframe_ber, bit_rate=bit_rate,
        )
        cframe = resolve_error_model(
            self.cframe_errors, ber=self.cframe_ber, bit_rate=bit_rate,
        )
        drop = None
        if self.drop is not None:
            drop = resolve_error_model(self.drop, bit_rate=bit_rate)
        return iframe, cframe, drop


class TransportFaultInjector(FaultInjector):
    """A :class:`~repro.faults.injector.FaultInjector` that also drives
    the transport-native fault kinds against a
    :class:`~repro.transport.udp.UdpLink`'s real sockets.

    Classic channel faults (outages, blackouts, BER storms, control
    corruption) delegate to the base injector unchanged — the
    :class:`~repro.transport.udp.UdpChannel` duck-types
    ``SimplexChannel`` — while the transport kinds act one layer lower:

    - ``send-error-burst`` — forces the named socket's ``sendto`` to
      fail with the fault's probability (drawn from the channel's own
      seeded ``.senderr`` stream), the emulated twin of
      ``EAGAIN``/``ENOBUFS`` bursts.
    - ``endpoint-stall`` — freezes one endpoint's socket: nothing goes
      out, arrivals are discarded, protocol timers keep running (the
      external behaviour of a CPU-starved peer).
    - ``peer-restart`` — a stall whose end additionally fires
      :attr:`on_peer_restart`, letting a
      :class:`~repro.transport.supervisor.SessionSupervisor` model the
      peer returning with no protocol state.  Unsupervised sessions see
      it as a plain stall.
    - ``handshake-blackhole`` — blackholes both sockets (every datagram
      in either direction is discarded), the unreachable-server regime.

    Stalls and blackholes are depth-counted so overlapping windows nest;
    concurrent send-error bursts on one socket apply the largest active
    probability.
    """

    supported_kinds = FaultInjector.supported_kinds | TRANSPORT_FAULT_KINDS

    def __init__(self, sim, link, plan, tracer=None) -> None:
        self._stall_depth: dict[str, int] = {"a": 0, "b": 0}
        self._blackhole_depth = 0
        self._send_bursts: dict[str, list[float]] = {"a": [], "b": []}
        self.on_peer_restart: Optional[Callable[[Fault], None]] = None
        super().__init__(sim, link, plan, tracer=tracer)

    # -- wiring -----------------------------------------------------------

    def _sockets(self, letters: tuple[str, ...]) -> list[Any]:
        lookup = {"a": self.link.socket_a, "b": self.link.socket_b}
        return [lookup[letter] for letter in letters]

    @staticmethod
    def _burst_letters(direction: str) -> tuple[str, ...]:
        # Forward traffic leaves socket A, reverse traffic socket B.
        if direction == "forward":
            return ("a",)
        if direction == "reverse":
            return ("b",)
        return ("a", "b")

    def _apply_burst_rates(self) -> None:
        for letter, rates in self._send_bursts.items():
            socket = self._sockets((letter,))[0]
            socket.forced_send_error_rate = max(rates, default=0.0)

    # -- fault lifecycle --------------------------------------------------

    def _begin(self, index: int, fault: Fault) -> None:
        kind = fault.kind
        if kind not in TRANSPORT_FAULT_KINDS:
            super()._begin(index, fault)
            return
        self.faults_started += 1
        if kind == "send-error-burst":
            for letter in self._burst_letters(fault.direction):
                self._send_bursts[letter].append(fault.probability)
            self._apply_burst_rates()
        elif kind in ("endpoint-stall", "peer-restart"):
            depth = self._stall_depth[fault.endpoint]
            if depth == 0:
                self._sockets((fault.endpoint,))[0].freeze()
            self._stall_depth[fault.endpoint] = depth + 1
        elif kind == "handshake-blackhole":
            if self._blackhole_depth == 0:
                for socket in self._sockets(("a", "b")):
                    socket.blackholed = True
            self._blackhole_depth += 1
        self.tracer.emit(
            self.sim.now, "faults", "fault_start",
            index=index, kind=kind, direction=fault.direction,
            duration=fault.duration,
        )

    def _finish(self, index: int, fault: Fault) -> None:
        kind = fault.kind
        if kind not in TRANSPORT_FAULT_KINDS:
            super()._finish(index, fault)
            return
        self.faults_ended += 1
        if kind == "send-error-burst":
            for letter in self._burst_letters(fault.direction):
                rates = self._send_bursts[letter]
                if fault.probability in rates:
                    rates.remove(fault.probability)
            self._apply_burst_rates()
        elif kind in ("endpoint-stall", "peer-restart"):
            depth = self._stall_depth[fault.endpoint] - 1
            self._stall_depth[fault.endpoint] = max(depth, 0)
            if depth <= 0:
                self._sockets((fault.endpoint,))[0].unfreeze()
        elif kind == "handshake-blackhole":
            self._blackhole_depth = max(self._blackhole_depth - 1, 0)
            if self._blackhole_depth == 0:
                for socket in self._sockets(("a", "b")):
                    socket.blackholed = False
        self.tracer.emit(
            self.sim.now, "faults", "fault_end",
            index=index, kind=kind, direction=fault.direction,
        )
        if kind == "peer-restart" and self.on_peer_restart is not None:
            self.on_peer_restart(fault)

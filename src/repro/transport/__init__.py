"""Real-network asyncio-UDP backend for LAMS-DLC endpoints.

The protocol halves in :mod:`repro.core` are written against the
:class:`~repro.core.clock.Clock` scheduling contract, not against
virtual time.  This package supplies the second implementation of that
contract — :class:`~repro.transport.clock.AsyncioClock` maps the event
heap onto the asyncio event loop — plus everything needed to run two
LAMS-DLC endpoints over actual UDP sockets:

- :mod:`repro.transport.udp` — :class:`UdpChannel` (serialization,
  emulated impairment, real ``sendto``) and :class:`UdpLink` (a
  loopback socket pair that duck-types
  :class:`~repro.simulator.link.FullDuplexLink`), so the registered
  LAMS pair factory works verbatim.
- :mod:`repro.transport.impair` — the emulated-impairment shim:
  delay/jitter/drop plus per-frame-class corruption drawn from the
  string-keyed error-model registry, reproducing
  :class:`~repro.workloads.scenarios.LinkScenario` conditions on the
  wire.
- :mod:`repro.transport.session` — loopback sessions with the
  invariant :class:`~repro.invariants.monitors.MonitorSuite` attached
  to live traffic, and single-socket endpoints for two-process
  ``serve``/``transmit``.
- :mod:`repro.transport.conformance` — the golden scenarios run on
  both backends with wire digests and monitor verdicts compared.

Importing :mod:`repro.transport.backend` (done lazily by the backend
registry) registers the ``"udp"`` backend for
``make_endpoint_pair(..., backend="udp")``.

See ``docs/TRANSPORT.md`` for the architecture walkthrough.
"""

from __future__ import annotations

from .clock import AsyncioClock
from .conformance import (
    GOLDEN_SCENARIOS,
    ConformanceReport,
    golden_scenario,
    make_payload,
    payload_digest,
    payload_index,
    run_conformance,
)
from .impair import Impairments, TransportFaultInjector, corrupt_crc
from .session import (
    ClientReport,
    Deadline,
    ServeReport,
    TransportResult,
    TransportSetup,
    install_signal_stop,
    run_client,
    run_serve,
    run_transfer,
)
from .supervisor import (
    DecorrelatedJitterBackoff,
    SessionSupervisor,
    SupervisorPolicy,
    run_supervised_transfer,
)
from .udp import UdpChannel, UdpEndpointSocket, UdpLink, decode_datagram

__all__ = [
    "AsyncioClock",
    "ClientReport",
    "ConformanceReport",
    "Deadline",
    "DecorrelatedJitterBackoff",
    "GOLDEN_SCENARIOS",
    "Impairments",
    "ServeReport",
    "SessionSupervisor",
    "SupervisorPolicy",
    "TransportFaultInjector",
    "TransportResult",
    "TransportSetup",
    "UdpChannel",
    "UdpEndpointSocket",
    "UdpLink",
    "corrupt_crc",
    "decode_datagram",
    "golden_scenario",
    "install_signal_stop",
    "make_payload",
    "payload_digest",
    "payload_index",
    "run_client",
    "run_conformance",
    "run_serve",
    "run_supervised_transfer",
    "run_transfer",
]

"""Registers the ``"udp"`` transport backend.

Imported lazily by the backend registry
(:func:`repro.core.endpoint.resolve_backend`) the first time anyone
asks for ``backend="udp"``; importing this module is what makes the
backend available.

The UDP backend carries only the LAMS family: it needs a byte-exact
frame codec (:mod:`repro.core.wire`), which the comparison protocols
(SR-HDLC/GBN, NBDT) — simulation-only baselines — do not define.
"""

from __future__ import annotations

from typing import Any

from ..core.endpoint import PairFactory, TransportBackend, register_backend
from .clock import AsyncioClock
from .udp import UdpLink

__all__ = ["UDP_BACKEND"]


def _udp_build_pair(
    family: str,
    factory: PairFactory,
    sim: Any,
    link: Any,
    config: Any,
    **kwargs: Any,
) -> Any:
    """Validate the substrate, then run the family factory unchanged.

    The whole point of the backend seam: the factory (and the state
    machines it wires) cannot tell it is talking to sockets.
    """
    if not isinstance(sim, AsyncioClock):
        raise TypeError(
            f"backend 'udp' needs an AsyncioClock, got {type(sim).__name__} "
            "(build one with repro.transport.AsyncioClock() inside a "
            "running event loop)"
        )
    if not isinstance(link, UdpLink):
        raise TypeError(
            f"backend 'udp' needs a UdpLink, got {type(link).__name__} "
            "(open one with await repro.transport.UdpLink.open(clock, ...))"
        )
    return factory(sim, link, config, **kwargs)


def _udp_build_simulation(scenario: Any, protocol: str = "lams", **kwargs: Any):
    """``build_simulation(..., backend="udp")``: an *awaitable* setup.

    Returns the :func:`repro.transport.session.open_loopback` coroutine
    — the UDP substrate lives on the asyncio loop, so the caller awaits
    the setup and drives it in real time (or uses the blocking facade
    :func:`repro.transport.session.run_transfer` for a whole transfer).
    """
    from .session import open_loopback

    return open_loopback(scenario, protocol, **kwargs)


UDP_BACKEND = register_backend(TransportBackend(
    name="udp",
    build_pair=_udp_build_pair,
    build_simulation=_udp_build_simulation,
    families=frozenset({"lams"}),
    description="asyncio-UDP sockets with emulated impairments (real time)",
))

"""The asyncio implementation of the :class:`~repro.core.clock.Clock` seam.

The protocol halves do not only call ``schedule``/``timer()`` — their
hot paths push ``(time, sequence, callback, args)`` tuples straight
onto the engine heap (see :mod:`repro.core.clock` for why that ABI is
public).  :class:`AsyncioClock` therefore *subclasses*
:class:`~repro.simulator.engine.Simulator` instead of re-implementing
the surface: the heap, the ``_sequence`` counter, :class:`Timer`
generations, and batch compaction are all inherited unchanged.  What
changes is who drains the heap — instead of :meth:`Simulator.run`
looping in virtual time, a *pump* dispatches every entry that is due in
wall time and arms one ``loop.call_at`` alarm for the earliest
remaining deadline.

Time base: ``now`` is seconds since the clock's epoch (by default the
loop time at construction), so protocol timestamps start near 0.0
exactly like a DES run.  ``now`` advances monotonically: each pumped
entry sets it to the entry's scheduled time, and the pump finally snaps
it up to wall time, so a callback observing ``now`` sees at most its
own lateness, never time running backwards.

The epoch can be pinned explicitly: two processes on the same host that
construct ``AsyncioClock(epoch=0.0)`` share the machine-wide monotonic
clock as their time axis, which the two-process transport mode
(``serve`` / ``transmit --connect``) requires — LAMS-DLC checkpoint
coverage compares the receiver's ``issue_time`` against the sender's
``expected_arrival``, timestamps minted on *different* endpoints.

Re-entry contract: every *external* entry into protocol code — a
datagram arriving, an application ``accept()`` — must be bracketed by
:meth:`kick` so due work runs first and newly pushed work re-arms the
alarm.  Callbacks dispatched *by* the pump need no bracketing; the pump
re-arms after draining.
"""

from __future__ import annotations

import asyncio
from heapq import heappop
from typing import Optional

from ..simulator.engine import Simulator, _TIMER_EXPIRE

__all__ = ["AsyncioClock"]


class AsyncioClock(Simulator):
    """A :class:`Simulator` whose heap is drained by the asyncio loop."""

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        *,
        epoch: Optional[float] = None,
    ) -> None:
        super().__init__()
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._epoch = self._loop.time() if epoch is None else epoch
        # With a pinned epoch, "now" starts at the current position on
        # that shared axis instead of 0.0, so pre-pump timer starts
        # (endpoint.start() before the first datagram) get sane deadlines.
        self.now = self._loop.time() - self._epoch
        self._alarm: Optional[asyncio.TimerHandle] = None
        self._alarm_deadline: Optional[float] = None
        self._pumping = False

    # -- time ------------------------------------------------------------

    def wall_now(self) -> float:
        """Wall time on this clock's axis (seconds since the epoch)."""
        return self._loop.time() - self._epoch

    # -- pumping ---------------------------------------------------------

    def kick(self) -> None:
        """Dispatch everything due in wall time and re-arm the alarm.

        Safe to call from anywhere, including from inside a pumped
        callback (re-entrant calls are no-ops; the outer pump finishes
        the drain and re-arms).
        """
        if self._pumping:
            return
        self._pump()

    def _pump(self) -> None:
        self._pumping = True
        processed = 0
        heap = self._heap  # _compact mutates in place, so this stays valid
        pop = heappop
        timer_sentinel = _TIMER_EXPIRE
        loop_time = self._loop.time
        epoch = self._epoch
        try:
            while heap and heap[0][0] <= loop_time() - epoch:
                entry = pop(heap)
                when = entry[0]
                if when > self.now:
                    self.now = when
                callback = entry[2]
                # Same timer-sentinel dispatch as Simulator.run: stale
                # generations are skipped without a Python call.
                if callback is timer_sentinel:
                    timer, generation = entry[3]
                    if generation == timer._generation and timer._running:
                        timer._running = False
                        timer._deadline = None
                        timer.callback()
                    else:
                        self._stale_timers -= 1
                else:
                    callback(*entry[3])
                processed += 1
            # Snap to wall time so externally triggered work (frame
            # dispatch, accepts) is stamped with its real arrival time.
            wall = loop_time() - epoch
            if wall > self.now:
                self.now = wall
        finally:
            self.event_count += processed
            self._pumping = False
        self._rearm()

    def _rearm(self) -> None:
        heap = self._heap
        if not heap:
            if self._alarm is not None:
                self._alarm.cancel()
                self._alarm = None
                self._alarm_deadline = None
            return
        deadline = heap[0][0]
        if (self._alarm is not None and self._alarm_deadline is not None
                and abs(self._alarm_deadline - deadline) < 1e-9):
            return
        if self._alarm is not None:
            self._alarm.cancel()
        self._alarm_deadline = deadline
        self._alarm = self._loop.call_at(self._epoch + deadline, self._on_alarm)

    def _on_alarm(self) -> None:
        self._alarm = None
        self._alarm_deadline = None
        if not self._pumping:
            self._pump()

    async def drain(self, settle: float = 0.0) -> None:
        """Sleep until the heap is idle past ``wall_now() + settle``.

        Utility for shutdown paths: waits (in real time) for pending
        events within the settle horizon to fire, so timers can be
        cancelled from a quiescent state.
        """
        horizon = self.wall_now() + settle
        while True:
            self.kick()
            pending = self.peek()
            if pending is None or pending > horizon:
                return
            await asyncio.sleep(max(0.0, pending - self.wall_now()) + 1e-4)

    def close(self) -> None:
        """Cancel the armed alarm (pending heap entries are dropped)."""
        if self._alarm is not None:
            self._alarm.cancel()
            self._alarm = None
            self._alarm_deadline = None

    # -- disabled DES surface -------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        raise RuntimeError(
            "AsyncioClock is driven by the asyncio event loop; "
            "use repro.transport.session runners instead of run()"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AsyncioClock t={self.now:.6f} wall={self.wall_now():.6f} "
                f"pending={len(self._heap)}>")

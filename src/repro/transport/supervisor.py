"""Supervised resilient sessions over the UDP backend.

:func:`~repro.transport.session.run_transfer` drives one fixed session:
if the peer dies mid-transfer, the session hangs until the watchdog
expires and the payloads still sitting in the sender's ledger are simply
reported as undelivered.  The :class:`SessionSupervisor` wraps the same
machinery in a supervised lifecycle with the classic operational
guarantees:

- **bounded establishment** — a session that never hears the peer
  (handshake blackhole, dead address) is declared failed within
  ``handshake_timeout`` instead of hanging;
- **dead-peer detection** — the receiver's periodic checkpoints double
  as a keepalive; ``heartbeat_timeout`` of socket silence on an
  established session kills the generation even when the protocol's own
  watchdog cannot run;
- **reconnect with backoff** — each dead generation is torn down and a
  fresh endpoint pair is built over the *same* sockets after an
  exponential-backoff delay with decorrelated jitter, up to
  ``max_attempts`` establishments;
- **session resumption** — teardown reclaims the sender's
  unacknowledged backlog (and flushes the receiver's already-acked
  queue upward) exactly like the DES
  :class:`~repro.netlayer.session.LinkSessionManager`, and the next
  generation replays it, so no checkpoint-acknowledged payload is ever
  lost across a restart;
- **graceful degradation** — when every attempt is exhausted the
  supervisor returns a reason-tagged declared-failure
  :class:`~repro.transport.session.TransportResult`; it may fail, but
  it never hangs past its deadline and never loses acknowledged data.

Monitor integration: the supervisor emits ``checkpoint_timeout`` /
``link_failure_declared`` trace events when *it* (not the protocol)
declares a generation dead, so the
:class:`~repro.invariants.monitors.FailureLatencyMonitor` sees every
declared failure on the same event vocabulary — and its spurious-check
polices the supervisor's detectors exactly like the protocol's: a
heartbeat kill with no checkpoint-threatening fault window behind it is
a violation.  Each generation renames the link (``name#g2``, ...), so
per-source monitors (checkpoint coverage) never mix checkpoint streams
from different generations.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from ..core.endpoint import build_endpoint_pair
from ..faults.metrics import declared_failure_bound
from ..faults.plan import FaultPlan
from ..simulator.trace import Tracer
from ..workloads.scenarios import DeliveredList, LinkScenario
from .clock import AsyncioClock
from .impair import Impairments, TransportFaultInjector
from .session import (
    _POLL,
    Deadline,
    TransportResult,
    TransportSetup,
    _settle_budget,
    install_signal_stop,
)
from .conformance import (
    make_payload,
    payload_digest,
    payload_index,
    resequence_digest,
)
from .udp import UdpLink

__all__ = [
    "DecorrelatedJitterBackoff",
    "SessionSupervisor",
    "SupervisorPolicy",
    "run_supervised_transfer",
]

# Floors for the derived timeouts: real loopback sessions schedule on
# the asyncio loop, so sub-100ms bounds would race scheduler noise.
_MIN_HANDSHAKE = 0.2
_MIN_HEARTBEAT = 0.5


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs governing one supervised session's lifecycle.

    ``for_scenario`` derives the timeouts from the protocol
    configuration so the supervisor is always *slower* than the
    protocol's own detection machinery: the sender's ``C_depth * W_cp``
    watchdog and failure timer get first claim on every outage, and the
    heartbeat only fires where the protocol cannot see (a peer that
    stops scheduling entirely).
    """

    handshake_timeout: float = 1.0
    heartbeat_timeout: float = 5.0
    max_attempts: int = 5
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.handshake_timeout <= 0:
            raise ValueError("handshake_timeout must be positive")
        if self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 < backoff_base <= backoff_cap")

    @classmethod
    def for_scenario(
        cls,
        scenario: LinkScenario,
        config: Optional[Any] = None,
        **overrides: Any,
    ) -> "SupervisorPolicy":
        """Timeouts derived from the scenario's protocol configuration.

        The handshake budget covers the sender's startup watchdog
        (``C_depth * W_cp``) plus one checkpoint period and a round
        trip, so a blackholed establishment still lets the protocol
        emit its own detection probe first.  The heartbeat budget
        exceeds the declared-failure bound, so on any fault the
        protocol can perceive, ``link_failure_declared`` arrives before
        the supervisor's keepalive gives up.
        """
        if config is None:
            config = scenario.protocol_config("lams")
        rtt = scenario.round_trip_time
        derived: dict[str, Any] = {
            "handshake_timeout": max(
                config.checkpoint_timeout + config.checkpoint_interval + 2 * rtt,
                _MIN_HANDSHAKE,
            ),
            "heartbeat_timeout": max(
                declared_failure_bound(config, rtt) + 2 * rtt,
                _MIN_HEARTBEAT,
            ),
        }
        derived.update(overrides)
        return cls(**derived)


class DecorrelatedJitterBackoff:
    """Exponential backoff with decorrelated jitter.

    Each delay is drawn uniformly from ``[base, prev * 3]`` and capped:
    successive failures spread reconnect attempts apart (and apart from
    *each other* across concurrent sessions) without the synchronized
    thundering-herd retries plain exponential backoff produces.  The
    generator comes from the session's seeded stream registry, so a
    supervised run's retry schedule is as reproducible as its drops.
    """

    def __init__(self, base: float, cap: float, rng: Any) -> None:
        self.base = base
        self.cap = cap
        self._rng = rng
        self._prev = base

    def next(self) -> float:
        """The next delay (seconds); grows the decorrelated window."""
        high = max(self.base, self._prev * 3.0)
        delay = min(self.cap, float(self._rng.uniform(self.base, high)))
        self._prev = delay
        return delay

    def reset(self) -> None:
        """Back to the base window (call after a healthy generation)."""
        self._prev = self.base


class _Generation:
    """One endpoint-pair establishment inside a supervised session."""

    __slots__ = ("number", "endpoint_a", "endpoint_b", "sender", "receiver")

    def __init__(self, number: int, endpoint_a: Any, endpoint_b: Any) -> None:
        self.number = number
        self.endpoint_a = endpoint_a
        self.endpoint_b = endpoint_b
        self.sender = endpoint_a.sender
        self.receiver = endpoint_b.receiver


class SessionSupervisor:
    """Run a loopback transfer under a supervised session lifecycle.

    The clock, the socket pair, and the fault timeline live for the
    whole supervised session (sockets are the NIC, not the session);
    what a *generation* owns is one wired endpoint pair.  On a
    generation's death the sender's unacknowledged backlog is reclaimed
    to the front of the pending queue, the receiver's already-acked
    queue is flushed upward, and — budget permitting — a fresh pair is
    built over the same sockets after a backoff delay.
    """

    def __init__(
        self,
        scenario: LinkScenario,
        protocol: str = "lams",
        seed: int = 0,
        *,
        policy: Optional[SupervisorPolicy] = None,
        overrides: Optional[dict] = None,
        jitter: float = 0.0,
        drop: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        run_with_invariants: bool = True,
        tracer: Optional[Tracer] = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.scenario = scenario
        self.protocol = protocol
        self.seed = seed
        self.config = scenario.protocol_config(protocol, **(overrides or {}))
        self.policy = policy or SupervisorPolicy.for_scenario(
            scenario, config=self.config,
        )
        self.jitter = jitter
        self.drop = drop
        self.fault_plan = fault_plan
        self.run_with_invariants = run_with_invariants
        self.tracer = tracer or Tracer()
        self.host = host
        # Outcome counters (readable after run()).
        self.attempts = 0
        self.reconnects = 0
        self.payloads_reclaimed = 0
        self.payloads_flushed = 0
        self._retransmissions = 0

    # -- lifecycle --------------------------------------------------------

    async def run(
        self,
        payloads: list[bytes],
        *,
        timeout: float = 30.0,
        stop_event: Optional[asyncio.Event] = None,
        install_signals: bool = False,
    ) -> TransportResult:
        """Drive *payloads* to completion or declared failure.

        Never hangs past *timeout*: every wait in the lifecycle draws
        from one :class:`~repro.transport.session.Deadline`.
        """
        policy = self.policy
        stop = stop_event if stop_event is not None else asyncio.Event()
        uninstall = install_signal_stop(stop) if install_signals else (lambda: None)
        clock = AsyncioClock()
        tracer = self.tracer
        impairments = Impairments.from_scenario(
            self.scenario, jitter=self.jitter, drop=self.drop,
        )
        reverse_impairments = Impairments.from_scenario(
            self.scenario, jitter=self.jitter, drop=self.drop,
            direction="reverse",
        )
        link = await UdpLink.open(
            clock, name=self.scenario.name, bit_rate=self.scenario.bit_rate,
            impairments=impairments, reverse_impairments=reverse_impairments,
            seed=self.seed, tracer=tracer,
            host=self.host,
        )
        base_name = link.name
        restart = asyncio.Event()
        injector = recovery = None
        if self.fault_plan is not None and len(self.fault_plan):
            from ..faults.metrics import RecoveryMetrics

            recovery = RecoveryMetrics(tracer)
            injector = TransportFaultInjector(
                clock, link, self.fault_plan, tracer=tracer,
            )
            injector.on_peer_restart = lambda fault: restart.set()
        backoff = DecorrelatedJitterBackoff(
            policy.backoff_base, policy.backoff_cap,
            link.streams.get("supervisor.backoff"),
        )

        deadline = Deadline(timeout)
        pending: deque[bytes] = deque(payloads)
        n_frames = len(payloads)
        delivered = DeliveredList()
        seen: set[int] = set()

        def on_delivery() -> None:
            index = payload_index(delivered[-1])
            if index is not None:
                seen.add(index)

        delivered.on_append = on_delivery

        suite = None
        generation: Optional[_Generation] = None
        completed = False
        failure_reason: Optional[str] = None
        try:
            while True:
                if stop.is_set():
                    failure_reason = "interrupted"
                    break
                if deadline.expired:
                    failure_reason = failure_reason or "watchdog"
                    break
                if self.attempts >= policy.max_attempts:
                    break
                self.attempts += 1
                if self.attempts > 1:
                    # Fresh trace-source names per generation: the
                    # checkpoint-coverage monitor keys pendings by
                    # source, so generations must not share one.
                    link.name = f"{base_name}#g{self.attempts}"
                restart.clear()
                protocol_failed = asyncio.Event()
                # Snap the clock to wall time before construction: after
                # a backoff sleep ``now`` still sits at the last pumped
                # event, and endpoints built against a stale clock would
                # arm their startup watchdogs in the past.
                clock.kick()
                endpoint_a, endpoint_b = build_endpoint_pair(
                    self.protocol, clock, link, self.config, backend="udp",
                    tracer=tracer, deliver_b=delivered.append,
                    on_failure_a=protocol_failed.set,
                )
                generation = _Generation(self.attempts, endpoint_a, endpoint_b)
                endpoint_a.start(send=True, receive=False)
                endpoint_b.start(send=False, receive=True)
                clock.kick()
                if self.run_with_invariants and suite is None:
                    from ..invariants.harness import attach_monitors

                    shape = TransportSetup(
                        clock, link, endpoint_a, endpoint_b, delivered, tracer,
                    )
                    suite = attach_monitors(
                        shape, self.scenario, fault_plan=self.fault_plan,
                        context={"scenario": self.scenario.name,
                                 "protocol": self.protocol, "seed": self.seed,
                                 "backend": "udp", "supervised": True},
                    )
                if suite is not None:
                    self._point_snapshot_at(suite, pending, generation)
                tracer.emit(
                    clock.now, "supervisor", "session_attempt",
                    attempt=self.attempts, pending=len(pending),
                )
                reason = await self._run_generation(
                    clock, link, generation, pending, seen, n_frames,
                    deadline, stop, protocol_failed, restart,
                )
                if reason is None:
                    completed = True
                    break
                self._teardown_generation(
                    clock, link, tracer, generation, pending, reason,
                )
                generation = None
                failure_reason = reason
                if reason == "interrupted":
                    break
                if (self.attempts >= policy.max_attempts
                        or deadline.expired or stop.is_set()):
                    break
                self.reconnects += 1
                delay = min(backoff.next(), deadline.remaining())
                tracer.emit(
                    clock.now, "supervisor", "reconnect_backoff",
                    attempt=self.attempts, delay=delay, reason=reason,
                )
                await asyncio.sleep(delay)
        finally:
            delivered.on_append = None
            uninstall()
        if completed:
            failure_reason = None
        elapsed = deadline.elapsed()
        if suite is not None:
            suite.finalize(clock.now)
        # Final teardown (success path, or an interrupted live generation).
        if generation is not None:
            generation.endpoint_a.stop()
            generation.endpoint_b.stop()
            self._retransmissions += generation.sender.retransmissions
        clock.kick()
        link.close()
        clock.close()
        await asyncio.sleep(0)
        return self._result(
            clock, link, delivered, seen, n_frames, payloads, pending,
            completed, failure_reason, elapsed, suite,
        )

    # -- one generation ---------------------------------------------------

    async def _run_generation(
        self,
        clock: AsyncioClock,
        link: UdpLink,
        generation: _Generation,
        pending: deque,
        seen: set,
        n_frames: int,
        deadline: Deadline,
        stop: asyncio.Event,
        protocol_failed: asyncio.Event,
        restart: asyncio.Event,
    ) -> Optional[str]:
        """Drive one generation; ``None`` on completion, else the reason
        it died (``handshake-timeout`` / ``peer-dead`` /
        ``protocol-failure`` / ``peer-restart`` / ``watchdog`` /
        ``interrupted``)."""
        policy = self.policy
        loop_time = asyncio.get_running_loop().time
        socket_a = link.socket_a
        last_count = socket_a.datagrams_received
        started = loop_time()
        last_heard = started
        connected = False
        endpoint_a = generation.endpoint_a
        while True:
            clock.kick()
            if stop.is_set():
                return "interrupted"
            if deadline.expired:
                return "watchdog"
            if protocol_failed.is_set():
                return "protocol-failure"
            if restart.is_set():
                # The peer process came back with no protocol state —
                # the surviving half must re-establish, not limp on.
                return "peer-restart"
            while pending:
                if not endpoint_a.accept(pending[0]):
                    break
                pending.popleft()
                clock.kick()
            # Heartbeat: periodic checkpoints are the keepalive, and
            # *any* arriving datagram proves the peer is scheduling.
            count = socket_a.datagrams_received
            now = loop_time()
            if count > last_count:
                last_count = count
                last_heard = now
                connected = True
            elif not connected and now - started >= policy.handshake_timeout:
                return "handshake-timeout"
            elif connected and now - last_heard >= policy.heartbeat_timeout:
                return "peer-dead"
            if not pending and len(seen) >= n_frames:
                await self._settle(clock, generation, deadline)
                return None
            await asyncio.sleep(_POLL)

    async def _settle(
        self,
        clock: AsyncioClock,
        generation: _Generation,
        deadline: Deadline,
    ) -> None:
        """Wait for the sender's ledger to drain (checkpoint releases
        for the last payloads are still in flight at delivery time)."""
        budget = _settle_budget(
            generation.sender.config, self.scenario.round_trip_time,
        )
        settle = deadline.sub(budget)
        while not settle.expired:
            clock.kick()
            if not generation.sender.held_payloads():
                return
            await asyncio.sleep(_POLL)

    def _teardown_generation(
        self,
        clock: AsyncioClock,
        link: UdpLink,
        tracer: Tracer,
        generation: _Generation,
        pending: deque,
        reason: str,
    ) -> None:
        """Declare the generation dead and reclaim its backlog.

        Mirrors the DES session manager's teardown: the sender's held
        (unacknowledged) payloads go back to the *front* of the pending
        queue in order; the receiver's queue — payloads the peer
        already acknowledged via checkpoints — is flushed upward so an
        acked payload is never un-delivered by a restart.
        """
        if reason in ("handshake-timeout", "peer-dead"):
            # The supervisor, not the protocol, is the detector here;
            # emit the declared-failure vocabulary so the failure-
            # latency monitor both credits the detection and polices it
            # (a kill with no fault window behind it is a violation).
            tracer.emit(
                clock.now, "supervisor", "checkpoint_timeout",
                attempt=generation.number, reason=reason,
            )
            tracer.emit(
                clock.now, "supervisor", "link_failure_declared",
                attempt=generation.number, reason=reason,
            )
        sender = generation.sender
        held = list(sender.held_payloads())
        generation.endpoint_a.stop()
        flushed = generation.receiver.flush()
        generation.endpoint_b.stop()
        clock.kick()
        pending.extendleft(reversed(held))
        self.payloads_reclaimed += len(held)
        self.payloads_flushed += flushed
        self._retransmissions += sender.retransmissions
        tracer.emit(
            clock.now, "supervisor", "backlog_reclaimed",
            attempt=generation.number, reason=reason,
            reclaimed=len(held), flushed=flushed,
        )

    def _point_snapshot_at(
        self, suite: Any, pending: deque, generation: _Generation,
    ) -> None:
        """Aim the suite's held-backlog snapshot at the live generation.

        The zero-loss ledger's finalize counts anything in this
        snapshot as safely held: the supervisor's pending queue (which
        includes every reclaimed payload) plus the current sender's
        ledger and receiver's undrained queue.
        """
        sender, receiver = generation.sender, generation.receiver

        def held_snapshot() -> list[Any]:
            held = list(pending)
            held.extend(sender.held_payloads())
            held.extend(receiver.queued_payloads())
            return held

        suite.held_snapshot = held_snapshot

    # -- reporting --------------------------------------------------------

    def _result(
        self,
        clock: AsyncioClock,
        link: UdpLink,
        delivered: DeliveredList,
        seen: set,
        n_frames: int,
        payloads: list[bytes],
        pending: deque,
        completed: bool,
        failure_reason: Optional[str],
        elapsed: float,
        suite: Any,
    ) -> TransportResult:
        digest, duplicates = resequence_digest(list(delivered))
        forward, reverse = link.forward, link.reverse
        socket_a, socket_b = link.socket_a, link.socket_b
        stats = {
            "forward_frames_sent": forward.frames_sent,
            "forward_frames_corrupted": forward.frames_corrupted,
            "forward_frames_dropped": forward.frames_dropped,
            "reverse_frames_sent": reverse.frames_sent,
            "reverse_frames_corrupted": reverse.frames_corrupted,
            "reverse_frames_dropped": reverse.frames_dropped,
            "datagrams_received_a": socket_a.datagrams_received,
            "datagrams_received_b": socket_b.datagrams_received,
            "send_errors": socket_a.send_errors + socket_b.send_errors,
            "datagrams_stalled": (socket_a.datagrams_stalled
                                  + socket_b.datagrams_stalled),
            "datagrams_blackholed": (socket_a.datagrams_blackholed
                                     + socket_b.datagrams_blackholed),
            "retransmissions": self._retransmissions,
            "payloads_reclaimed": self.payloads_reclaimed,
            "payloads_flushed": self.payloads_flushed,
            "pending_remaining": len(pending),
            "event_count": clock.event_count,
        }
        return TransportResult(
            scenario=self.scenario.name, protocol=self.protocol,
            seed=self.seed, n_frames=n_frames, completed=completed,
            delivered_unique=len(seen), duplicates=duplicates,
            digest=digest, expected_digest=payload_digest(payloads),
            elapsed=elapsed, monitors=suite, stats=stats,
            failure_reason=failure_reason,
            attempts=self.attempts, reconnects=self.reconnects,
        )


def run_supervised_transfer(
    scenario: LinkScenario,
    protocol: str = "lams",
    seed: int = 0,
    *,
    n_frames: int = 48,
    payload_bytes: int = 256,
    timeout: float = 30.0,
    policy: Optional[SupervisorPolicy] = None,
    overrides: Optional[dict] = None,
    jitter: float = 0.0,
    drop: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    run_with_invariants: bool = True,
    tracer: Optional[Tracer] = None,
    host: str = "127.0.0.1",
    stop_event: Optional[asyncio.Event] = None,
    install_signals: bool = False,
) -> TransportResult:
    """One supervised loopback transfer (blocking facade).

    The supervised twin of
    :func:`~repro.transport.session.run_transfer`: same arguments plus
    the :class:`SupervisorPolicy` (derived from the scenario when not
    given).  The result's ``attempts`` / ``reconnects`` /
    ``failure_reason`` fields report the lifecycle's outcome.
    """
    supervisor = SessionSupervisor(
        scenario, protocol, seed, policy=policy, overrides=overrides,
        jitter=jitter, drop=drop, fault_plan=fault_plan,
        run_with_invariants=run_with_invariants, tracer=tracer, host=host,
    )

    async def _run() -> TransportResult:
        return await supervisor.run(
            [make_payload(i, payload_bytes) for i in range(n_frames)],
            timeout=timeout, stop_event=stop_event,
            install_signals=install_signals,
        )

    return asyncio.run(_run())

"""Live LAMS-DLC sessions over the UDP backend.

Three ways to run the protocol on real sockets:

- :func:`open_loopback` / :func:`run_transfer` — both endpoints in one
  process over a localhost socket pair, with the full invariant
  :class:`~repro.invariants.monitors.MonitorSuite` attached to the
  live traffic.  This is the transport twin of
  :func:`repro.workloads.scenarios.build_simulation`:
  :class:`TransportSetup` mirrors ``SimulationSetup``'s shape, so
  :func:`~repro.invariants.harness.attach_monitors` works unchanged.
- :func:`run_serve` / :func:`run_client` — one endpoint per process
  (the ``python -m repro serve`` / ``transmit --connect`` pair), for
  sessions across a real network path.

Completion semantics: a transfer is complete when the destination
resequencer has released every offered payload in order *and* the
sender's zero-loss ledger is empty (every copy released by a
checkpoint), so the monitor suite finalizes from a quiescent state.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.endpoint import build_endpoint_pair
from ..faults.plan import FaultPlan
from ..simulator.rng import StreamRegistry
from ..simulator.trace import Tracer
from ..workloads.scenarios import DeliveredList, LinkScenario
from .clock import AsyncioClock
from .conformance import (
    make_payload,
    payload_digest,
    payload_index,
    resequence_digest,
)
from .impair import Impairments
from .udp import UdpEndpointSocket, UdpLink

__all__ = [
    "ClientReport",
    "Deadline",
    "ServeReport",
    "TransportResult",
    "TransportSetup",
    "install_signal_stop",
    "open_loopback",
    "run_client",
    "run_serve",
    "run_transfer",
]

# Polling cadence for real-time waits (offers refused by Stop-Go,
# settle loops).  Coarse enough to stay off the hot path, fine enough
# that golden-scenario sessions finish promptly.
_POLL = 0.005


class Deadline:
    """One monotonic wall-clock budget shared by every real-time wait.

    Every loop that used to hand-roll ``loop.time() < deadline`` spins
    (offer retries, completion waits, settle drains, supervisor
    watchdogs) draws from a single :class:`Deadline`, so a session's
    timeout is accounted uniformly no matter which phase consumes it.
    """

    __slots__ = ("_time", "_start", "_until")

    def __init__(self, timeout: float,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self._time = clock if clock is not None else (
            asyncio.get_running_loop().time
        )
        self._start = self._time()
        self._until = self._start + max(0.0, timeout)

    @property
    def expired(self) -> bool:
        return self._time() >= self._until

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self._until - self._time())

    def elapsed(self) -> float:
        return self._time() - self._start

    def sub(self, budget: float) -> "Deadline":
        """A child deadline of at most *budget* seconds, capped by this one."""
        return Deadline(min(budget, self.remaining()), clock=self._time)

    def __repr__(self) -> str:
        return f"<Deadline remaining={self.remaining():.3f}s>"


def install_signal_stop(stop: asyncio.Event) -> Callable[[], None]:
    """Route SIGINT/SIGTERM into *stop*; returns an uninstall callback.

    Lets live CLI sessions (``serve`` / ``transmit``) shut down
    gracefully — close sockets, emit a partial reason-tagged report —
    instead of dying with a traceback.  On loops/platforms without
    ``add_signal_handler`` (Windows, nested loops) this is a no-op and
    the uninstaller does nothing.
    """
    loop = asyncio.get_running_loop()
    installed: list[int] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError, ValueError):
            continue
        installed.append(signum)

    def uninstall() -> None:
        for signum in installed:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(signum)

    return uninstall


@dataclass
class TransportSetup:
    """A live loopback session (the transport twin of ``SimulationSetup``).

    ``sim`` is the :class:`AsyncioClock` — named for shape-compatibility
    with harness code written against ``SimulationSetup``.
    """

    sim: AsyncioClock
    link: UdpLink
    endpoint_a: Any
    endpoint_b: Any
    delivered: DeliveredList
    tracer: Tracer
    fault_injector: Optional[Any] = None
    recovery: Optional[Any] = None
    monitors: Optional[Any] = None

    def finalize_monitors(self) -> Any:
        """Run the monitors' end-of-run checks; returns the suite."""
        if self.monitors is not None:
            self.monitors.finalize(self.sim.now)
        return self.monitors

    async def close(self) -> None:
        """Stop both endpoints and release sockets and timers."""
        self.endpoint_a.stop()
        self.endpoint_b.stop()
        self.sim.kick()
        self.link.close()
        self.sim.close()
        # Let the loop process the transport close callbacks.
        await asyncio.sleep(0)


@dataclass
class TransportResult:
    """Outcome of one loopback transfer (plain or supervised).

    ``failure_reason`` is ``None`` on success; a declared failure tags
    why the session degraded (``"handshake-timeout"``, ``"peer-dead"``,
    ``"protocol-failure"``, ``"watchdog"``, ``"interrupted"``).
    ``attempts`` counts session establishments, ``reconnects`` the
    supervised teardown-and-replay cycles that preceded the outcome.
    """

    scenario: str
    protocol: str
    seed: int
    n_frames: int
    completed: bool
    delivered_unique: int
    duplicates: int
    digest: str
    expected_digest: str
    elapsed: float
    monitors: Optional[Any] = None
    stats: dict[str, Any] = field(default_factory=dict)
    failure_reason: Optional[str] = None
    attempts: int = 1
    reconnects: int = 0

    @property
    def ok(self) -> bool:
        """Complete, byte-exact, and every invariant held."""
        return (self.completed
                and self.digest == self.expected_digest
                and (self.monitors is None or self.monitors.ok))

    @property
    def violations(self) -> list[Any]:
        return [] if self.monitors is None else self.monitors.violations


async def open_loopback(
    scenario: LinkScenario,
    protocol: str = "lams",
    seed: int = 0,
    *,
    overrides: Optional[dict] = None,
    jitter: float = 0.0,
    drop: Optional[float] = None,
    iframe_errors: Optional[Any] = None,
    cframe_errors: Optional[Any] = None,
    error_model: Optional[Any] = None,
    fault_plan: Optional[FaultPlan] = None,
    run_with_invariants: bool = True,
    tracer: Optional[Tracer] = None,
    host: str = "127.0.0.1",
) -> TransportSetup:
    """Open a one-way loopback session: A sends, B receives.

    Construction order matches ``build_simulation`` exactly — link,
    endpoints, start, fault injector, monitors — so the two backends
    observe the same event sequence at startup.  *error_model* /
    *iframe_errors* / *cframe_errors* override the scenario's error
    processes exactly like their ``build_simulation`` namesakes.
    """
    if error_model is not None and iframe_errors is not None:
        raise ValueError("pass error_model or iframe_errors, not both")
    clock = AsyncioClock()
    tracer = tracer or Tracer()
    delivered = DeliveredList()
    impairments = Impairments.from_scenario(scenario, jitter=jitter, drop=drop)
    reverse_impairments = Impairments.from_scenario(
        scenario, jitter=jitter, drop=drop, direction="reverse",
    )
    data_spec = error_model if error_model is not None else iframe_errors
    if data_spec is not None:
        impairments = impairments.with_(iframe_errors=data_spec)
        # Explicit overrides mirror onto the feedback direction unless
        # the scenario pins it (same precedence as the DES resolver).
        if scenario.reverse_iframe_error_model is None:
            reverse_impairments = reverse_impairments.with_(iframe_errors=data_spec)
    if cframe_errors is not None:
        impairments = impairments.with_(cframe_errors=cframe_errors)
        if scenario.reverse_cframe_error_model is None:
            reverse_impairments = reverse_impairments.with_(cframe_errors=cframe_errors)
    link = await UdpLink.open(
        clock, name=scenario.name, bit_rate=scenario.bit_rate,
        impairments=impairments, reverse_impairments=reverse_impairments,
        seed=seed, tracer=tracer, host=host,
    )
    config = scenario.protocol_config(protocol, **(overrides or {}))
    endpoint_a, endpoint_b = build_endpoint_pair(
        protocol, clock, link, config, backend="udp",
        tracer=tracer, deliver_b=delivered.append,
    )
    endpoint_a.start(send=True, receive=False)
    endpoint_b.start(send=False, receive=True)
    injector = recovery = None
    if fault_plan is not None and len(fault_plan):
        from ..faults.metrics import RecoveryMetrics
        from .impair import TransportFaultInjector

        recovery = RecoveryMetrics(tracer)
        injector = TransportFaultInjector(clock, link, fault_plan, tracer=tracer)
    setup = TransportSetup(
        clock, link, endpoint_a, endpoint_b, delivered, tracer,
        fault_injector=injector, recovery=recovery,
    )
    if run_with_invariants:
        from ..invariants.harness import attach_monitors

        setup.monitors = attach_monitors(
            setup, scenario, fault_plan=fault_plan,
            context={"scenario": scenario.name, "protocol": protocol,
                     "seed": seed, "backend": "udp"},
        )
    clock.kick()
    return setup


def _settle_budget(config: Any, rtt: float) -> float:
    """Real-time allowance for the sender's ledger to drain after the
    last in-order delivery (resolving period + one extra round)."""
    resolving = config.resolving_period(rtt)
    return 2.0 * resolving + rtt + 0.1


async def _offer_all(
    setup: TransportSetup,
    payloads: list[bytes],
    deadline: Deadline,
    stop: Optional[asyncio.Event] = None,
) -> int:
    """Offer every payload, yielding while Stop-Go refuses; count accepted."""
    clock = setup.sim
    accepted = 0
    for payload in payloads:
        while not deadline.expired and not (stop is not None and stop.is_set()):
            clock.kick()
            ok = setup.endpoint_a.accept(payload)
            clock.kick()
            if ok:
                accepted += 1
                break
            await asyncio.sleep(_POLL)
        else:
            break
    return accepted


async def _transfer(
    setup: TransportSetup,
    scenario: LinkScenario,
    payloads: list[bytes],
    deadline: Deadline,
    stop: Optional[asyncio.Event] = None,
) -> tuple[bool, Optional[str]]:
    """Drive one transfer on an open session.

    Returns ``(completed, failure_reason)`` — ``(True, None)`` when the
    transfer fully completed, otherwise the reason the wait ended
    (``"watchdog"`` for the deadline, ``"interrupted"`` for *stop*).
    """
    clock = setup.sim
    n_frames = len(payloads)
    complete = asyncio.Event()
    seen: set[int] = set()

    def on_delivery() -> None:
        index = payload_index(setup.delivered[-1])
        if index is not None:
            seen.add(index)
        if len(seen) >= n_frames:
            complete.set()

    setup.delivered.on_append = on_delivery
    try:
        accepted = await _offer_all(setup, payloads, deadline, stop)
        waits = [asyncio.ensure_future(complete.wait())]
        if stop is not None:
            waits.append(asyncio.ensure_future(stop.wait()))
        try:
            await asyncio.wait(waits, timeout=deadline.remaining(),
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            for wait in waits:
                wait.cancel()
        if stop is not None and stop.is_set():
            return False, "interrupted"
        if accepted < n_frames or not complete.is_set():
            return False, "watchdog"
    finally:
        setup.delivered.on_append = None
    # Quiesce: the checkpoints releasing the sender's last copies are
    # still in flight when the final payload lands at the destination.
    sender = getattr(setup.endpoint_a, "sender", None)
    if sender is not None and hasattr(sender, "held_payloads"):
        budget = _settle_budget(sender.config, scenario.round_trip_time)
        settle = deadline.sub(budget)
        while not settle.expired:
            clock.kick()
            if not sender.held_payloads():
                break
            await asyncio.sleep(_POLL)
    return True, None


async def _run_transfer(
    scenario: LinkScenario,
    protocol: str,
    seed: int,
    n_frames: int,
    payload_bytes: int,
    timeout: float,
    stop_event: Optional[asyncio.Event] = None,
    install_signals: bool = False,
    **open_kwargs: Any,
) -> TransportResult:
    payloads = [make_payload(i, payload_bytes) for i in range(n_frames)]
    stop = stop_event if stop_event is not None else asyncio.Event()
    uninstall = install_signal_stop(stop) if install_signals else (lambda: None)
    setup = await open_loopback(scenario, protocol, seed, **open_kwargs)
    deadline = Deadline(timeout)
    try:
        completed, reason = await _transfer(setup, scenario, payloads,
                                            deadline, stop)
        elapsed = deadline.elapsed()
        suite = setup.finalize_monitors()
    finally:
        uninstall()
        await setup.close()
    digest, duplicates = resequence_digest(list(setup.delivered))
    unique = len({payload_index(d) for d in setup.delivered
                  if payload_index(d) is not None})
    forward, reverse = setup.link.forward, setup.link.reverse
    sender = getattr(setup.endpoint_a, "sender", None)
    stats = {
        "forward_frames_sent": forward.frames_sent,
        "forward_frames_corrupted": forward.frames_corrupted,
        "forward_frames_dropped": forward.frames_dropped,
        "reverse_frames_sent": reverse.frames_sent,
        "reverse_frames_corrupted": reverse.frames_corrupted,
        "reverse_frames_dropped": reverse.frames_dropped,
        "datagrams_received_b": setup.link.socket_b.datagrams_received,
        "datagrams_received_a": setup.link.socket_a.datagrams_received,
        "retransmissions": getattr(sender, "retransmissions", None),
        "event_count": setup.sim.event_count,
    }
    return TransportResult(
        scenario=scenario.name, protocol=protocol, seed=seed,
        n_frames=n_frames, completed=completed,
        delivered_unique=unique, duplicates=duplicates,
        digest=digest, expected_digest=payload_digest(payloads),
        elapsed=elapsed, monitors=suite, stats=stats,
        failure_reason=reason,
    )


def run_transfer(
    scenario: LinkScenario,
    protocol: str = "lams",
    seed: int = 0,
    *,
    n_frames: int = 48,
    payload_bytes: int = 256,
    timeout: float = 30.0,
    overrides: Optional[dict] = None,
    jitter: float = 0.0,
    drop: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    run_with_invariants: bool = True,
    tracer: Optional[Tracer] = None,
    host: str = "127.0.0.1",
    install_signals: bool = False,
) -> TransportResult:
    """Run one complete loopback transfer (blocking facade).

    Opens the session, offers *n_frames* payloads, waits (in real time,
    capped by *timeout*) for in-order delivery plus sender-ledger
    drain, finalizes the monitors, and tears everything down.  With
    *install_signals*, SIGINT/SIGTERM end the session gracefully and
    the result carries ``failure_reason="interrupted"``.
    """
    return asyncio.run(_run_transfer(
        scenario, protocol, seed, n_frames, payload_bytes, timeout,
        install_signals=install_signals,
        overrides=overrides, jitter=jitter, drop=drop,
        fault_plan=fault_plan, run_with_invariants=run_with_invariants,
        tracer=tracer, host=host,
    ))


# -- two-process endpoints (serve / transmit --connect) -------------------


@dataclass
class ServeReport:
    """Outcome of one receive-side (``serve``) session.

    ``reason`` tags how the session ended: ``"completed"`` (the
    configured duration elapsed) or ``"interrupted"`` (SIGINT/SIGTERM
    — still a full report over whatever was received).
    """

    received_unique: int
    duplicates: int
    digest: str
    datagrams_received: int
    datagrams_undecodable: int
    elapsed: float
    reason: str = "completed"


@dataclass
class ClientReport:
    """Outcome of one send-side (``transmit --connect``) session.

    ``reason`` is ``"completed"``, ``"watchdog"`` (timeout with work
    outstanding), or ``"interrupted"`` (signal-driven early exit).
    """

    offered: int
    completed: bool
    held_remaining: int
    retransmissions: int
    elapsed: float
    reason: str = "completed"


def _open_single_endpoint(
    clock: AsyncioClock,
    scenario: LinkScenario,
    seed: int,
    overrides: Optional[dict],
    tracer: Tracer,
    role: str,
    **socket_kwargs: Any,
):
    """Coroutine factory shared by serve/client: one socket, one endpoint."""
    from ..core.protocol import LamsDlcEndpoint

    async def _open(deliver=None):
        streams = StreamRegistry(seed=seed)
        outgoing = "fwd" if role == "A" else "rev"
        incoming = "rev" if role == "A" else "fwd"
        sock = await UdpEndpointSocket.open(
            clock,
            outgoing_name=f"{scenario.name}.{outgoing}",
            incoming_name=f"{scenario.name}.{incoming}",
            bit_rate=scenario.bit_rate,
            impairments=Impairments.from_scenario(
                # A's outgoing datagrams ride the forward direction, B's
                # the feedback (reverse) direction.
                scenario, direction="forward" if role == "A" else "reverse",
            ),
            streams=streams, tracer=tracer, **socket_kwargs,
        )
        config = scenario.protocol_config("lams", **(overrides or {}))
        endpoint = LamsDlcEndpoint(
            clock, config, outgoing=sock.channel,
            expected_rtt=scenario.round_trip_time,
            name=f"{scenario.name}.{role}", tracer=tracer, deliver=deliver,
            link_start_time=clock.now,
        )
        sock.attach(endpoint.on_frame)
        return sock, endpoint

    return _open


async def _serve(
    scenario: LinkScenario,
    bind: tuple[str, int],
    seed: int,
    duration: float,
    overrides: Optional[dict],
    tracer: Optional[Tracer],
    stop_event: Optional[asyncio.Event] = None,
    install_signals: bool = False,
) -> ServeReport:
    # Pinned epoch: both processes of a two-process session sit on the
    # machine-wide monotonic clock, so cross-endpoint timestamps
    # (checkpoint issue_time vs expected_arrival) are comparable.
    clock = AsyncioClock(epoch=0.0)
    tracer = tracer or Tracer()
    delivered: list[bytes] = []
    stop = stop_event if stop_event is not None else asyncio.Event()
    uninstall = install_signal_stop(stop) if install_signals else (lambda: None)
    opener = _open_single_endpoint(
        clock, scenario, seed, overrides, tracer, role="B",
        bind=bind, learn_peer=True,
    )
    sock, endpoint = await opener(deliver=delivered.append)
    endpoint.start(send=False, receive=True)
    clock.kick()
    deadline = Deadline(duration)
    try:
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(stop.wait(), timeout=deadline.remaining())
        clock.kick()
    finally:
        uninstall()
        endpoint.stop()
        clock.kick()
        sock.close()
        clock.close()
        await asyncio.sleep(0)
    digest, duplicates = resequence_digest(delivered)
    unique = len({payload_index(d) for d in delivered
                  if payload_index(d) is not None})
    return ServeReport(
        received_unique=unique, duplicates=duplicates, digest=digest,
        datagrams_received=sock.datagrams_received,
        datagrams_undecodable=sock.datagrams_undecodable,
        elapsed=deadline.elapsed(),
        reason="interrupted" if stop.is_set() else "completed",
    )


def run_serve(
    scenario: LinkScenario,
    *,
    bind: tuple[str, int] = ("127.0.0.1", 47901),
    seed: int = 0,
    duration: float = 30.0,
    overrides: Optional[dict] = None,
    tracer: Optional[Tracer] = None,
    stop_event: Optional[asyncio.Event] = None,
    install_signals: bool = False,
) -> ServeReport:
    """Run the receive side of a two-process session for *duration*.

    The peer address is learned from the first arriving datagram, so
    the server needs no prior knowledge of the client.  *stop_event*
    (or SIGINT/SIGTERM with *install_signals*) ends the session early
    with a partial report tagged ``reason="interrupted"``.
    """
    return asyncio.run(_serve(scenario, bind, seed, duration, overrides,
                              tracer, stop_event=stop_event,
                              install_signals=install_signals))


async def _client(
    scenario: LinkScenario,
    connect: tuple[str, int],
    seed: int,
    n_frames: int,
    payload_bytes: int,
    timeout: float,
    overrides: Optional[dict],
    tracer: Optional[Tracer],
    stop_event: Optional[asyncio.Event] = None,
    install_signals: bool = False,
) -> ClientReport:
    # Same pinned epoch as the serving process — see _serve.
    clock = AsyncioClock(epoch=0.0)
    tracer = tracer or Tracer()
    stop = stop_event if stop_event is not None else asyncio.Event()
    uninstall = install_signal_stop(stop) if install_signals else (lambda: None)
    opener = _open_single_endpoint(
        clock, scenario, seed, overrides, tracer, role="A", peer=connect,
    )
    sock, endpoint = await opener()
    endpoint.start(send=True, receive=False)
    clock.kick()
    sender = endpoint.sender
    offered = 0
    deadline = Deadline(timeout)
    completed = False
    try:
        for index in range(n_frames):
            payload = make_payload(index, payload_bytes)
            while not deadline.expired and not stop.is_set():
                clock.kick()
                ok = endpoint.accept(payload)
                clock.kick()
                if ok:
                    offered += 1
                    break
                await asyncio.sleep(_POLL)
        # Complete when every copy is released by a checkpoint.
        while not deadline.expired and not stop.is_set():
            clock.kick()
            if offered == n_frames and not sender.held_payloads():
                completed = True
                break
            await asyncio.sleep(_POLL)
    finally:
        uninstall()
        endpoint.stop()
        clock.kick()
        sock.close()
        clock.close()
        await asyncio.sleep(0)
    if completed:
        reason = "completed"
    elif stop.is_set():
        reason = "interrupted"
    else:
        reason = "watchdog"
    return ClientReport(
        offered=offered, completed=completed,
        held_remaining=len(sender.held_payloads()),
        retransmissions=sender.retransmissions,
        elapsed=deadline.elapsed(),
        reason=reason,
    )


def run_client(
    scenario: LinkScenario,
    *,
    connect: tuple[str, int],
    seed: int = 0,
    n_frames: int = 48,
    payload_bytes: int = 256,
    timeout: float = 30.0,
    overrides: Optional[dict] = None,
    tracer: Optional[Tracer] = None,
    stop_event: Optional[asyncio.Event] = None,
    install_signals: bool = False,
) -> ClientReport:
    """Run the send side of a two-process session against *connect*.

    *stop_event* / *install_signals* end the session early with a
    partial report tagged ``reason="interrupted"``.
    """
    return asyncio.run(_client(
        scenario, connect, seed, n_frames, payload_bytes, timeout,
        overrides, tracer, stop_event=stop_event,
        install_signals=install_signals,
    ))

"""Live LAMS-DLC sessions over the UDP backend.

Three ways to run the protocol on real sockets:

- :func:`open_loopback` / :func:`run_transfer` — both endpoints in one
  process over a localhost socket pair, with the full invariant
  :class:`~repro.invariants.monitors.MonitorSuite` attached to the
  live traffic.  This is the transport twin of
  :func:`repro.workloads.scenarios.build_simulation`:
  :class:`TransportSetup` mirrors ``SimulationSetup``'s shape, so
  :func:`~repro.invariants.harness.attach_monitors` works unchanged.
- :func:`run_serve` / :func:`run_client` — one endpoint per process
  (the ``python -m repro serve`` / ``transmit --connect`` pair), for
  sessions across a real network path.

Completion semantics: a transfer is complete when the destination
resequencer has released every offered payload in order *and* the
sender's zero-loss ledger is empty (every copy released by a
checkpoint), so the monitor suite finalizes from a quiescent state.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.endpoint import build_endpoint_pair
from ..faults.plan import FaultPlan
from ..simulator.rng import StreamRegistry
from ..simulator.trace import Tracer
from ..workloads.scenarios import DeliveredList, LinkScenario
from .clock import AsyncioClock
from .conformance import (
    make_payload,
    payload_digest,
    payload_index,
    resequence_digest,
)
from .impair import Impairments
from .udp import UdpEndpointSocket, UdpLink

__all__ = [
    "ClientReport",
    "ServeReport",
    "TransportResult",
    "TransportSetup",
    "open_loopback",
    "run_client",
    "run_serve",
    "run_transfer",
]

# Polling cadence for real-time waits (offers refused by Stop-Go,
# settle loops).  Coarse enough to stay off the hot path, fine enough
# that golden-scenario sessions finish promptly.
_POLL = 0.005


@dataclass
class TransportSetup:
    """A live loopback session (the transport twin of ``SimulationSetup``).

    ``sim`` is the :class:`AsyncioClock` — named for shape-compatibility
    with harness code written against ``SimulationSetup``.
    """

    sim: AsyncioClock
    link: UdpLink
    endpoint_a: Any
    endpoint_b: Any
    delivered: DeliveredList
    tracer: Tracer
    fault_injector: Optional[Any] = None
    recovery: Optional[Any] = None
    monitors: Optional[Any] = None

    def finalize_monitors(self) -> Any:
        """Run the monitors' end-of-run checks; returns the suite."""
        if self.monitors is not None:
            self.monitors.finalize(self.sim.now)
        return self.monitors

    async def close(self) -> None:
        """Stop both endpoints and release sockets and timers."""
        self.endpoint_a.stop()
        self.endpoint_b.stop()
        self.sim.kick()
        self.link.close()
        self.sim.close()
        # Let the loop process the transport close callbacks.
        await asyncio.sleep(0)


@dataclass
class TransportResult:
    """Outcome of one loopback transfer."""

    scenario: str
    protocol: str
    seed: int
    n_frames: int
    completed: bool
    delivered_unique: int
    duplicates: int
    digest: str
    expected_digest: str
    elapsed: float
    monitors: Optional[Any] = None
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Complete, byte-exact, and every invariant held."""
        return (self.completed
                and self.digest == self.expected_digest
                and (self.monitors is None or self.monitors.ok))

    @property
    def violations(self) -> list[Any]:
        return [] if self.monitors is None else self.monitors.violations


async def open_loopback(
    scenario: LinkScenario,
    protocol: str = "lams",
    seed: int = 0,
    *,
    overrides: Optional[dict] = None,
    jitter: float = 0.0,
    drop: Optional[float] = None,
    iframe_errors: Optional[Any] = None,
    cframe_errors: Optional[Any] = None,
    error_model: Optional[Any] = None,
    fault_plan: Optional[FaultPlan] = None,
    run_with_invariants: bool = True,
    tracer: Optional[Tracer] = None,
    host: str = "127.0.0.1",
) -> TransportSetup:
    """Open a one-way loopback session: A sends, B receives.

    Construction order matches ``build_simulation`` exactly — link,
    endpoints, start, fault injector, monitors — so the two backends
    observe the same event sequence at startup.  *error_model* /
    *iframe_errors* / *cframe_errors* override the scenario's error
    processes exactly like their ``build_simulation`` namesakes.
    """
    if error_model is not None and iframe_errors is not None:
        raise ValueError("pass error_model or iframe_errors, not both")
    clock = AsyncioClock()
    tracer = tracer or Tracer()
    delivered = DeliveredList()
    impairments = Impairments.from_scenario(scenario, jitter=jitter, drop=drop)
    data_spec = error_model if error_model is not None else iframe_errors
    if data_spec is not None:
        impairments = impairments.with_(iframe_errors=data_spec)
    if cframe_errors is not None:
        impairments = impairments.with_(cframe_errors=cframe_errors)
    link = await UdpLink.open(
        clock, name=scenario.name, bit_rate=scenario.bit_rate,
        impairments=impairments, seed=seed, tracer=tracer, host=host,
    )
    config = scenario.protocol_config(protocol, **(overrides or {}))
    endpoint_a, endpoint_b = build_endpoint_pair(
        protocol, clock, link, config, backend="udp",
        tracer=tracer, deliver_b=delivered.append,
    )
    endpoint_a.start(send=True, receive=False)
    endpoint_b.start(send=False, receive=True)
    injector = recovery = None
    if fault_plan is not None and len(fault_plan):
        from ..faults.injector import FaultInjector
        from ..faults.metrics import RecoveryMetrics

        recovery = RecoveryMetrics(tracer)
        injector = FaultInjector(clock, link, fault_plan, tracer=tracer)
    setup = TransportSetup(
        clock, link, endpoint_a, endpoint_b, delivered, tracer,
        fault_injector=injector, recovery=recovery,
    )
    if run_with_invariants:
        from ..invariants.harness import attach_monitors

        setup.monitors = attach_monitors(
            setup, scenario, fault_plan=fault_plan,
            context={"scenario": scenario.name, "protocol": protocol,
                     "seed": seed, "backend": "udp"},
        )
    clock.kick()
    return setup


def _settle_budget(config: Any, rtt: float) -> float:
    """Real-time allowance for the sender's ledger to drain after the
    last in-order delivery (resolving period + one extra round)."""
    resolving = config.resolving_period(rtt)
    return 2.0 * resolving + rtt + 0.1


async def _offer_all(setup: TransportSetup, payloads: list[bytes]) -> int:
    """Offer every payload, yielding while Stop-Go refuses; count accepted."""
    clock = setup.sim
    accepted = 0
    for payload in payloads:
        while True:
            clock.kick()
            ok = setup.endpoint_a.accept(payload)
            clock.kick()
            if ok:
                accepted += 1
                break
            await asyncio.sleep(_POLL)
    return accepted


async def _transfer(
    setup: TransportSetup,
    scenario: LinkScenario,
    payloads: list[bytes],
    timeout: float,
) -> bool:
    """Drive one transfer on an open session; True when fully complete."""
    clock = setup.sim
    n_frames = len(payloads)
    complete = asyncio.Event()
    seen: set[int] = set()

    def on_delivery() -> None:
        index = payload_index(setup.delivered[-1])
        if index is not None:
            seen.add(index)
        if len(seen) >= n_frames:
            complete.set()

    setup.delivered.on_append = on_delivery
    deadline = asyncio.get_running_loop().time() + timeout
    try:
        await asyncio.wait_for(
            _offer_all(setup, payloads),
            timeout=max(0.0, deadline - asyncio.get_running_loop().time()),
        )
        await asyncio.wait_for(
            complete.wait(),
            timeout=max(0.0, deadline - asyncio.get_running_loop().time()),
        )
    except asyncio.TimeoutError:
        return False
    finally:
        setup.delivered.on_append = None
    # Quiesce: the checkpoints releasing the sender's last copies are
    # still in flight when the final payload lands at the destination.
    sender = getattr(setup.endpoint_a, "sender", None)
    if sender is not None and hasattr(sender, "held_payloads"):
        budget = _settle_budget(sender.config, scenario.round_trip_time)
        settle_deadline = min(deadline,
                              asyncio.get_running_loop().time() + budget)
        while asyncio.get_running_loop().time() < settle_deadline:
            clock.kick()
            if not sender.held_payloads():
                break
            await asyncio.sleep(_POLL)
    return True


async def _run_transfer(
    scenario: LinkScenario,
    protocol: str,
    seed: int,
    n_frames: int,
    payload_bytes: int,
    timeout: float,
    **open_kwargs: Any,
) -> TransportResult:
    payloads = [make_payload(i, payload_bytes) for i in range(n_frames)]
    setup = await open_loopback(scenario, protocol, seed, **open_kwargs)
    start = asyncio.get_running_loop().time()
    try:
        completed = await _transfer(setup, scenario, payloads, timeout)
        elapsed = asyncio.get_running_loop().time() - start
        suite = setup.finalize_monitors()
    finally:
        await setup.close()
    digest, duplicates = resequence_digest(list(setup.delivered))
    unique = len({payload_index(d) for d in setup.delivered
                  if payload_index(d) is not None})
    forward, reverse = setup.link.forward, setup.link.reverse
    sender = getattr(setup.endpoint_a, "sender", None)
    stats = {
        "forward_frames_sent": forward.frames_sent,
        "forward_frames_corrupted": forward.frames_corrupted,
        "forward_frames_dropped": forward.frames_dropped,
        "reverse_frames_sent": reverse.frames_sent,
        "reverse_frames_corrupted": reverse.frames_corrupted,
        "reverse_frames_dropped": reverse.frames_dropped,
        "datagrams_received_b": setup.link.socket_b.datagrams_received,
        "datagrams_received_a": setup.link.socket_a.datagrams_received,
        "retransmissions": getattr(sender, "retransmissions", None),
        "event_count": setup.sim.event_count,
    }
    return TransportResult(
        scenario=scenario.name, protocol=protocol, seed=seed,
        n_frames=n_frames, completed=completed,
        delivered_unique=unique, duplicates=duplicates,
        digest=digest, expected_digest=payload_digest(payloads),
        elapsed=elapsed, monitors=suite, stats=stats,
    )


def run_transfer(
    scenario: LinkScenario,
    protocol: str = "lams",
    seed: int = 0,
    *,
    n_frames: int = 48,
    payload_bytes: int = 256,
    timeout: float = 30.0,
    overrides: Optional[dict] = None,
    jitter: float = 0.0,
    drop: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    run_with_invariants: bool = True,
    tracer: Optional[Tracer] = None,
    host: str = "127.0.0.1",
) -> TransportResult:
    """Run one complete loopback transfer (blocking facade).

    Opens the session, offers *n_frames* payloads, waits (in real time,
    capped by *timeout*) for in-order delivery plus sender-ledger
    drain, finalizes the monitors, and tears everything down.
    """
    return asyncio.run(_run_transfer(
        scenario, protocol, seed, n_frames, payload_bytes, timeout,
        overrides=overrides, jitter=jitter, drop=drop,
        fault_plan=fault_plan, run_with_invariants=run_with_invariants,
        tracer=tracer, host=host,
    ))


# -- two-process endpoints (serve / transmit --connect) -------------------


@dataclass
class ServeReport:
    """Outcome of one receive-side (``serve``) session."""

    received_unique: int
    duplicates: int
    digest: str
    datagrams_received: int
    datagrams_undecodable: int
    elapsed: float


@dataclass
class ClientReport:
    """Outcome of one send-side (``transmit --connect``) session."""

    offered: int
    completed: bool
    held_remaining: int
    retransmissions: int
    elapsed: float


def _open_single_endpoint(
    clock: AsyncioClock,
    scenario: LinkScenario,
    seed: int,
    overrides: Optional[dict],
    tracer: Tracer,
    role: str,
    **socket_kwargs: Any,
):
    """Coroutine factory shared by serve/client: one socket, one endpoint."""
    from ..core.protocol import LamsDlcEndpoint

    async def _open(deliver=None):
        streams = StreamRegistry(seed=seed)
        outgoing = "fwd" if role == "A" else "rev"
        incoming = "rev" if role == "A" else "fwd"
        sock = await UdpEndpointSocket.open(
            clock,
            outgoing_name=f"{scenario.name}.{outgoing}",
            incoming_name=f"{scenario.name}.{incoming}",
            bit_rate=scenario.bit_rate,
            impairments=Impairments.from_scenario(scenario),
            streams=streams, tracer=tracer, **socket_kwargs,
        )
        config = scenario.protocol_config("lams", **(overrides or {}))
        endpoint = LamsDlcEndpoint(
            clock, config, outgoing=sock.channel,
            expected_rtt=scenario.round_trip_time,
            name=f"{scenario.name}.{role}", tracer=tracer, deliver=deliver,
            link_start_time=clock.now,
        )
        sock.attach(endpoint.on_frame)
        return sock, endpoint

    return _open


async def _serve(
    scenario: LinkScenario,
    bind: tuple[str, int],
    seed: int,
    duration: float,
    overrides: Optional[dict],
    tracer: Optional[Tracer],
) -> ServeReport:
    # Pinned epoch: both processes of a two-process session sit on the
    # machine-wide monotonic clock, so cross-endpoint timestamps
    # (checkpoint issue_time vs expected_arrival) are comparable.
    clock = AsyncioClock(epoch=0.0)
    tracer = tracer or Tracer()
    delivered: list[bytes] = []
    opener = _open_single_endpoint(
        clock, scenario, seed, overrides, tracer, role="B",
        bind=bind, learn_peer=True,
    )
    sock, endpoint = await opener(deliver=delivered.append)
    endpoint.start(send=False, receive=True)
    clock.kick()
    start = asyncio.get_running_loop().time()
    try:
        await asyncio.sleep(duration)
        clock.kick()
    finally:
        endpoint.stop()
        clock.kick()
        sock.close()
        clock.close()
        await asyncio.sleep(0)
    digest, duplicates = resequence_digest(delivered)
    unique = len({payload_index(d) for d in delivered
                  if payload_index(d) is not None})
    return ServeReport(
        received_unique=unique, duplicates=duplicates, digest=digest,
        datagrams_received=sock.datagrams_received,
        datagrams_undecodable=sock.datagrams_undecodable,
        elapsed=asyncio.get_running_loop().time() - start,
    )


def run_serve(
    scenario: LinkScenario,
    *,
    bind: tuple[str, int] = ("127.0.0.1", 47901),
    seed: int = 0,
    duration: float = 30.0,
    overrides: Optional[dict] = None,
    tracer: Optional[Tracer] = None,
) -> ServeReport:
    """Run the receive side of a two-process session for *duration*.

    The peer address is learned from the first arriving datagram, so
    the server needs no prior knowledge of the client.
    """
    return asyncio.run(_serve(scenario, bind, seed, duration, overrides, tracer))


async def _client(
    scenario: LinkScenario,
    connect: tuple[str, int],
    seed: int,
    n_frames: int,
    payload_bytes: int,
    timeout: float,
    overrides: Optional[dict],
    tracer: Optional[Tracer],
) -> ClientReport:
    # Same pinned epoch as the serving process — see _serve.
    clock = AsyncioClock(epoch=0.0)
    tracer = tracer or Tracer()
    opener = _open_single_endpoint(
        clock, scenario, seed, overrides, tracer, role="A", peer=connect,
    )
    sock, endpoint = await opener()
    endpoint.start(send=True, receive=False)
    clock.kick()
    start = asyncio.get_running_loop().time()
    sender = endpoint.sender
    offered = 0
    deadline = start + timeout
    completed = False
    try:
        for index in range(n_frames):
            payload = make_payload(index, payload_bytes)
            while asyncio.get_running_loop().time() < deadline:
                clock.kick()
                ok = endpoint.accept(payload)
                clock.kick()
                if ok:
                    offered += 1
                    break
                await asyncio.sleep(_POLL)
        # Complete when every copy is released by a checkpoint.
        while asyncio.get_running_loop().time() < deadline:
            clock.kick()
            if offered == n_frames and not sender.held_payloads():
                completed = True
                break
            await asyncio.sleep(_POLL)
    finally:
        endpoint.stop()
        clock.kick()
        sock.close()
        clock.close()
        await asyncio.sleep(0)
    return ClientReport(
        offered=offered, completed=completed,
        held_remaining=len(sender.held_payloads()),
        retransmissions=sender.retransmissions,
        elapsed=asyncio.get_running_loop().time() - start,
    )


def run_client(
    scenario: LinkScenario,
    *,
    connect: tuple[str, int],
    seed: int = 0,
    n_frames: int = 48,
    payload_bytes: int = 256,
    timeout: float = 30.0,
    overrides: Optional[dict] = None,
    tracer: Optional[Tracer] = None,
) -> ClientReport:
    """Run the send side of a two-process session against *connect*."""
    return asyncio.run(_client(
        scenario, connect, seed, n_frames, payload_bytes, timeout,
        overrides, tracer,
    ))

"""Online invariant monitors over the simulation trace stream.

The paper states LAMS-DLC's guarantees as *invariants* — zero loss
across recovery (Section 3.2/3.3), no duplicate delivery past the
destination resequencer (Section 2.3), bounded receiver buffering
(Section 3.4), cumulative-NAK coverage of the last ``C_depth``
checkpoint intervals (Section 3.2), a bounded frame holding time
(Section 3.3), and the Section 3.2 detection / declared-failure
latency bounds.  The curated tests check these pointwise; this module
checks them *continuously*, on any simulation, by listening to the
shared :class:`~repro.simulator.trace.Tracer`.

Each :class:`InvariantMonitor` consumes trace records as they are
emitted and records :class:`Violation` objects the moment an invariant
breaks — with the recent trace window attached, so a violation from a
randomized chaos episode is immediately debuggable and reproducible
from its seed (see :mod:`repro.chaos`).

Monitors never raise into the simulation: a violation is data, not an
exception, so one broken invariant cannot mask another.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from ..simulator.trace import TraceRecord, Tracer

__all__ = [
    "Violation",
    "InvariantMonitor",
    "MonitorSuite",
    "ZeroLossLedger",
    "DestinationOrderingMonitor",
    "ReceiverQueueBoundMonitor",
    "HoldingTimeBoundMonitor",
    "CheckpointCoverageMonitor",
    "FailureLatencyMonitor",
]


@dataclass
class Violation:
    """One observed breach of a protocol invariant."""

    invariant: str
    time: float
    message: str
    detail: dict[str, Any] = field(default_factory=dict)
    trace_window: tuple[str, ...] = ()
    context: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe) for soak results and caches."""
        return {
            "invariant": self.invariant,
            "time": self.time,
            "message": self.message,
            "detail": {k: repr(v) for k, v in self.detail.items()},
            "trace_window": list(self.trace_window),
            "context": {k: repr(v) for k, v in self.context.items()},
        }

    def format(self) -> str:
        """Multi-line human-readable report for one violation."""
        lines = [f"INVARIANT VIOLATION [{self.invariant}] at t={self.time:.6f}"]
        lines.append(f"  {self.message}")
        for key, value in sorted(self.detail.items()):
            lines.append(f"  {key} = {value!r}")
        if self.context:
            ctx = " ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
            lines.append(f"  context: {ctx}")
        if self.trace_window:
            lines.append("  trace window (most recent last):")
            for entry in self.trace_window:
                lines.append(f"    {entry}")
        return "\n".join(lines)


class InvariantMonitor:
    """Base class: consume trace records, accumulate violations.

    Subclasses override :meth:`on_event` (called for every record) and
    :meth:`finalize` (called once, after the simulation has run, for
    end-of-run accounting like the zero-loss ledger).
    """

    name = "invariant"

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        self._suite: Optional["MonitorSuite"] = None

    # -- wiring -----------------------------------------------------------

    def bind(self, suite: "MonitorSuite") -> None:
        self._suite = suite

    def violate(self, time: float, message: str, **detail: Any) -> Violation:
        """Record one violation (annotated with the suite's context)."""
        violation = Violation(
            invariant=self.name, time=time, message=message, detail=detail,
        )
        if self._suite is not None:
            violation.trace_window = self._suite.window_snapshot()
            violation.context = dict(self._suite.context)
        self.violations.append(violation)
        return violation

    # -- hooks ------------------------------------------------------------

    def on_event(self, record: TraceRecord) -> None:  # pragma: no cover - override
        pass

    def finalize(self, now: float) -> None:  # pragma: no cover - override
        pass


class MonitorSuite:
    """A set of monitors attached to one simulation's tracer.

    Construction registers a single listener on *tracer* that fans
    records out to every monitor and maintains the rolling trace window
    violations capture.  Call :meth:`finalize` once after the run;
    :attr:`violations` / :meth:`report` aggregate across monitors.

    *context* carries the reproducer identity (seed, scenario name,
    fault-plan name, episode index); it is stamped onto every
    violation so a failing chaos episode names its own repro command.
    """

    def __init__(
        self,
        tracer: Tracer,
        monitors: Sequence[InvariantMonitor],
        context: Optional[dict[str, Any]] = None,
        window: int = 40,
        held_snapshot: Optional[Callable[[], list[Any]]] = None,
    ) -> None:
        self.tracer = tracer
        self.monitors = list(monitors)
        self.context = dict(context or {})
        self.held_snapshot = held_snapshot or (lambda: [])
        self._window: deque[str] = deque(maxlen=window)
        self._finalized = False
        for monitor in self.monitors:
            monitor.bind(self)
        tracer.listeners.append(self._on_record)

    # -- trace plumbing ---------------------------------------------------

    def _on_record(self, record: TraceRecord) -> None:
        self._window.append(record.format())
        for monitor in self.monitors:
            monitor.on_event(record)

    def window_snapshot(self) -> tuple[str, ...]:
        return tuple(self._window)

    def detach(self) -> None:
        """Stop listening (accumulated violations stay readable)."""
        try:
            self.tracer.listeners.remove(self._on_record)
        except ValueError:
            pass

    # -- lifecycle --------------------------------------------------------

    def finalize(self, now: float) -> None:
        """Run every monitor's end-of-run checks (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        for monitor in self.monitors:
            monitor.finalize(now)
        self.detach()

    # -- results ----------------------------------------------------------

    @property
    def violations(self) -> list[Violation]:
        result: list[Violation] = []
        for monitor in self.monitors:
            result.extend(monitor.violations)
        result.sort(key=lambda v: v.time)
        return result

    @property
    def ok(self) -> bool:
        return not any(monitor.violations for monitor in self.monitors)

    def report(self) -> str:
        """All violations as one printable block ('all invariants held'
        when clean)."""
        violations = self.violations
        if not violations:
            return "all invariants held"
        return "\n\n".join(v.format() for v in violations)

    def summary(self) -> dict[str, int]:
        """Violation counts per monitor (zero entries included)."""
        return {m.name: len(m.violations) for m in self.monitors}

    def __repr__(self) -> str:
        return (
            f"<MonitorSuite monitors={len(self.monitors)} "
            f"violations={len(self.violations)}>"
        )


def _payload_key(payload: Any) -> Any:
    """A hashable identity for a payload (repr fallback)."""
    try:
        hash(payload)
    except TypeError:
        return repr(payload)
    return payload


class ZeroLossLedger(InvariantMonitor):
    """Every accepted payload is delivered or held in a reclaimable
    backlog — the paper's zero-loss guarantee (Sections 3.2-3.3).

    Listens to the sender's ``payload_accepted`` and the receiver's
    ``payload_delivered`` hooks; at finalize, anything accepted but
    neither delivered nor present in the suite's held-backlog snapshot
    (sender buffer + requeue + receiver's undrained queue) was *lost*.
    """

    name = "zero-loss"

    def __init__(self) -> None:
        super().__init__()
        self.accepted: dict[Any, Any] = {}
        self.delivered: set[Any] = set()

    def on_event(self, record: TraceRecord) -> None:
        if record.event == "payload_accepted":
            payload = record.detail.get("payload")
            self.accepted[_payload_key(payload)] = payload
        elif record.event == "payload_delivered":
            self.delivered.add(_payload_key(record.detail.get("payload")))

    def finalize(self, now: float) -> None:
        held = {_payload_key(p) for p in (self._suite.held_snapshot() if self._suite else [])}
        missing = [
            payload for key, payload in self.accepted.items()
            if key not in self.delivered and key not in held
        ]
        if missing:
            self.violate(
                now,
                f"{len(missing)} accepted payload(s) neither delivered nor "
                f"held in a reclaimable backlog",
                lost_count=len(missing),
                sample=missing[:5],
                accepted=len(self.accepted),
                delivered=len(self.delivered),
                held=len(held),
            )


class DestinationOrderingMonitor(InvariantMonitor):
    """Past the destination resequencer, delivery is duplicate-free and
    in per-flow order (Section 2.3).

    Consumes ``dest_deliver`` events (emitted by a
    :class:`~repro.netlayer.resequencer.Resequencer` constructed with a
    tracer): each flow's released sequence numbers must be exactly
    0, 1, 2, ... with no repeats and no skips.

    With *dlc_no_duplicates* set (the receiver's ``zero_duplication``
    extension armed), link-level ``payload_delivered`` events are
    additionally required to be duplicate-free — the "more recent
    version ... guarantees zero duplication" claim of Section 3.2.
    """

    name = "destination-ordering"

    def __init__(self, dlc_no_duplicates: bool = False) -> None:
        super().__init__()
        self.dlc_no_duplicates = dlc_no_duplicates
        self._next_expected: dict[Any, int] = {}
        self._dlc_delivered: set[Any] = set()

    def on_event(self, record: TraceRecord) -> None:
        if record.event == "dest_deliver":
            flow = record.detail.get("flow")
            seq = record.detail.get("seq")
            expected = self._next_expected.get(flow, 0)
            if seq != expected:
                kind = "duplicate" if seq < expected else "out-of-order/skipped"
                self.violate(
                    record.time,
                    f"destination released {kind} sequence {seq} for flow "
                    f"{flow!r} (expected {expected})",
                    flow=flow, seq=seq, expected=expected,
                )
                # Resynchronise so one fault yields one violation, not a
                # cascade for every subsequent in-order delivery.
                self._next_expected[flow] = max(seq + 1, expected)
            else:
                self._next_expected[flow] = expected + 1
        elif self.dlc_no_duplicates and record.event == "payload_delivered":
            key = _payload_key(record.detail.get("payload"))
            if key in self._dlc_delivered:
                self.violate(
                    record.time,
                    "zero-duplication receiver delivered the same payload twice",
                    payload=record.detail.get("payload"),
                )
            else:
                self._dlc_delivered.add(key)


class ReceiverQueueBoundMonitor(InvariantMonitor):
    """The receiver's resequencing/receive queue stays bounded.

    The paper's receive-buffer argument (Sections 3.1/3.4): with the
    DCE processing frames faster than the line serialises them
    (``t_proc < t_f``), arrivals are spaced at least one frame time
    apart, so the queue never builds beyond transient bursts plus the
    Stop-Go watermark.  An explicit ``receive_queue_capacity`` takes
    precedence as the bound when configured.

    Checked live on ``rxqueue_level`` hook events and once more against
    the tracer's time-weighted maxima at finalize.
    """

    name = "receiver-queue-bound"

    def __init__(self, bound: float) -> None:
        super().__init__()
        self.bound = bound
        self._tripped: set[str] = set()

    def on_event(self, record: TraceRecord) -> None:
        if record.event != "rxqueue_level":
            return
        depth = record.detail.get("depth", 0)
        if depth > self.bound and record.source not in self._tripped:
            self._tripped.add(record.source)
            self.violate(
                record.time,
                f"receive queue {record.source} reached {depth} frames, "
                f"above the bound {self.bound:g}",
                depth=depth, bound=self.bound,
            )

    def finalize(self, now: float) -> None:
        if self._suite is None:
            return
        for name, stat in self._suite.tracer.levels.items():
            if name.endswith(".rxqueue") and stat.maximum > self.bound:
                source = name.rsplit(".", 1)[0]
                if source not in self._tripped:
                    self._tripped.add(source)
                    self.violate(
                        now,
                        f"receive queue {name} peaked at {stat.maximum:g} "
                        f"frames, above the bound {self.bound:g}",
                        peak=stat.maximum, bound=self.bound,
                    )


class HoldingTimeBoundMonitor(InvariantMonitor):
    """Sender holding time and buffer occupancy stay bounded.

    Section 3.3 bounds how long one transmission of an I-frame can
    remain unresolved by the resolving period ``R + W_cp/2 +
    C_depth*W_cp``; a frame retransmitted *k* times is therefore held
    at most ``(k+1)`` resolving periods in fault-free operation.  The
    monitor is fault-aware: any overlap between the frame's lifetime
    and a fault window (padded by the declared-failure budget, during
    which recovery is legitimately stalled) extends the allowance.

    When ``send_buffer_capacity`` is configured, the send-buffer
    occupancy maximum is additionally checked at finalize.
    """

    name = "holding-time-bound"

    def __init__(
        self,
        resolving_period: float,
        fault_windows: Sequence[tuple[float, float]] = (),
        guard: float = 0.0,
        send_buffer_capacity: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.resolving_period = resolving_period
        self.fault_windows = list(fault_windows)
        self.guard = guard
        self.send_buffer_capacity = send_buffer_capacity

    def _fault_overlap(self, start: float, end: float) -> float:
        total = 0.0
        for w_start, w_end in self.fault_windows:
            total += max(0.0, min(end, w_end) - max(start, w_start))
        return total

    def on_event(self, record: TraceRecord) -> None:
        if record.event != "iframe_released":
            return
        holding = record.detail.get("holding", 0.0)
        retx = record.detail.get("retx", 0)
        start = record.time - holding
        allowance = (
            (retx + 1) * self.resolving_period
            + self._fault_overlap(start, record.time)
            + self.guard
        )
        if holding > allowance:
            self.violate(
                record.time,
                f"frame seq={record.detail.get('seq')} held {holding:.6f}s, "
                f"above the allowance {allowance:.6f}s "
                f"({retx} retransmission(s))",
                holding=holding, allowance=allowance, retx=retx,
                seq=record.detail.get("seq"),
            )

    def finalize(self, now: float) -> None:
        if self.send_buffer_capacity is None or self._suite is None:
            return
        for name, stat in self._suite.tracer.levels.items():
            if name.endswith(".sendbuf") and stat.maximum > self.send_buffer_capacity:
                self.violate(
                    now,
                    f"send buffer {name} peaked at {stat.maximum:g} frames, "
                    f"above its capacity {self.send_buffer_capacity}",
                    peak=stat.maximum, capacity=self.send_buffer_capacity,
                )


class CheckpointCoverageMonitor(InvariantMonitor):
    """Every logged error rides the next ``C_depth`` periodic
    checkpoints' cumulative NAK list (Section 3.2).

    Listens to the receiver's ``error_logged`` hook and the NAK
    sequence list on ``checkpoint_sent`` events; an error detected
    before a periodic checkpoint's issue time must appear in that
    checkpoint's list until it has been reported ``C_depth`` times.
    Enforced-NAKs are extra reports and do not consume coverage,
    matching the receiver's cumulation accounting.
    """

    name = "checkpoint-coverage"

    def __init__(self, cumulation_depth: int) -> None:
        super().__init__()
        self.cumulation_depth = cumulation_depth
        # (receiver source, seq) -> [remaining reports, detect time]
        self._pending: dict[tuple[str, int], list[float]] = {}

    def on_event(self, record: TraceRecord) -> None:
        if record.event == "error_logged":
            key = (record.source, record.detail["seq"])
            if key not in self._pending:
                self._pending[key] = [float(self.cumulation_depth), record.time]
        elif record.event == "checkpoint_sent" and not record.detail.get("enforced"):
            seqs = record.detail.get("seqs")
            if seqs is None:
                return
            listed = set(seqs)
            for key in list(self._pending):
                source, seq = key
                if source != record.source:
                    continue
                remaining, detected = self._pending[key]
                if detected >= record.time:
                    continue  # logged at/after issue; next checkpoint covers it
                if seq not in listed:
                    self.violate(
                        record.time,
                        f"error seq={seq} (detected t={detected:.6f}) missing "
                        f"from cumulative NAK with {int(remaining)} of "
                        f"{self.cumulation_depth} reports outstanding",
                        seq=seq, detected=detected,
                        remaining=int(remaining), listed=len(listed),
                    )
                    del self._pending[key]  # report once, not per checkpoint
                    continue
                remaining -= 1
                if remaining <= 0:
                    del self._pending[key]
                else:
                    self._pending[key][0] = remaining


def merge_windows(windows: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge overlapping/adjacent ``(start, end)`` intervals."""
    ordered = sorted(w for w in windows if w[1] > w[0])
    merged: list[tuple[float, float]] = []
    for start, end in ordered:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class FailureLatencyMonitor(InvariantMonitor):
    """Section 3.2 detection / declared-failure latency bounds, aware
    of the run's :class:`~repro.faults.plan.FaultPlan` timeline.

    Three checks:

    - **detection** — a checkpoint-silence window (an outage or
      blackout cutting the feedback direction, or deterministic
      control corruption) longer than the detection bound must trip
      the sender's ``C_depth * W_cp`` watchdog within the bound (plus
      an in-flight guard) of the silence starting.
    - **declared failure** — silence longer than the declared-failure
      budget must produce ``link_failure_declared`` within that budget.
    - **no spurious failure** — a failure declaration with no
      checkpoint-threatening fault window in the preceding budget is a
      protocol bug (the paper's detection is *sound*: only genuine
      feedback loss can exhaust the probe budget).

    Both latency checks only apply when the sender was in normal
    operation when the silence began (an already-suspected sender's
    watchdog is deliberately quiet).
    """

    name = "failure-latency"

    def __init__(
        self,
        silence_windows: Sequence[tuple[float, float]],
        risk_windows: Sequence[tuple[float, float]],
        detection_bound: float,
        declared_bound: float,
        guard: float,
    ) -> None:
        super().__init__()
        self.silence_windows = merge_windows(silence_windows)
        self.risk_windows = merge_windows(risk_windows)
        self.detection_bound = detection_bound
        self.declared_bound = declared_bound
        self.guard = guard
        self._state_timeline: list[tuple[float, str]] = [(-math.inf, "normal")]
        self._timeouts: list[float] = []
        self._failures: list[float] = []

    # -- event intake -----------------------------------------------------

    def on_event(self, record: TraceRecord) -> None:
        event = record.event
        if event == "checkpoint_timeout":
            self._timeouts.append(record.time)
        elif event == "request_nak_sent":
            self._note_state(record.time, "suspected")
        elif event == "enforced_recovery_complete":
            self._note_state(record.time, "normal")
        elif event == "link_failure_declared":
            self._failures.append(record.time)
            self._note_state(record.time, "failed")
            if not any(
                start <= record.time <= end + self.declared_bound + self.guard
                for start, end in self.risk_windows
            ):
                self.violate(
                    record.time,
                    "link failure declared with no checkpoint-threatening "
                    "fault window inside the preceding failure budget",
                    declared_bound=self.declared_bound,
                    risk_windows=self.risk_windows,
                )

    def _note_state(self, time: float, state: str) -> None:
        self._state_timeline.append((time, state))

    def _state_at(self, time: float) -> str:
        state = "normal"
        for when, name in self._state_timeline:
            if when >= time:
                break
            state = name
        return state

    # -- end-of-run latency checks ---------------------------------------

    def finalize(self, now: float) -> None:
        for start, end in self.silence_windows:
            if self._state_at(start) != "normal":
                continue
            detect_deadline = start + self.detection_bound + self.guard
            if end > detect_deadline and now > detect_deadline:
                if not any(start <= t <= detect_deadline for t in self._timeouts):
                    self.violate(
                        detect_deadline,
                        f"no checkpoint timeout within the detection bound "
                        f"{self.detection_bound:.6f}s (+{self.guard:.6f}s guard) "
                        f"of checkpoint silence starting at t={start:.6f}",
                        silence_start=start, silence_end=end,
                        detection_bound=self.detection_bound,
                    )
            fail_deadline = start + self.declared_bound + self.guard
            if end > fail_deadline and now > fail_deadline:
                if not any(start <= t <= fail_deadline for t in self._failures):
                    self.violate(
                        fail_deadline,
                        f"no declared failure within the failure budget "
                        f"{self.declared_bound:.6f}s (+{self.guard:.6f}s guard) "
                        f"of checkpoint silence starting at t={start:.6f}",
                        silence_start=start, silence_end=end,
                        declared_bound=self.declared_bound,
                    )

"""Online invariant monitors for the paper's correctness claims.

- :mod:`repro.invariants.monitors` — the monitor framework and the
  per-invariant checkers (zero-loss ledger, destination ordering,
  receiver queue bound, holding-time bound, checkpoint coverage,
  fault-aware failure-latency bounds).
- :mod:`repro.invariants.harness` — :func:`attach_monitors`, which
  derives every bound from a scenario + configuration and arms the
  suite on a built simulation.

The randomized soak runner living on top is :mod:`repro.chaos`.
"""

from .harness import attach_monitors, fault_risk_windows, fault_silence_windows
from .monitors import (
    CheckpointCoverageMonitor,
    DestinationOrderingMonitor,
    FailureLatencyMonitor,
    HoldingTimeBoundMonitor,
    InvariantMonitor,
    MonitorSuite,
    ReceiverQueueBoundMonitor,
    Violation,
    ZeroLossLedger,
)

__all__ = [
    "CheckpointCoverageMonitor",
    "DestinationOrderingMonitor",
    "FailureLatencyMonitor",
    "HoldingTimeBoundMonitor",
    "InvariantMonitor",
    "MonitorSuite",
    "ReceiverQueueBoundMonitor",
    "Violation",
    "ZeroLossLedger",
    "attach_monitors",
    "fault_risk_windows",
    "fault_silence_windows",
]

"""Wires the invariant monitors onto a built simulation.

:func:`attach_monitors` takes the :class:`~repro.workloads.scenarios.SimulationSetup`
produced by ``build_simulation`` (or anything shaped like it), derives
every monitor's bounds from the scenario and the LAMS configuration,
precomputes the fault-plan timelines the fault-aware monitors need,
and returns an armed :class:`~repro.invariants.monitors.MonitorSuite`.

``build_simulation(..., run_with_invariants=True)`` calls this for you;
use it directly to monitor hand-assembled simulations.
"""

from __future__ import annotations

from typing import Any, Optional

from ..faults.metrics import declared_failure_bound, detection_bound
from ..faults.plan import FaultPlan
from .monitors import (
    CheckpointCoverageMonitor,
    DestinationOrderingMonitor,
    FailureLatencyMonitor,
    HoldingTimeBoundMonitor,
    InvariantMonitor,
    MonitorSuite,
    ReceiverQueueBoundMonitor,
    ZeroLossLedger,
)

__all__ = ["attach_monitors", "fault_silence_windows", "fault_risk_windows"]

# Extra receive-queue headroom above the Stop-Go watermark: the stop
# indication takes one checkpoint flight to reach the sender, so a
# short burst can legitimately overshoot the watermark.
_QUEUE_SLACK = 16


def _cuts_feedback(fault: Any) -> bool:
    """Does this fault deterministically stop checkpoint *arrivals*?"""
    if fault.kind in ("outage", "feedback-blackout"):
        return fault.direction in ("reverse", "both")
    if fault.kind == "control-corruption":
        return fault.probability >= 1.0 and fault.direction in ("reverse", "both")
    # Transport-native kinds (UDP backend): a stalled/restarting peer
    # sends nothing and a stalled A discards arrivals, so either
    # endpoint silences the feedback path; a blackhole cuts both ways.
    if fault.kind in ("endpoint-stall", "peer-restart", "handshake-blackhole"):
        return True
    if fault.kind == "send-error-burst":
        return fault.probability >= 1.0 and fault.direction in ("reverse", "both")
    return False


def _threatens_feedback(fault: Any) -> bool:
    """Could this fault plausibly starve the sender of checkpoints?"""
    if _cuts_feedback(fault):
        return True
    if fault.kind == "control-corruption":
        return fault.direction in ("reverse", "both")
    if fault.kind == "ber-storm":
        return "cframe" in fault.targets and fault.direction in ("reverse", "both")
    if fault.kind == "send-error-burst":
        return fault.direction in ("reverse", "both")
    return False


def fault_silence_windows(plan: FaultPlan) -> list[tuple[float, float]]:
    """Windows during which checkpoint arrival is *guaranteed* cut."""
    return [(f.start, f.end) for f in plan if _cuts_feedback(f)]


def fault_risk_windows(plan: FaultPlan) -> list[tuple[float, float]]:
    """Windows during which checkpoint loss is at least *possible*."""
    return [(f.start, f.end) for f in plan if _threatens_feedback(f)]


def attach_monitors(
    setup: Any,
    scenario: Any,
    fault_plan: Optional[FaultPlan] = None,
    context: Optional[dict[str, Any]] = None,
    window: int = 40,
) -> MonitorSuite:
    """Build and attach the full monitor suite for a one-way transfer.

    *setup* must expose ``tracer``, ``endpoint_a`` (the sending side)
    and ``endpoint_b``; the endpoints must be LAMS-family (``sender`` /
    ``receiver`` halves with ``held_payloads()`` / ``queued_payloads()``)
    — other protocol families don't state the monitored invariants.

    Run the simulation, then call ``suite.finalize(setup.sim.now)`` and
    inspect ``suite.violations`` / ``suite.report()``.
    """
    sender = getattr(setup.endpoint_a, "sender", None)
    receiver = getattr(setup.endpoint_b, "receiver", None)
    if sender is None or not hasattr(sender, "held_payloads"):
        raise ValueError(
            "invariant monitors need a LAMS-family sending endpoint "
            f"(got {type(setup.endpoint_a).__name__})"
        )
    if receiver is None or not hasattr(receiver, "queued_payloads"):
        raise ValueError(
            "invariant monitors need a LAMS-family receiving endpoint "
            f"(got {type(setup.endpoint_b).__name__})"
        )
    config = sender.config
    rtt = scenario.round_trip_time
    plan = fault_plan if fault_plan is not None else FaultPlan()

    monitors: list[InvariantMonitor] = [
        ZeroLossLedger(),
        DestinationOrderingMonitor(
            dlc_no_duplicates=bool(getattr(config, "zero_duplication", False)),
        ),
        CheckpointCoverageMonitor(cumulation_depth=config.cumulation_depth),
    ]

    # Receiver queue bound — only meaningful when the DCE outpaces the
    # line (t_proc < t_f), the regime the paper's buffer argument
    # assumes; an explicit capacity is always a bound.
    if config.receive_queue_capacity is not None:
        monitors.append(ReceiverQueueBoundMonitor(bound=config.receive_queue_capacity))
    elif scenario.processing_time < scenario.iframe_time:
        monitors.append(
            ReceiverQueueBoundMonitor(
                bound=config.receive_high_watermark + _QUEUE_SLACK,
            )
        )

    # Holding time: each recovery round costs at most one resolving
    # period; fault windows (padded by the failure budget, during which
    # recovery is legitimately stalled) extend the allowance, and the
    # guard absorbs in-flight checkpoints plus throttled-drain slack.
    declared_bound = declared_failure_bound(config, rtt)
    resolving = config.resolving_period(rtt)
    pad = declared_bound + rtt
    monitors.append(
        HoldingTimeBoundMonitor(
            resolving_period=resolving,
            fault_windows=[(f.start, f.end + pad) for f in plan],
            guard=resolving + rtt,
            send_buffer_capacity=config.send_buffer_capacity,
        )
    )

    # Failure latency: consumes the fault-plan timeline.  The guard
    # covers a checkpoint already in flight when the fault begins, the
    # startup watchdog's extra RTT, and receiver processing.
    monitors.append(
        FailureLatencyMonitor(
            silence_windows=fault_silence_windows(plan),
            risk_windows=fault_risk_windows(plan),
            detection_bound=detection_bound(config),
            declared_bound=declared_bound,
            guard=rtt + config.checkpoint_interval + config.processing_time + 1e-6,
        )
    )

    def held_snapshot() -> list[Any]:
        held = sender.held_payloads()
        held.extend(receiver.queued_payloads())
        return held

    return MonitorSuite(
        setup.tracer, monitors, context=context, window=window,
        held_snapshot=held_snapshot,
    )

"""Configuration for the SR-HDLC (and GBN-HDLC) baseline.

Mirrors the paper's Section 4 notation: window size ``W``, sequence
modulus ``M = 2**l`` with ``W <= M/2`` for selective repeat, the
timeout ``t_out = R + alpha`` whose margin ``alpha`` must absorb the
RTT variance of a highly mobile network, and the frame-size /
processing parameters shared with LAMS-DLC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["HdlcConfig"]


@dataclass
class HdlcConfig:
    """Tunables of one HDLC endpoint."""

    window_size: int = 8
    sequence_bits: int = 7
    """Bit width of the N(S)/N(R) fields; modulus is ``2**sequence_bits``.
    Extended (7-bit) numbering by default, as a satellite profile would."""

    timeout: float = 0.1
    """Retransmission / poll timeout ``t_out = R + alpha`` (seconds)."""

    iframe_payload_bits: int = 8192
    iframe_overhead_bits: int = 80
    control_frame_bits: int = 96
    processing_time: float = 10e-6

    ack_every: Optional[int] = None
    """Send an RR after this many in-order deliveries.  ``None`` means
    once per window (the paper's "exchange RR every window size")."""

    send_buffer_capacity: Optional[int] = None
    selective: bool = True
    """True: selective repeat with SREJ.  False: Go-Back-N with REJ."""

    stutter: bool = False
    """Stutter mode (paper Section 1 background: Stutter GBN of [1],
    SR+ST of Miller & Lin [3]): when the window is stalled and the line
    would otherwise idle, cyclically re-send unacknowledged I-frames.
    Extra copies improve per-frame delivery odds at zero opportunity
    cost; the receiver discards duplicates."""

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError("window_size must be >= 1")
        if not 1 <= self.sequence_bits <= 32:
            raise ValueError("sequence_bits must be in [1, 32]")
        modulus = 1 << self.sequence_bits
        if self.selective and self.window_size > modulus // 2:
            raise ValueError(
                f"selective repeat requires W <= M/2 "
                f"(W={self.window_size}, M={modulus})"
            )
        if not self.selective and self.window_size > modulus - 1:
            raise ValueError(
                f"Go-Back-N requires W <= M-1 (W={self.window_size}, M={modulus})"
            )
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.iframe_payload_bits <= 0 or self.iframe_overhead_bits < 0:
            raise ValueError("I-frame sizes must be positive")
        if self.control_frame_bits <= 0:
            raise ValueError("control_frame_bits must be positive")
        if self.processing_time < 0:
            raise ValueError("processing_time cannot be negative")
        if self.ack_every is not None and self.ack_every < 1:
            raise ValueError("ack_every must be >= 1")

    @property
    def modulus(self) -> int:
        """Number of distinct sequence numbers."""
        return 1 << self.sequence_bits

    @property
    def iframe_bits(self) -> int:
        """Total I-frame size on the wire."""
        return self.iframe_payload_bits + self.iframe_overhead_bits

    @property
    def effective_ack_every(self) -> int:
        return self.ack_every if self.ack_every is not None else self.window_size

    @staticmethod
    def timeout_for_link(round_trip_time: float, alpha: float) -> float:
        """The paper's ``t_out = R + alpha`` helper."""
        if alpha < 0:
            raise ValueError("alpha cannot be negative")
        return round_trip_time + alpha

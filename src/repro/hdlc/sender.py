"""SR-HDLC sender (the paper's baseline, Section 4).

Implements the checkpoint/poll discipline the analysis models:

- Transmit new I-frames while the window ``[V(A), V(A)+W)`` is open;
  the frame that exhausts the window — or the last one available — is
  sent with the Poll bit set and starts the poll timer (``t_out``).
  This is the "RR(p)" on the last frame of each (re)transmission
  period.
- An RR cumulatively acknowledges and slides the window (frames are
  released and the **same** numbers eventually reused — unlike
  LAMS-DLC there is no renumbering, so a frame's holding time runs
  until its positive acknowledgement arrives).
- A SREJ triggers selective retransmission of the listed frames; the
  last retransmission polls again.
- Poll-timer expiry (the response was lost, or everything after a loss
  vanished) retransmits the oldest unacknowledged frame with the Poll
  bit — the paper's timeout recovery whose cost is the ``alpha``-laden
  retransmission period.

In Go-Back-N mode (``config.selective = False``) a REJ rolls the send
state back and everything from N(R) is retransmitted in order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..simulator.engine import Simulator
from ..simulator.link import SimplexChannel
from ..simulator.trace import Tracer
from .config import HdlcConfig
from .frames import HdlcIFrame, RejFrame, RrFrame, SrejFrame
from .window import SenderWindow, window_offset

__all__ = ["HdlcSender", "HdlcOutstanding"]


@dataclass
class HdlcOutstanding:
    """Bookkeeping for one unacknowledged I-frame."""

    ns: int
    payload: Any
    enqueue_time: float
    first_send_time: float
    retransmit_count: int = 0


class HdlcSender:
    """Sender state machine for one direction of an HDLC link."""

    def __init__(
        self,
        sim: Simulator,
        config: HdlcConfig,
        data_channel: SimplexChannel,
        name: str = "hdlc.tx",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.data_channel = data_channel
        self.name = name
        self.tracer = tracer or Tracer()

        self.window = SenderWindow(config.window_size, config.modulus)
        self._pending: deque[tuple[Any, float]] = deque()
        self._outstanding: dict[int, HdlcOutstanding] = {}
        self._retransmit_queue: deque[int] = deque()
        self._requeued: set[int] = set()
        self._poll_timer = sim.timer(self._on_poll_timeout)
        self._started = False
        self._stutter_cursor = 0

        self.data_channel.on_idle(self._maybe_send)

        # Statistics.
        self.iframes_sent = 0
        self.retransmissions = 0
        self.stutter_transmissions = 0
        self.releases = 0
        self.polls_sent = 0
        self.timeouts = 0
        self.enqueued_total = 0
        self.refused_total = 0
        self.holding_time_sum = 0.0
        self.holding_samples = 0
        self.peak_occupancy = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeError("sender already started")
        self._started = True
        self._maybe_send()

    def stop(self) -> None:
        self._poll_timer.cancel()
        self._started = False

    # -- network-layer interface -------------------------------------------------

    def accept(self, packet: Any) -> bool:
        """Offer a packet; False if the sending buffer refuses it."""
        capacity = self.config.send_buffer_capacity
        if capacity is not None and self.occupancy >= capacity:
            self.refused_total += 1
            return False
        self._pending.append((packet, self.sim.now))
        self.enqueued_total += 1
        self._record_occupancy()
        self._maybe_send()
        return True

    @property
    def occupancy(self) -> int:
        """Sending-buffer occupancy: pending plus unacknowledged frames.

        This is the quantity Section 4 proves has *no transparent size*
        for SR-HDLC: under sustained input it grows without bound while
        the window stalls awaiting RR.
        """
        return len(self._pending) + len(self._outstanding)

    @property
    def unresolved_count(self) -> int:
        return self.occupancy

    @property
    def pending_count(self) -> int:
        """Frames awaiting *first* transmission (the drainable backlog)."""
        return len(self._pending)

    @property
    def mean_holding_time(self) -> float:
        if self.holding_samples == 0:
            return 0.0
        return self.holding_time_sum / self.holding_samples

    def held_payloads(self) -> list[Any]:
        """Every payload not yet cumulatively acknowledged.

        Pending plus outstanding — the frames a session layer must carry
        over to the next link pass if this one ends now.
        """
        payloads = [packet for packet, _ in self._pending]
        payloads.extend(record.payload for record in self._outstanding.values())
        return payloads

    # -- transmission -----------------------------------------------------------------

    def _maybe_send(self) -> None:
        if not self._started or not self.data_channel.is_idle:
            return
        if self._retransmit_queue:
            ns = self._retransmit_queue.popleft()
            self._requeued.discard(ns)
            record = self._outstanding.get(ns)
            if record is None:
                self._maybe_send()  # acked while queued; try the next one
                return
            record.retransmit_count += 1
            self.retransmissions += 1
            self._emit(record, poll=self._is_last_sendable())
            return
        if self._pending and self.window.can_send:
            packet, enqueue_time = self._pending.popleft()
            ns = self.window.next_ns()
            record = HdlcOutstanding(
                ns=ns,
                payload=packet,
                enqueue_time=enqueue_time,
                first_send_time=self.sim.now,
            )
            self._outstanding[ns] = record
            self._emit(record, poll=self._is_last_sendable())
            return
        if self.config.stutter and self._outstanding:
            # Stutter: the line would idle while the window stalls —
            # re-send unacknowledged frames round-robin instead.  No
            # Poll bit and no timer interaction: these are opportunistic
            # extra copies, not recovery actions.
            self._emit_stutter()

    def _emit_stutter(self) -> None:
        """One round-robin stutter copy of an unacknowledged frame."""
        ordered = sorted(
            self._outstanding,
            key=lambda ns: window_offset(self.window.va, ns, self.config.modulus),
        )
        cursor = self._stutter_cursor % len(ordered)
        self._stutter_cursor = cursor + 1
        record = self._outstanding[ordered[cursor]]
        frame = HdlcIFrame(
            ns=record.ns,
            payload=record.payload,
            size_bits=self.config.iframe_bits,
            poll=False,
        )
        self.data_channel.send(frame)
        self.iframes_sent += 1
        self.stutter_transmissions += 1
        self.tracer.emit(self.sim.now, self.name, "stutter_sent", ns=record.ns)

    def _is_last_sendable(self) -> bool:
        """True if no further frame can follow immediately — poll now."""
        if self._retransmit_queue:
            return False
        if self._pending and self.window.can_send:
            return False
        return True

    def _emit(self, record: HdlcOutstanding, poll: bool) -> None:
        frame = HdlcIFrame(
            ns=record.ns,
            payload=record.payload,
            size_bits=self.config.iframe_bits,
            poll=poll,
        )
        self.data_channel.send(frame)
        self.iframes_sent += 1
        self._record_occupancy()
        if poll:
            self.polls_sent += 1
            self._poll_timer.start(self.config.timeout)
        self.tracer.emit(
            self.sim.now, self.name, "iframe_sent",
            ns=record.ns, poll=poll, retx=record.retransmit_count,
        )

    # -- responses -----------------------------------------------------------------------

    def on_rr(self, frame: RrFrame, corrupted: bool) -> None:
        if corrupted:
            self.tracer.emit(self.sim.now, self.name, "rr_corrupted")
            return
        acked = self.window.acknowledge(frame.nr)
        for ns in acked:
            record = self._outstanding.pop(ns, None)
            if record is None:
                continue
            self.releases += 1
            self.holding_time_sum += self.sim.now - record.first_send_time
            self.holding_samples += 1
            self.tracer.sample(
                f"{self.name}.holding_time", self.sim.now - record.first_send_time
            )
        if acked:
            self._record_occupancy()
        if frame.final:
            self._poll_timer.cancel()
            # The poll cycle ended but frames beyond N(R) may remain
            # unacknowledged with no SREJ coming (they were all lost in
            # one sweep).  If nothing else will trigger recovery,
            # re-poll via timeout-style retransmission of the oldest.
            nothing_sendable = not self._retransmit_queue and not (
                self._pending and self.window.can_send
            )
            if self._outstanding and nothing_sendable:
                self._poll_timer.start(self.config.timeout)
        self._maybe_send()

    def on_srej(self, frame: SrejFrame, corrupted: bool) -> None:
        if corrupted:
            self.tracer.emit(self.sim.now, self.name, "srej_corrupted")
            return
        for ns in frame.nrs:
            if ns in self._outstanding and ns not in self._requeued:
                self._retransmit_queue.append(ns)
                self._requeued.add(ns)
        if frame.final:
            self._poll_timer.cancel()
        self.tracer.emit(self.sim.now, self.name, "srej", count=len(frame.nrs))
        self._maybe_send()

    def on_rej(self, frame: RejFrame, corrupted: bool) -> None:
        """Go-Back-N: resend everything from N(R) in order."""
        if corrupted:
            return
        acked = self.window.acknowledge(frame.nr)
        for ns in acked:
            record = self._outstanding.pop(ns, None)
            if record is not None:
                self.releases += 1
                self.holding_time_sum += self.sim.now - record.first_send_time
                self.holding_samples += 1
        # Rebuild the retransmission queue in sequence order from N(R).
        self._retransmit_queue.clear()
        self._requeued.clear()
        ordered = sorted(
            self._outstanding,
            key=lambda ns: window_offset(frame.nr, ns, self.config.modulus),
        )
        for ns in ordered:
            self._retransmit_queue.append(ns)
            self._requeued.add(ns)
        if frame.final:
            self._poll_timer.cancel()
        self._record_occupancy()
        self._maybe_send()

    # -- timeout recovery ---------------------------------------------------------------------

    def _on_poll_timeout(self) -> None:
        """No response to the poll within t_out: retransmit and re-poll."""
        if not self._outstanding:
            return
        self.timeouts += 1
        oldest = min(
            self._outstanding,
            key=lambda ns: window_offset(self.window.va, ns, self.config.modulus),
        )
        if oldest not in self._requeued:
            self._retransmit_queue.appendleft(oldest)
            self._requeued.add(oldest)
        self.tracer.emit(self.sim.now, self.name, "poll_timeout", ns=oldest)
        self._poll_timer.start(self.config.timeout)
        self._maybe_send()

    # -- instrumentation --------------------------------------------------------------------------

    def _record_occupancy(self) -> None:
        if self.occupancy > self.peak_occupancy:
            self.peak_occupancy = self.occupancy
        self.tracer.level(f"{self.name}.sendbuf", self.sim.now, self.occupancy)

    def __repr__(self) -> str:
        return (
            f"<HdlcSender {self.name} sent={self.iframes_sent} "
            f"retx={self.retransmissions} released={self.releases}>"
        )

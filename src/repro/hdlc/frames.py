"""HDLC frame formats (the subset the evaluation needs).

SR-HDLC as modelled in the paper uses: numbered I-frames (with the
Poll bit for checkpointing), RR supervisory frames carrying the
cumulative acknowledgement N(R) (with the Final bit answering a poll),
SREJ for selective reject, and REJ for the Go-Back-N variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["HdlcIFrame", "RrFrame", "SrejFrame", "RejFrame", "HdlcFrame"]


@dataclass(frozen=True)
class HdlcIFrame:
    """A numbered information frame.

    ``poll`` is the P bit: set on the frame that closes a checkpoint
    cycle, soliciting an immediate RR/SREJ response (the paper's
    "RR(p)" on the last frame of a (re)transmission period).
    """

    ns: int
    payload: Any
    size_bits: int
    poll: bool = False

    is_control = False

    def __post_init__(self) -> None:
        if self.ns < 0:
            raise ValueError("N(S) cannot be negative")
        if self.size_bits <= 0:
            raise ValueError("I-frame must have positive size")


@dataclass(frozen=True)
class RrFrame:
    """Receive Ready: cumulative acknowledgement of everything < N(R)."""

    nr: int
    final: bool = False
    size_bits: int = 96

    is_control = True

    def __post_init__(self) -> None:
        if self.nr < 0:
            raise ValueError("N(R) cannot be negative")


@dataclass(frozen=True)
class SrejFrame:
    """Selective Reject: request retransmission of the listed N(S) values.

    Carries multiple sequence numbers (the ISO multi-SREJ option),
    which keeps one control frame per detection event.
    """

    nrs: tuple[int, ...]
    final: bool = False
    size_bits: int = 96

    is_control = True

    def __post_init__(self) -> None:
        if not self.nrs:
            raise ValueError("SREJ must list at least one sequence number")
        if len(set(self.nrs)) != len(self.nrs):
            raise ValueError("duplicate sequence numbers in SREJ")


@dataclass(frozen=True)
class RejFrame:
    """Reject (Go-Back-N): everything from N(R) onward must be resent."""

    nr: int
    final: bool = False
    size_bits: int = 96

    is_control = True

    def __post_init__(self) -> None:
        if self.nr < 0:
            raise ValueError("N(R) cannot be negative")


HdlcFrame = HdlcIFrame | RrFrame | SrejFrame | RejFrame

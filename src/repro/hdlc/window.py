"""Sliding-window arithmetic for HDLC.

Sequence numbers live in ``Z_M``; the helpers here linearise cyclic
comparisons against a window base, which is how both the sender
(``V(A) <= n < V(S)``) and the receiver (``V(R) <= n < V(R)+W``)
decide membership.
"""

from __future__ import annotations

__all__ = ["in_window", "window_offset", "increment", "SenderWindow", "ReceiverWindow"]


def increment(seq: int, modulus: int, by: int = 1) -> int:
    """``(seq + by) mod modulus``."""
    return (seq + by) % modulus


def window_offset(base: int, seq: int, modulus: int) -> int:
    """Forward distance from *base* to *seq* on the sequence circle."""
    return (seq - base) % modulus


def in_window(base: int, seq: int, size: int, modulus: int) -> bool:
    """True if *seq* lies in ``[base, base + size)`` cyclically."""
    return window_offset(base, seq, modulus) < size


class SenderWindow:
    """Sender-side window state: V(A) (ack base) and V(S) (next send)."""

    def __init__(self, size: int, modulus: int) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        if modulus < 2 or size > modulus - 1:
            raise ValueError("window size must be < modulus")
        self.size = size
        self.modulus = modulus
        self.va = 0
        self.vs = 0

    @property
    def outstanding(self) -> int:
        """Frames sent but not cumulatively acknowledged."""
        return window_offset(self.va, self.vs, self.modulus)

    @property
    def can_send(self) -> bool:
        """True while V(S) has not exhausted the window."""
        return self.outstanding < self.size

    def next_ns(self) -> int:
        """Consume the next send sequence number."""
        if not self.can_send:
            raise RuntimeError("window exhausted")
        ns = self.vs
        self.vs = increment(self.vs, self.modulus)
        return ns

    def acknowledge(self, nr: int) -> list[int]:
        """Apply a cumulative N(R); returns the newly acked numbers.

        N(R) acknowledges every frame *before* it.  Values outside
        ``(V(A), V(S)]`` are stale or insane and are ignored (HDLC
        treats an N(R) outside that range as a protocol error; for the
        simulation we drop it and let the timeout recover).
        """
        advance = window_offset(self.va, nr, self.modulus)
        if advance == 0 or advance > self.outstanding:
            return []
        acked = [increment(self.va, self.modulus, i) for i in range(advance)]
        self.va = nr
        return acked

    def holds(self, ns: int) -> bool:
        """True if *ns* is currently outstanding (unacked and sent)."""
        return window_offset(self.va, ns, self.modulus) < self.outstanding

    def __repr__(self) -> str:
        return f"SenderWindow(va={self.va}, vs={self.vs}, size={self.size})"


class ReceiverWindow:
    """Receiver-side state: V(R) plus the out-of-order hold buffer (SR).

    For selective repeat the receiver accepts any frame within
    ``[V(R), V(R)+W)``, holds out-of-order ones, and releases the
    in-order prefix as V(R) advances — the resequencing obligation the
    paper's Section 2.3 charges against SR-HDLC's receive buffer.
    """

    def __init__(self, size: int, modulus: int) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        self.size = size
        self.modulus = modulus
        self.vr = 0
        self._held: dict[int, object] = {}
        self.peak_held = 0

    @property
    def held_count(self) -> int:
        """Out-of-order frames currently buffered."""
        return len(self._held)

    def accepts(self, ns: int) -> bool:
        """True if *ns* falls inside the receive window."""
        return in_window(self.vr, ns, self.size, self.modulus)

    def is_duplicate(self, ns: int) -> bool:
        """True if *ns* was already received (held or behind V(R))."""
        if ns in self._held:
            return True
        # Behind V(R) (within one window back) means already delivered.
        return window_offset(ns, self.vr, self.modulus) in range(1, self.size + 1)

    def store(self, ns: int, payload: object) -> list[object]:
        """Accept frame *ns*; returns the in-order payloads now deliverable."""
        if not self.accepts(ns):
            return []
        if ns in self._held:
            return []
        self._held[ns] = payload
        if len(self._held) > self.peak_held:
            self.peak_held = len(self._held)
        deliverable: list[object] = []
        while self.vr in self._held:
            deliverable.append(self._held.pop(self.vr))
            self.vr = increment(self.vr, self.modulus)
        return deliverable

    def missing(self) -> list[int]:
        """Gap sequence numbers: expected but not yet received.

        Every number from V(R) up to the newest held frame that is not
        in the hold buffer is missing — the SREJ candidates.
        """
        if not self._held:
            return []
        max_offset = max(window_offset(self.vr, ns, self.modulus) for ns in self._held)
        result = []
        for offset in range(max_offset):
            ns = increment(self.vr, self.modulus, offset)
            if ns not in self._held:
                result.append(ns)
        return result

    def __repr__(self) -> str:
        return f"ReceiverWindow(vr={self.vr}, held={len(self._held)})"

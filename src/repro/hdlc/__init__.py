"""SR-HDLC / GBN-HDLC: the conventional ARQ baselines the paper compares against.

Selective-repeat HDLC with SREJ recovery, window checkpointing via the
Poll/Final bits, cumulative RR acknowledgement and ``t_out = R + alpha``
timeout recovery; plus the Go-Back-N variant (REJ) for the Section 1–2
background comparisons.
"""

from .config import HdlcConfig
from .frames import HdlcFrame, HdlcIFrame, RejFrame, RrFrame, SrejFrame
from .protocol import HdlcEndpoint, hdlc_pair
from .receiver import HdlcReceiver
from .sender import HdlcOutstanding, HdlcSender
from .window import ReceiverWindow, SenderWindow, in_window, increment, window_offset

__all__ = [
    "HdlcConfig",
    "HdlcEndpoint",
    "HdlcFrame",
    "HdlcIFrame",
    "HdlcOutstanding",
    "HdlcReceiver",
    "HdlcSender",
    "ReceiverWindow",
    "RejFrame",
    "RrFrame",
    "SenderWindow",
    "SrejFrame",
    "hdlc_pair",
    "in_window",
    "increment",
    "window_offset",
]

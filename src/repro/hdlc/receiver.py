"""HDLC receiver: selective-repeat (SREJ) or Go-Back-N (REJ) modes.

Selective repeat — the paper's SR-HDLC baseline:

- In-window frames are accepted; out-of-order ones are *held* for
  resequencing (this hold buffer is the receive-buffer cost Section 2.3
  charges against SR: at least a window's worth of space, because
  nothing can be delivered past a gap).
- Gaps and corrupted frames trigger SREJs (multi-SREJ: one control
  frame lists every currently missing number not already rejected).
- An RR carrying the cumulative N(R) = V(R) is sent every
  ``ack_every`` in-order deliveries, and immediately — with the Final
  bit — whenever a Poll arrives.

Go-Back-N: out-of-order frames are discarded and a single REJ per gap
episode asks the sender to back up — the frame-discard waste quantified
in Section 2.3.

For comparability with LAMS-DLC the sequence-number field (and the
poll bit) of a corrupted frame remains readable — both protocols'
headers ride under the stronger control-frame FEC.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..simulator.engine import Simulator
from ..simulator.link import SimplexChannel
from ..simulator.trace import Tracer
from .config import HdlcConfig
from .frames import HdlcIFrame, RejFrame, RrFrame, SrejFrame
from .window import ReceiverWindow, increment, window_offset

__all__ = ["HdlcReceiver"]


class HdlcReceiver:
    """Receiver state machine for one direction of an HDLC link."""

    def __init__(
        self,
        sim: Simulator,
        config: HdlcConfig,
        control_channel: SimplexChannel,
        name: str = "hdlc.rx",
        tracer: Optional[Tracer] = None,
        deliver: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.control_channel = control_channel
        self.name = name
        self.tracer = tracer or Tracer()
        # Explicit None check: callables with __len__ (e.g. DeliveryLog)
        # are falsy when empty and must not be replaced.
        self.deliver = deliver if deliver is not None else (lambda packet: None)

        self.window = ReceiverWindow(config.window_size, config.modulus)
        self._srej_outstanding: set[int] = set()
        self._rej_outstanding = False
        self._since_last_ack = 0

        # Statistics.
        self.iframes_received = 0
        self.iframes_corrupted = 0
        self.duplicates = 0
        self.discards = 0
        self.delivered = 0
        self.rr_sent = 0
        self.srej_sent = 0
        self.rej_sent = 0

    # -- frame input -------------------------------------------------------

    def on_iframe(self, frame: HdlcIFrame, corrupted: bool) -> None:
        self.iframes_received += 1
        if self.config.selective:
            self._on_iframe_sr(frame, corrupted)
        else:
            self._on_iframe_gbn(frame, corrupted)

    # -- selective repeat ------------------------------------------------------

    def _on_iframe_sr(self, frame: HdlcIFrame, corrupted: bool) -> None:
        if corrupted:
            self.iframes_corrupted += 1
            self._request_srej(extra=frame.ns)
            if frame.poll:
                self._respond_to_poll()
            return

        self._srej_outstanding.discard(frame.ns)
        if self.window.is_duplicate(frame.ns):
            self.duplicates += 1
        elif self.window.accepts(frame.ns):
            was_gap = window_offset(self.window.vr, frame.ns, self.config.modulus) > 0
            deliverable = self.window.store(frame.ns, frame.payload)
            self.tracer.level(f"{self.name}.holdbuf", self.sim.now, self.window.held_count)
            for payload in deliverable:
                self.delivered += 1
                self._since_last_ack += 1
                self.deliver(payload)
            if was_gap:
                self._request_srej()
            if self._since_last_ack >= self.config.effective_ack_every:
                self._send_rr(final=False)
        else:
            # Outside the window entirely: stale retransmission.
            self.duplicates += 1

        if frame.poll:
            self._respond_to_poll()

    def _request_srej(self, extra: Optional[int] = None) -> None:
        """SREJ every currently missing number not already rejected."""
        missing = set(self.window.missing())
        if extra is not None and not self.window.is_duplicate(extra):
            missing.add(extra)
        fresh = sorted(missing - self._srej_outstanding)
        if not fresh:
            return
        self._srej_outstanding.update(fresh)
        self._send_srej(tuple(fresh), final=False)

    def _respond_to_poll(self) -> None:
        """A Poll demands an immediate Final response: SREJ or RR."""
        missing = set(self.window.missing())
        if missing:
            # Re-assert every gap (a previous SREJ may have been lost).
            self._srej_outstanding.update(missing)
            self._send_srej(tuple(sorted(missing)), final=True)
        else:
            self._send_rr(final=True)

    # -- go-back-n ----------------------------------------------------------------

    def _on_iframe_gbn(self, frame: HdlcIFrame, corrupted: bool) -> None:
        if corrupted:
            self.iframes_corrupted += 1
            self._request_rej()
            if frame.poll:
                self._respond_to_poll_gbn()
            return
        if frame.ns == self.window.vr:
            self.window.vr = increment(self.window.vr, self.config.modulus)
            self.delivered += 1
            self._since_last_ack += 1
            self._rej_outstanding = False
            self.deliver(frame.payload)
            if self._since_last_ack >= self.config.effective_ack_every:
                self._send_rr(final=False)
        else:
            self.discards += 1
            self._request_rej()
        if frame.poll:
            self._respond_to_poll_gbn()

    def _request_rej(self) -> None:
        if self._rej_outstanding:
            return
        self._rej_outstanding = True
        self._send_rej(final=False)

    def _respond_to_poll_gbn(self) -> None:
        # The Final response re-asserts the receive state either way.
        self._send_rr(final=True)

    # -- control emission --------------------------------------------------------------

    def _send_rr(self, final: bool) -> None:
        self._since_last_ack = 0
        frame = RrFrame(nr=self.window.vr, final=final, size_bits=self.config.control_frame_bits)
        self.control_channel.send(frame)
        self.rr_sent += 1
        self.tracer.emit(self.sim.now, self.name, "rr_sent", nr=frame.nr, final=final)

    def _send_srej(self, nrs: tuple[int, ...], final: bool) -> None:
        frame = SrejFrame(nrs=nrs, final=final, size_bits=self.config.control_frame_bits)
        self.control_channel.send(frame)
        self.srej_sent += 1
        self.tracer.emit(self.sim.now, self.name, "srej_sent", count=len(nrs), final=final)

    def _send_rej(self, final: bool) -> None:
        frame = RejFrame(nr=self.window.vr, final=final, size_bits=self.config.control_frame_bits)
        self.control_channel.send(frame)
        self.rej_sent += 1
        self.tracer.emit(self.sim.now, self.name, "rej_sent", nr=frame.nr, final=final)

    @property
    def hold_buffer_count(self) -> int:
        """Out-of-order frames held for resequencing (SR only)."""
        return self.window.held_count

    def __repr__(self) -> str:
        return f"<HdlcReceiver {self.name} vr={self.window.vr} delivered={self.delivered}>"

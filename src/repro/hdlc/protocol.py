"""HDLC endpoint wiring, mirroring the LAMS-DLC endpoint shape.

An :class:`HdlcEndpoint` bundles a sender and receiver half onto one
side of a full-duplex link, with frame dispatch:

====================  ==========================================
frame type            handled by
====================  ==========================================
``HdlcIFrame``        receiver half
``RrFrame``           sender half
``SrejFrame``         sender half
``RejFrame``          sender half
====================  ==========================================

Identical construction/usage to ``lams_dlc_pair`` so experiments can be
written once and parameterised by protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core.endpoint import register_pair_factory
from ..simulator.engine import Simulator
from ..simulator.link import FullDuplexLink, SimplexChannel
from ..simulator.trace import Tracer
from .config import HdlcConfig
from .frames import HdlcIFrame, RejFrame, RrFrame, SrejFrame
from .receiver import HdlcReceiver
from .sender import HdlcSender

__all__ = ["HdlcEndpoint", "hdlc_pair"]


class HdlcEndpoint:
    """One side of an HDLC link (SR or GBN per the config)."""

    def __init__(
        self,
        sim: Simulator,
        config: HdlcConfig,
        outgoing: SimplexChannel,
        name: str = "hdlc",
        tracer: Optional[Tracer] = None,
        deliver: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.name = name
        self.tracer = tracer or Tracer()
        self.sender = HdlcSender(
            sim, config, data_channel=outgoing, name=f"{name}.tx", tracer=self.tracer
        )
        self.receiver = HdlcReceiver(
            sim, config, control_channel=outgoing, name=f"{name}.rx",
            tracer=self.tracer, deliver=deliver,
        )

    def start(self, send: bool = True, receive: bool = True) -> None:
        """Bring the endpoint up (the receiver half is purely reactive)."""
        if send:
            self.sender.start()

    def stop(self) -> None:
        self.sender.stop()

    def accept(self, packet: Any) -> bool:
        """Queue a packet for transmission."""
        return self.sender.accept(packet)

    def on_frame(self, frame: Any, corrupted: bool) -> None:
        """Dispatch one arriving frame to the proper half."""
        if isinstance(frame, HdlcIFrame):
            self.receiver.on_iframe(frame, corrupted)
        elif isinstance(frame, RrFrame):
            self.sender.on_rr(frame, corrupted)
        elif isinstance(frame, SrejFrame):
            self.sender.on_srej(frame, corrupted)
        elif isinstance(frame, RejFrame):
            self.sender.on_rej(frame, corrupted)
        else:
            raise TypeError(f"unknown frame type: {type(frame).__name__}")

    def __repr__(self) -> str:
        return f"<HdlcEndpoint {self.name}>"


@register_pair_factory("hdlc")
def _make_hdlc_pair(
    sim: Simulator,
    link: FullDuplexLink,
    config: HdlcConfig,
    *,
    config_b: Optional[HdlcConfig] = None,
    tracer: Optional[Tracer] = None,
    deliver_a: Optional[Callable[[Any], None]] = None,
    deliver_b: Optional[Callable[[Any], None]] = None,
) -> tuple[HdlcEndpoint, HdlcEndpoint]:
    """The registered ``"hdlc"`` pair factory (see ``repro.api``)."""
    endpoint_a = HdlcEndpoint(
        sim, config, outgoing=link.forward, name=f"{link.name}.A",
        tracer=tracer, deliver=deliver_a,
    )
    endpoint_b = HdlcEndpoint(
        sim, config_b or config, outgoing=link.reverse, name=f"{link.name}.B",
        tracer=tracer, deliver=deliver_b,
    )
    link.attach(endpoint_a.on_frame, endpoint_b.on_frame)
    return endpoint_a, endpoint_b


def hdlc_pair(
    sim: Simulator,
    link: FullDuplexLink,
    config: HdlcConfig,
    config_b: Optional[HdlcConfig] = None,
    tracer: Optional[Tracer] = None,
    deliver_a: Optional[Callable[[Any], None]] = None,
    deliver_b: Optional[Callable[[Any], None]] = None,
) -> tuple[HdlcEndpoint, HdlcEndpoint]:
    """Create and wire a pair of HDLC endpoints across *link*.

    .. deprecated:: transport backend PR
       Thin shim over the unified factory registry — use
       ``repro.api.make_endpoint_pair("hdlc", ...)`` instead.
       Scheduled for removal in the 1.0 release (see docs/API.md
       "Backends").
    """
    import warnings

    warnings.warn(
        "hdlc_pair is deprecated; use "
        "repro.api.make_endpoint_pair('hdlc', ...) (removal target: 1.0)",
        DeprecationWarning, stacklevel=2,
    )
    return _make_hdlc_pair(
        sim, link, config,
        config_b=config_b, tracer=tracer,
        deliver_a=deliver_a, deliver_b=deliver_b,
    )

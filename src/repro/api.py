"""Public facade: one factory for every protocol endpoint pair.

The library implements three executable link protocols — LAMS-DLC
(:mod:`repro.core`), SR-HDLC / Go-Back-N (:mod:`repro.hdlc`), and NBDT
(:mod:`repro.nbdt`) — all with the same endpoint shape.  This module is
the single entry point that makes them interchangeable:

>>> from repro.api import make_endpoint_pair
>>> from repro.simulator.engine import Simulator
>>> from repro.workloads import preset
>>> scenario = preset("nominal")
>>> sim = Simulator()
>>> link = scenario.build_link(sim, seed=1)
>>> a, b = make_endpoint_pair("lams", sim, link, scenario.lams_config())
>>> a.start(send=True, receive=False); b.start(send=False, receive=True)

Protocol names accept the experiment-level aliases (``"gbn"`` is HDLC
with ``selective=False``, ``"nbdt-multiphase"`` is NBDT with
``mode="multiphase"``, ...); :func:`available_protocols` lists them
all.  New protocol families plug in through
:func:`repro.core.endpoint.register_pair_factory` and are immediately
constructible here.

For the common "one scenario, one protocol, one-way transfer" case,
:func:`build_simulation` goes one level higher and returns a
ready-to-run :class:`~repro.workloads.scenarios.SimulationSetup`.

The per-protocol factories (``lams_dlc_pair``, ``hdlc_pair``,
``nbdt_pair``) remain available as thin shims over the same registry.

Construction is spec-based as of the topology layer: a
:class:`~repro.topology.spec.LinkSpec` bundles everything a link needs
(scenario, protocol config, per-side wiring, error models, fault plan,
seed) into one declarative value, and a
:class:`~repro.topology.graph.Topology` of such specs scales the same
machinery to M concurrent links in one engine via
:class:`~repro.topology.builder.ConstellationBuilder` — see
``docs/TOPOLOGY.md``.  :func:`make_endpoint_pair` and
:func:`build_simulation` are kept as thin wrappers over that spec path,
so both construction styles are behaviourally identical.

The runtime-verification surface is re-exported here too: pass
``run_with_invariants=True`` to :func:`build_simulation` (or call
:func:`attach_monitors` yourself) to arm the :class:`MonitorSuite`
of protocol invariants, and :func:`run_soak` drives randomized chaos
episodes under that suite (see ``docs/INVARIANTS.md``).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

# Importing the protocol modules registers the built-in families.
from . import core as _core  # noqa: F401  (registration side effect)
from . import hdlc as _hdlc  # noqa: F401
from . import nbdt as _nbdt  # noqa: F401
from .core.endpoint import (
    Endpoint,
    EndpointPair,
    TransportBackend,
    available_backends,
    available_protocols,
    build_endpoint_pair,
    register_backend,
    register_pair_factory,
    resolve_backend,
    resolve_protocol,
)
from .chaos import EpisodeSpec, SoakResult, generate_episodes, run_soak
from .faults import FaultInjector, FaultPlan, RecoveryMetrics
from .invariants import InvariantMonitor, MonitorSuite, Violation, attach_monitors
from .simulator.errormodel import (
    ErrorModelSpec,
    available_error_models,
    make_error_model,
    register_error_model,
    resolve_error_model,
)
from .topology import (
    Constellation,
    ConstellationBuilder,
    EndpointSpec,
    FlowSpec,
    LinkSpec,
    NodeSpec,
    Topology,
    build_constellation,
    chain_topology,
    cross_traffic,
    grid_topology,
    ring_topology,
)
from .topology.spec import instantiate_pair, spec_from_kwargs

__all__ = [
    "Constellation",
    "ConstellationBuilder",
    "Endpoint",
    "EndpointPair",
    "EndpointSpec",
    "EpisodeSpec",
    "ErrorModelSpec",
    "FaultInjector",
    "FaultPlan",
    "FlowSpec",
    "InvariantMonitor",
    "LinkSpec",
    "MonitorSuite",
    "NodeSpec",
    "RecoveryMetrics",
    "SoakResult",
    "Topology",
    "TransportBackend",
    "Violation",
    "attach_monitors",
    "available_backends",
    "available_error_models",
    "available_protocols",
    "build_constellation",
    "build_simulation",
    "chain_topology",
    "cross_traffic",
    "generate_episodes",
    "grid_topology",
    "make_endpoint_pair",
    "make_error_model",
    "register_backend",
    "register_error_model",
    "register_pair_factory",
    "resolve_backend",
    "resolve_error_model",
    "resolve_protocol",
    "ring_topology",
    "run_soak",
]


def make_endpoint_pair(
    protocol: str,
    sim: Any,
    link: Any,
    config: Any,
    *,
    backend: str = "des",
    config_b: Any = None,
    tracer: Any = None,
    deliver_a: Optional[Callable[[Any], None]] = None,
    deliver_b: Optional[Callable[[Any], None]] = None,
    error_model: Optional[ErrorModelSpec] = None,
    fault_plan: Optional[FaultPlan] = None,
    **extras: Any,
) -> EndpointPair:
    """Build a wired endpoint pair for any implemented protocol.

    Parameters
    ----------
    protocol:
        A name from :func:`available_protocols` (``"lams"``, ``"hdlc"``,
        ``"gbn"``, ``"nbdt-continuous"``, ...).  Alias-implied config
        adjustments (e.g. ``selective=False`` for ``"gbn"``) are applied
        to *config* automatically.
    backend:
        A name from :func:`available_backends`.  ``"des"`` (default)
        runs on the discrete-event simulator; ``"udp"`` runs the same
        state machines over real asyncio-UDP sockets, in which case
        *sim* must be a :class:`~repro.transport.clock.AsyncioClock`
        and *link* a :class:`~repro.transport.udp.UdpLink` (see
        ``docs/TRANSPORT.md``).
    sim, link:
        The simulator/clock and the full-duplex link to wire across.
    config, config_b:
        The protocol configuration (``LamsDlcConfig`` / ``HdlcConfig`` /
        ``NbdtConfig``); *config_b* overrides the B side when the two
        ends differ.
    tracer, deliver_a, deliver_b:
        Shared tracer and per-side delivery callbacks.
    error_model:
        Optional :data:`~repro.simulator.errormodel.ErrorModelSpec` — a
        registered name (``"perfect"``, ``"bernoulli"``,
        ``"gilbert-elliott"``), ``(name, kwargs)``, a mapping with a
        ``"model"`` key, or a ready instance.  Applied to the I-frame
        error process of *both* link directions, replacing whatever the
        link was built with.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`; when given, a
        :class:`~repro.faults.injector.FaultInjector` is constructed and
        its faults scheduled on *sim* before the pair is returned (the
        simulator's event heap keeps it alive).
    extras:
        Family-specific keywords, passed through (LAMS-DLC accepts
        ``on_failure_a``/``on_failure_b``/``delivery_interval_b``).

    Returns ``(endpoint_a, endpoint_b)`` — created and wired but not
    started; call ``start(send=..., receive=...)`` per the roles the
    experiment needs.

    .. note:: This kwargs signature is the legacy construction surface,
       kept working indefinitely; it is now a thin wrapper that folds
       the arguments into a :class:`LinkSpec` and runs the spec path
       (:func:`repro.topology.spec.instantiate_pair`).  New code —
       anything that stores, sweeps, or templates link configurations,
       and any multi-link topology — should build a :class:`LinkSpec`
       directly.
    """
    if backend != "des":
        # Non-DES substrates bypass the LinkSpec path (specs describe
        # simulated links); construction dispatches through the
        # (protocol, backend) registry, then the shared error-model /
        # fault-plan semantics are applied to the live channels.
        pair = build_endpoint_pair(
            protocol, sim, link, config, backend=backend,
            config_b=config_b, tracer=tracer,
            deliver_a=deliver_a, deliver_b=deliver_b, **extras,
        )
        if error_model is not None:
            for channel in (link.forward, link.reverse):
                channel.iframe_errors = resolve_error_model(
                    error_model, bit_rate=channel.bit_rate,
                )
        if fault_plan is not None and len(fault_plan):
            FaultInjector(sim, link, fault_plan,
                          tracer=getattr(link, "tracer", None))
        return pair
    spec = spec_from_kwargs(
        protocol, config, config_b=config_b,
        deliver_a=deliver_a, deliver_b=deliver_b,
        error_model=error_model, fault_plan=fault_plan,
        **extras,
    )
    return instantiate_pair(spec, sim, link, tracer=tracer, apply_error_model=True)


def build_simulation(scenario, protocol: str = "lams", *, backend: str = "des", **kwargs):
    """One-way transfer for any protocol over *scenario*, any backend.

    With ``backend="des"`` (default) this is a convenience re-export of
    :func:`repro.workloads.scenarios.build_simulation` (kept there so
    the scenario module remains self-contained); see that function for
    the keyword arguments, and it returns a ready-to-run
    :class:`~repro.workloads.scenarios.SimulationSetup`.

    Other backends dispatch through the backend registry: for
    ``backend="udp"`` the result is an *awaitable*
    :class:`~repro.transport.session.TransportSetup` (the UDP substrate
    lives on the asyncio event loop) — or use
    :func:`repro.transport.run_transfer` for a blocking whole-transfer
    facade.

    .. note:: Legacy surface, kept working indefinitely — internally it
       now builds a one-link :class:`LinkSpec` and runs the spec path.
       For anything beyond a single one-way link, describe the system
       as a :class:`Topology` and use :func:`build_constellation`.
    """
    if backend != "des":
        impl = resolve_backend(backend)
        if impl.build_simulation is None:
            raise ValueError(
                f"backend {backend!r} does not support build_simulation"
            )
        return impl.build_simulation(scenario, protocol, **kwargs)
    from .workloads.scenarios import build_simulation as _build

    return _build(scenario, protocol, **kwargs)

"""LEO constellation geometry.

The paper's target environment (Section 2.1) is a network of low-
altitude satellites (~1000 km) with point-to-point laser inter-satellite
links of 2,000–10,000 km, time-varying distance (hence time-varying
round-trip time ``R_t`` with large variance — the reason HDLC's timeout
``t_out = R + alpha`` needs a large margin ``alpha``), and short link
lifetimes on the order of minutes.

This module supplies exactly what the protocol analysis needs from the
physical layer: satellite positions on circular orbits, inter-satellite
distance as a function of time, line-of-sight visibility windows
(Earth occlusion + maximum laser range), and the derived quantities
``R(t)``, ``mean R``, ``var R_t`` and ``alpha >= R_max - R``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .link import LIGHT_SPEED_KM_S

__all__ = [
    "EARTH_RADIUS_KM",
    "EARTH_MU",
    "Satellite",
    "IsolatedLinkGeometry",
    "VisibilityWindow",
    "link_distance_km",
    "visibility_windows",
    "rtt_statistics",
    "propagation_delay_fn",
]

EARTH_RADIUS_KM = 6371.0
EARTH_MU = 398_600.4418  # km^3 / s^2, Earth's gravitational parameter
ATMOSPHERE_MARGIN_KM = 100.0
"""Laser paths grazing below this altitude are treated as occluded."""


@dataclass(frozen=True)
class Satellite:
    """A satellite on a circular orbit.

    Parameters
    ----------
    altitude_km:
        Height above the Earth's surface (paper: ~1000 km).
    inclination_deg:
        Orbital plane inclination.
    raan_deg:
        Right ascension of the ascending node (plane orientation).
    phase_deg:
        Argument of latitude at ``t = 0`` (position along the orbit).
    """

    name: str
    altitude_km: float = 1000.0
    inclination_deg: float = 60.0
    raan_deg: float = 0.0
    phase_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.altitude_km <= 0:
            raise ValueError("altitude must be positive")

    @property
    def orbit_radius_km(self) -> float:
        """Distance from Earth's centre."""
        return EARTH_RADIUS_KM + self.altitude_km

    @property
    def angular_rate(self) -> float:
        """Mean motion in radians/second (Kepler, circular orbit)."""
        return math.sqrt(EARTH_MU / self.orbit_radius_km**3)

    @property
    def period_s(self) -> float:
        """Orbital period in seconds."""
        return 2 * math.pi / self.angular_rate

    def position(self, t: float | np.ndarray) -> np.ndarray:
        """ECI position in km at time(s) *t* (shape ``(..., 3)``)."""
        u = math.radians(self.phase_deg) + self.angular_rate * np.asarray(t, dtype=float)
        inc = math.radians(self.inclination_deg)
        raan = math.radians(self.raan_deg)
        # Position in the orbital plane, then rotate by inclination and RAAN.
        x_orb = self.orbit_radius_km * np.cos(u)
        y_orb = self.orbit_radius_km * np.sin(u)
        x = x_orb * math.cos(raan) - y_orb * math.cos(inc) * math.sin(raan)
        y = x_orb * math.sin(raan) + y_orb * math.cos(inc) * math.cos(raan)
        z = y_orb * math.sin(inc)
        return np.stack([x, y, z], axis=-1)


def link_distance_km(a: Satellite, b: Satellite, t: float | np.ndarray) -> np.ndarray:
    """Inter-satellite distance in km at time(s) *t*."""
    diff = a.position(t) - b.position(t)
    return np.linalg.norm(diff, axis=-1)


def _line_of_sight_clear(pa: np.ndarray, pb: np.ndarray) -> np.ndarray:
    """True where the A–B segment stays above the occlusion radius."""
    occlusion_radius = EARTH_RADIUS_KM + ATMOSPHERE_MARGIN_KM
    ab = pb - pa
    ab_len2 = np.sum(ab * ab, axis=-1)
    # Parameter of the closest approach of the segment to the origin.
    s = np.clip(-np.sum(pa * ab, axis=-1) / np.where(ab_len2 > 0, ab_len2, 1.0), 0.0, 1.0)
    closest = pa + s[..., None] * ab
    return np.linalg.norm(closest, axis=-1) >= occlusion_radius


@dataclass(frozen=True)
class VisibilityWindow:
    """One contiguous interval during which a laser link can exist."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def visibility_windows(
    a: Satellite,
    b: Satellite,
    t_start: float,
    t_end: float,
    max_range_km: float = 10_000.0,
    step_s: float = 1.0,
) -> list[VisibilityWindow]:
    """Link-lifetime windows in ``[t_start, t_end]``.

    A link exists while the satellites are within laser range *and* have
    a clear line of sight.  Sampled at *step_s* resolution — fine enough
    for minutes-long windows.
    """
    if t_end <= t_start:
        raise ValueError("t_end must exceed t_start")
    times = np.arange(t_start, t_end + step_s, step_s)
    pa, pb = a.position(times), b.position(times)
    distance = np.linalg.norm(pa - pb, axis=-1)
    visible = (distance <= max_range_km) & _line_of_sight_clear(pa, pb)
    windows: list[VisibilityWindow] = []
    start: Optional[float] = None
    for time, ok in zip(times, visible):
        if ok and start is None:
            start = float(time)
        elif not ok and start is not None:
            windows.append(VisibilityWindow(start, float(time)))
            start = None
    if start is not None:
        windows.append(VisibilityWindow(start, float(times[-1])))
    return windows


def rtt_statistics(
    a: Satellite,
    b: Satellite,
    t_start: float,
    t_end: float,
    step_s: float = 1.0,
) -> dict[str, float]:
    """Round-trip-time statistics over a window: the paper's ``R_t`` model.

    Returns mean/min/max/variance of the propagation RTT plus the
    derived HDLC timeout margin lower bound ``alpha >= R_max - R``
    (Section 4) with ``R = (R_min + R_max) / 2``.
    """
    times = np.arange(t_start, t_end + step_s, step_s)
    rtt = 2.0 * link_distance_km(a, b, times) / LIGHT_SPEED_KM_S
    r_min, r_max = float(rtt.min()), float(rtt.max())
    r_mid = 0.5 * (r_min + r_max)
    return {
        "mean": float(rtt.mean()),
        "min": r_min,
        "max": r_max,
        "variance": float(rtt.var()),
        "stdev": float(rtt.std()),
        "midrange": r_mid,
        "alpha_min": r_max - r_mid,
    }


class IsolatedLinkGeometry:
    """Convenience wrapper for a single A–B link's time-varying delay.

    Bundles the distance function, the one-way propagation delay
    callable (pluggable straight into
    :class:`~repro.simulator.link.FullDuplexLink`), and the RTT stats
    needed to size HDLC's timeout.
    """

    def __init__(self, a: Satellite, b: Satellite) -> None:
        self.a = a
        self.b = b

    def distance_km(self, t: float) -> float:
        return float(link_distance_km(self.a, self.b, t))

    def one_way_delay(self, t: float) -> float:
        """One-way light-speed propagation delay in seconds at time *t*."""
        return self.distance_km(t) / LIGHT_SPEED_KM_S

    def delay_fn(self) -> Callable[[float], float]:
        """The delay callable for a :class:`SimplexChannel`."""
        return self.one_way_delay

    def windows(self, t_start: float, t_end: float, max_range_km: float = 10_000.0,
                step_s: float = 1.0) -> list[VisibilityWindow]:
        return visibility_windows(self.a, self.b, t_start, t_end, max_range_km, step_s)

    def rtt_stats(self, t_start: float, t_end: float, step_s: float = 1.0) -> dict[str, float]:
        return rtt_statistics(self.a, self.b, t_start, t_end, step_s)


def propagation_delay_fn(a: Satellite, b: Satellite) -> Callable[[float], float]:
    """Shorthand for :meth:`IsolatedLinkGeometry.delay_fn`."""
    return IsolatedLinkGeometry(a, b).delay_fn()

/* Compiled engine core: the Simulator.run dispatch loop in C.
 *
 * This is a line-for-line port of the pure-Python loop in engine.py —
 * same heap discipline (heapq's sift algorithms on the same plain
 * (time, sequence, callback, args) tuples), same inline Timer-expiry
 * dispatch, same event accounting on every exit path — so the two
 * backends are bit-identical by construction and the differential
 * harness (tests/test_engine_parity.py) holds them to it.
 *
 * Contract with engine.py:
 *
 * - It operates on ``sim._heap`` as a plain Python list.  Hot call
 *   sites across the repository push entries onto that list directly
 *   (inlined heappush), and ``Simulator._compact`` mutates it in
 *   place, so the list object identity is stable for the whole run.
 * - ``sim._stopped`` is re-read every iteration (callbacks call
 *   ``stop()``), ``sim.now`` is set per event to the entry's own time
 *   object, and ``sim.event_count`` grows by the number of dispatched
 *   events even when a callback raises.
 * - The Timer fast path reads ``_generation``/``_running`` attributes
 *   exactly like the pure loop; a stale expiry decrements
 *   ``sim._stale_timers`` without any Python-level call.
 *
 * Build: ``python setup.py build_ext --inplace`` (see docs/TUNING.md,
 * "Compiled core").  engine.py falls back to the pure loop when this
 * module is absent.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

static PyObject *str_now;
static PyObject *str__stopped;
static PyObject *str__heap;
static PyObject *str__stale_timers;
static PyObject *str__generation;
static PyObject *str__running;
static PyObject *str__deadline;
static PyObject *str_callback;
static PyObject *str_event_count;

/* -- heapq's sift algorithms on a list of tuples ---------------------- */

/* Entry comparison specialised for (time: float, sequence: int, ...)
 * tuples: compare the times as C doubles and break ties on the
 * sequence numbers, falling back to the generic tuple comparison for
 * anything unexpected (e.g. an integer time from schedule_at).  The
 * result is identical to tuple < tuple — sequence numbers are unique,
 * so comparison never reaches the callback fields — but skips the
 * generic richcompare machinery that dominates heap cost.
 */
static inline int
entry_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b)
        && PyTuple_GET_SIZE(a) == 4 && PyTuple_GET_SIZE(b) == 4) {
        PyObject *ta = PyTuple_GET_ITEM(a, 0);
        PyObject *tb = PyTuple_GET_ITEM(b, 0);
        if (PyFloat_CheckExact(ta) && PyFloat_CheckExact(tb)) {
            double da = PyFloat_AS_DOUBLE(ta);
            double db = PyFloat_AS_DOUBLE(tb);
            if (da < db)
                return 1;
            if (da > db)
                return 0;
            PyObject *sa = PyTuple_GET_ITEM(a, 1);
            PyObject *sb = PyTuple_GET_ITEM(b, 1);
            if (PyLong_CheckExact(sa) && PyLong_CheckExact(sb)) {
                int overflow_a = 0, overflow_b = 0;
                long la = PyLong_AsLongAndOverflow(sa, &overflow_a);
                long lb = PyLong_AsLongAndOverflow(sb, &overflow_b);
                if (!overflow_a && !overflow_b)
                    return la < lb;
            }
        }
    }
    return PyObject_RichCompareBool(a, b, Py_LT);
}

static int
siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int cmp = entry_lt(newitem, parent);
        if (cmp < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (cmp == 0)
            break;
        Py_INCREF(parent);
        if (PyList_SetItem(heap, pos, parent) < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        pos = parentpos;
    }
    return PyList_SetItem(heap, pos, newitem);
}

static int
siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int cmp = entry_lt(PyList_GET_ITEM(heap, childpos),
                               PyList_GET_ITEM(heap, rightpos));
            if (cmp < 0) {
                Py_DECREF(newitem);
                return -1;
            }
            if (cmp == 0)
                childpos = rightpos;
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        if (PyList_SetItem(heap, pos, child) < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    if (PyList_SetItem(heap, pos, newitem) < 0)
        return -1;
    return siftdown(heap, startpos, pos);
}

/* heappop: returns a new reference, or NULL on error. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (n == 1)
        return last;
    PyObject *result = PyList_GET_ITEM(heap, 0);
    Py_INCREF(result);
    if (PyList_SetItem(heap, 0, last) < 0) {
        Py_DECREF(result);
        return NULL;
    }
    if (siftup(heap, 0) < 0) {
        Py_DECREF(result);
        return NULL;
    }
    return result;
}

/* heappush: steals nothing; 0 on success. */
static int
heap_push(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0)
        return -1;
    return siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* -- event-count accounting (runs on every exit path) ----------------- */

static int
add_event_count(PyObject *sim, long long processed)
{
    PyObject *count = PyObject_GetAttr(sim, str_event_count);
    if (count == NULL)
        return -1;
    PyObject *delta = PyLong_FromLongLong(processed);
    if (delta == NULL) {
        Py_DECREF(count);
        return -1;
    }
    PyObject *total = PyNumber_Add(count, delta);
    Py_DECREF(count);
    Py_DECREF(delta);
    if (total == NULL)
        return -1;
    int result = PyObject_SetAttr(sim, str_event_count, total);
    Py_DECREF(total);
    return result;
}

static int
adjust_stale_timers(PyObject *sim, long delta)
{
    PyObject *count = PyObject_GetAttr(sim, str__stale_timers);
    if (count == NULL)
        return -1;
    PyObject *change = PyLong_FromLong(delta);
    if (change == NULL) {
        Py_DECREF(count);
        return -1;
    }
    PyObject *total = PyNumber_Add(count, change);
    Py_DECREF(count);
    Py_DECREF(change);
    if (total == NULL)
        return -1;
    int result = PyObject_SetAttr(sim, str__stale_timers, total);
    Py_DECREF(total);
    return result;
}

/* run_loop(sim, until, max_events, timer_sentinel, error_class) */
static PyObject *
run_loop(PyObject *module, PyObject *args)
{
    PyObject *sim, *until_obj, *max_events_obj, *sentinel, *exc_class;
    if (!PyArg_ParseTuple(args, "OOOOO:run_loop", &sim, &until_obj,
                          &max_events_obj, &sentinel, &exc_class))
        return NULL;

    int bounded = (until_obj != Py_None);
    double until = 0.0;
    if (bounded) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    long long limit = -1;
    if (max_events_obj != Py_None) {
        limit = PyLong_AsLongLong(max_events_obj);
        if (limit == -1 && PyErr_Occurred())
            return NULL;
    }

    if (PyObject_SetAttr(sim, str__stopped, Py_False) < 0)
        return NULL;
    PyObject *heap = PyObject_GetAttr(sim, str__heap);
    if (heap == NULL)
        return NULL;
    if (!PyList_Check(heap)) {
        Py_DECREF(heap);
        PyErr_SetString(PyExc_TypeError, "sim._heap must be a list");
        return NULL;
    }
    /* Simulator is a plain-dict class and ``now``/``_stopped`` are plain
     * instance attributes (engine.py documents this), so the loop reads
     * and writes them through the instance dict directly — a large share
     * of per-event cost at micro-benchmark scale. */
    PyObject *simdict = PyObject_GetAttrString(sim, "__dict__");
    if (simdict == NULL || !PyDict_Check(simdict)) {
        Py_XDECREF(simdict);
        Py_DECREF(heap);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "sim must carry an instance dict");
        return NULL;
    }

    long long processed = 0;
    PyObject *ret = NULL;

    while (PyList_GET_SIZE(heap) > 0) {
        PyObject *stopped = PyDict_GetItemWithError(simdict, str__stopped);
        if (stopped == NULL) {
            if (PyErr_Occurred())
                goto error;
            stopped = Py_False;  /* attribute deleted: treat as not stopped */
        }
        int is_stopped = PyObject_IsTrue(stopped);
        if (is_stopped < 0)
            goto error;
        if (is_stopped)
            break;

        PyObject *entry = heap_pop(heap);
        if (entry == NULL)
            goto error;
        if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) != 4) {
            Py_DECREF(entry);
            PyErr_SetString(PyExc_TypeError,
                            "heap entries must be (time, seq, callback, args) tuples");
            goto error;
        }
        PyObject *when_obj = PyTuple_GET_ITEM(entry, 0);
        double when = PyFloat_AsDouble(when_obj);
        if (when == -1.0 && PyErr_Occurred()) {
            Py_DECREF(entry);
            goto error;
        }
        if (bounded && when > until) {
            /* Past the horizon: push the entry back, clamp the clock. */
            int r = heap_push(heap, entry);
            Py_DECREF(entry);
            if (r < 0)
                goto error;
            if (PyDict_SetItem(simdict, str_now, until_obj) < 0)
                goto error;
            Py_INCREF(until_obj);
            ret = until_obj;
            goto done;
        }
        if (PyDict_SetItem(simdict, str_now, when_obj) < 0) {
            Py_DECREF(entry);
            goto error;
        }
        PyObject *callback = PyTuple_GET_ITEM(entry, 2);
        PyObject *cbargs = PyTuple_GET_ITEM(entry, 3);
        if (callback == sentinel) {
            /* Inline Timer-expiry dispatch. */
            PyObject *timer = PyTuple_GET_ITEM(cbargs, 0);
            PyObject *generation = PyTuple_GET_ITEM(cbargs, 1);
            PyObject *cur_gen = PyObject_GetAttr(timer, str__generation);
            if (cur_gen == NULL) {
                Py_DECREF(entry);
                goto error;
            }
            int live = PyObject_RichCompareBool(generation, cur_gen, Py_EQ);
            Py_DECREF(cur_gen);
            if (live < 0) {
                Py_DECREF(entry);
                goto error;
            }
            if (live) {
                PyObject *running = PyObject_GetAttr(timer, str__running);
                if (running == NULL) {
                    Py_DECREF(entry);
                    goto error;
                }
                live = PyObject_IsTrue(running);
                Py_DECREF(running);
                if (live < 0) {
                    Py_DECREF(entry);
                    goto error;
                }
            }
            if (live) {
                if (PyObject_SetAttr(timer, str__running, Py_False) < 0 ||
                    PyObject_SetAttr(timer, str__deadline, Py_None) < 0) {
                    Py_DECREF(entry);
                    goto error;
                }
                PyObject *cb = PyObject_GetAttr(timer, str_callback);
                if (cb == NULL) {
                    Py_DECREF(entry);
                    goto error;
                }
                PyObject *res = PyObject_CallNoArgs(cb);
                Py_DECREF(cb);
                if (res == NULL) {
                    Py_DECREF(entry);
                    goto error;
                }
                Py_DECREF(res);
            } else {
                if (adjust_stale_timers(sim, -1) < 0) {
                    Py_DECREF(entry);
                    goto error;
                }
            }
        } else {
            PyObject *res = PyObject_CallObject(callback, cbargs);
            if (res == NULL) {
                Py_DECREF(entry);
                goto error;
            }
            Py_DECREF(res);
        }
        Py_DECREF(entry);
        processed += 1;
        if (limit >= 0 && processed >= limit) {
            PyErr_Format(exc_class,
                         "exceeded max_events=%lld (possible runaway simulation)",
                         limit);
            goto error;
        }
    }

    /* Normal exit: clamp the clock to the horizon and return it. */
    {
        PyObject *now_obj = PyObject_GetAttr(sim, str_now);
        if (now_obj == NULL)
            goto error;
        if (bounded) {
            double now_val = PyFloat_AsDouble(now_obj);
            if (now_val == -1.0 && PyErr_Occurred()) {
                Py_DECREF(now_obj);
                goto error;
            }
            if (now_val < until) {
                Py_DECREF(now_obj);
                if (PyDict_SetItem(simdict, str_now, until_obj) < 0)
                    goto error;
                Py_INCREF(until_obj);
                now_obj = until_obj;
            }
        }
        ret = now_obj;
    }

done:
    if (add_event_count(sim, processed) < 0) {
        Py_DECREF(simdict);
        Py_DECREF(heap);
        Py_XDECREF(ret);
        return NULL;
    }
    Py_DECREF(simdict);
    Py_DECREF(heap);
    return ret;

error:
    {
        /* The finally clause: count dispatched events even on failure. */
        PyObject *ptype, *pvalue, *ptraceback;
        PyErr_Fetch(&ptype, &pvalue, &ptraceback);
        if (add_event_count(sim, processed) < 0)
            PyErr_Clear();
        PyErr_Restore(ptype, pvalue, ptraceback);
    }
    Py_DECREF(simdict);
    Py_DECREF(heap);
    return NULL;
}

static PyMethodDef speedups_methods[] = {
    {"run_loop", run_loop, METH_VARARGS,
     "Drain the event heap: C port of Simulator.run's dispatch loop."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef speedups_module = {
    PyModuleDef_HEAD_INIT,
    "repro.simulator._speedups",
    "Compiled engine core (see engine.py and docs/TUNING.md).",
    -1,
    speedups_methods,
};

PyMODINIT_FUNC
PyInit__speedups(void)
{
#define INTERN(var, name)                    \
    do {                                     \
        var = PyUnicode_InternFromString(name); \
        if (var == NULL)                     \
            return NULL;                     \
    } while (0)
    INTERN(str_now, "now");
    INTERN(str__stopped, "_stopped");
    INTERN(str__heap, "_heap");
    INTERN(str__stale_timers, "_stale_timers");
    INTERN(str__generation, "_generation");
    INTERN(str__running, "_running");
    INTERN(str__deadline, "_deadline");
    INTERN(str_callback, "callback");
    INTERN(str_event_count, "event_count");
#undef INTERN
    return PyModule_Create(&speedups_module);
}

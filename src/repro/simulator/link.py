"""Point-to-point full-duplex link with bandwidth, delay, and errors.

A :class:`FullDuplexLink` is two independent :class:`SimplexChannel`
instances (forward and reverse), matching the paper's link-model
assumption 2 ("all links operate in full-duplex mode").

Each simplex channel models:

- **Serialization**: one frame at a time occupies the transmitter for
  ``size_bits / bit_rate`` seconds; frames pushed while busy queue FIFO.
- **Propagation**: a fixed delay or a time-varying ``delay(t)`` callable
  (driven by the orbit model); arrivals are clamped monotone so frames
  never overtake each other.
- **Errors**: separate :class:`~repro.simulator.errormodel.ErrorModel`
  instances for I-frames and control frames, reflecting the paper's
  assumption 4 that control frames use a more powerful FEC.  Corrupted
  frames are still *delivered* with ``corrupted=True`` — the paper's
  assumption 9 makes every error CRC-detectable, and whether a corrupted
  frame's header remains readable is the receiving protocol's business.
- **Outages**: the channel can be cut (``down()``) and restored
  (``up()``); frames sent while down are silently lost (link failure /
  retargeting episodes, Section 3.2).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable, Optional, Protocol, Union

from .engine import Simulator
from .errormodel import ErrorModel, PerfectChannel
from .rng import StreamRegistry
from .trace import Tracer

__all__ = ["Transmittable", "SimplexChannel", "FullDuplexLink", "LIGHT_SPEED_KM_S"]

LIGHT_SPEED_KM_S = 299_792.458
"""Speed of light in km/s, for distance → propagation-delay conversion."""


class Transmittable(Protocol):
    """Anything a channel can carry: needs a size and a class."""

    @property
    def size_bits(self) -> int: ...

    @property
    def is_control(self) -> bool: ...


DelaySpec = Union[float, Callable[[float], float]]
FrameHandler = Callable[[Any, bool], None]


class SimplexChannel:
    """One direction of a link: serializer + propagation pipe + errors."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bit_rate: float,
        propagation_delay: DelaySpec,
        iframe_errors: Optional[ErrorModel] = None,
        cframe_errors: Optional[ErrorModel] = None,
        streams: Optional[StreamRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {bit_rate!r}")
        self.sim = sim
        self.name = name
        self.bit_rate = bit_rate
        self._delay_spec = propagation_delay
        # Constant-delay fast path: most scenarios use a fixed float, so
        # hot paths can skip the callable dispatch in propagation_delay.
        if callable(propagation_delay):
            self._fixed_delay: Optional[float] = None
        else:
            if propagation_delay < 0:
                raise ValueError("propagation delay cannot be negative")
            self._fixed_delay = float(propagation_delay)
        self.iframe_errors: ErrorModel = iframe_errors or PerfectChannel()
        self.cframe_errors: ErrorModel = cframe_errors or PerfectChannel()
        self.streams = streams or StreamRegistry()
        self.tracer = tracer or Tracer()
        self.receiver: Optional[FrameHandler] = None
        self.idle_callbacks: list[Callable[[], None]] = []
        self._queue: deque[Any] = deque()
        self._transmitting = False
        self._last_arrival = -1.0
        self._is_up = True
        # Cached RNG streams for the per-frame error draws; the registry
        # returns the same generator per name, so caching is free and
        # skips an f-string build plus a dict probe per frame.
        self._iframe_rng = None
        self._cframe_rng = None
        self.busy_seconds = 0.0
        self.frames_sent = 0
        self.frames_corrupted = 0
        self.frames_lost_outage = 0

    # -- wiring ----------------------------------------------------------

    def attach_receiver(self, handler: FrameHandler) -> None:
        """Set the callback receiving ``(frame, corrupted)`` deliveries."""
        self.receiver = handler

    def on_idle(self, callback: Callable[[], None]) -> None:
        """Register a callback fired whenever the transmit queue drains."""
        self.idle_callbacks.append(callback)

    # -- state -----------------------------------------------------------

    def propagation_delay(self, when: float) -> float:
        """Propagation delay for a frame departing at time *when*."""
        spec = self._delay_spec
        delay = spec(when) if callable(spec) else spec
        if delay < 0:
            raise ValueError(f"propagation delay went negative at t={when}")
        return delay

    @property
    def is_idle(self) -> bool:
        """True when nothing is queued or being serialized."""
        return not self._transmitting and not self._queue

    @property
    def queue_length(self) -> int:
        """Frames waiting behind the one being serialized."""
        return len(self._queue)

    @property
    def is_up(self) -> bool:
        return self._is_up

    def down(self) -> None:
        """Cut the channel: queued/in-flight sends from now on are lost."""
        self._is_up = False

    def up(self) -> None:
        """Restore the channel."""
        self._is_up = True

    # -- transmission ----------------------------------------------------

    def send(self, frame: Transmittable) -> None:
        """Queue *frame* for transmission (FIFO behind any busy frame)."""
        if self._transmitting:
            self._queue.append(frame)
            return
        if self._queue:
            # Not transmitting but backlogged (only reachable mid
            # _start_next reentry); keep strict FIFO.
            self._queue.append(frame)
            self._start_next()
            return
        # Idle-channel fast path: skip the queue round-trip and start
        # serializing immediately (the per-frame common case).
        self._transmitting = True
        tx_time = frame.size_bits / self.bit_rate
        self.busy_seconds += tx_time
        sim = self.sim
        departure = sim.now
        # Inlined sim.schedule (hot: once per frame).
        sim._sequence = sequence = sim._sequence + 1
        heappush(sim._heap, (departure + tx_time, sequence,
                             self._finish_transmit, (frame, departure)))

    def transmission_time(self, frame: Transmittable) -> float:
        """Seconds the transmitter is occupied serializing *frame*."""
        return frame.size_bits / self.bit_rate

    def _start_next(self) -> None:
        if not self._queue:
            self._transmitting = False
            callbacks = self.idle_callbacks
            if len(callbacks) == 1:
                # Single registered callback (the usual wiring): skip the
                # defensive snapshot copy — this runs once per frame.
                callbacks[0]()
            else:
                for callback in list(callbacks):
                    callback()
            return
        frame = self._queue.popleft()
        self._transmitting = True
        tx_time = frame.size_bits / self.bit_rate
        self.busy_seconds += tx_time
        sim = self.sim
        departure = sim.now
        # Inlined sim.schedule (hot: once per queued frame).
        sim._sequence = sequence = sim._sequence + 1
        heappush(sim._heap, (departure + tx_time, sequence,
                             self._finish_transmit, (frame, departure)))

    def _finish_transmit(self, frame: Transmittable, departure: float) -> None:
        self.frames_sent += 1
        if not self._is_up:
            self._lose_to_outage(frame, phase="serialize")
            self._start_next()
            return
        # Propagation (inlined here — this plus _start_next is the
        # per-frame event): pick the per-class RNG stream and error
        # model, decide corruption, and schedule the delivery.
        sim = self.sim
        delay = self._fixed_delay
        if delay is None:
            delay = self.propagation_delay(departure)
        arrival = sim.now + delay
        # Frames cannot overtake: clamp to monotone arrival order.
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival
        if frame.is_control:
            rng = self._cframe_rng
            if rng is None:
                rng = self._cframe_rng = self.streams.get(f"{self.name}.cframe")
            model = self.cframe_errors
        else:
            rng = self._iframe_rng
            if rng is None:
                rng = self._iframe_rng = self.streams.get(f"{self.name}.iframe")
            model = self.iframe_errors
        corrupted = model.frame_error(departure, frame.size_bits, rng)
        if corrupted:
            self.frames_corrupted += 1
        # Inlined sim.schedule_at (hot: once per frame); arrival can
        # never precede now because delay is validated non-negative.
        sim._sequence = sequence = sim._sequence + 1
        heappush(sim._heap, (arrival, sequence, self._deliver, (frame, corrupted)))
        self._start_next()

    def _lose_to_outage(self, frame: Transmittable, phase: str) -> None:
        """Account one frame swallowed by a down channel.

        ``phase`` distinguishes where the outage caught the frame:
        ``"serialize"`` (still occupying the transmitter) vs
        ``"propagate"`` (in flight when the channel went down).
        """
        self.frames_lost_outage += 1
        self.tracer.emit(
            self.sim.now, self.name, "frame_lost_outage",
            phase=phase, control=frame.is_control,
        )

    def _deliver(self, frame: Transmittable, corrupted: bool) -> None:
        if not self._is_up:
            self._lose_to_outage(frame, phase="propagate")
            return
        if self.receiver is None:
            raise RuntimeError(f"channel {self.name!r} has no receiver attached")
        if self.tracer.active:
            self.tracer.emit(
                self.sim.now, self.name, "deliver",
                control=frame.is_control, corrupted=corrupted,
            )
        self.receiver(frame, corrupted)

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of elapsed time the transmitter was busy."""
        end = self.sim.now if now is None else now
        return self.busy_seconds / end if end > 0 else 0.0

    def __repr__(self) -> str:
        return f"<SimplexChannel {self.name} rate={self.bit_rate:g}bps>"


class FullDuplexLink:
    """A pair of simplex channels between endpoints A and B.

    Construct with per-direction (or shared) error models, then wire the
    two protocol endpoints with :meth:`attach`.
    """

    def __init__(
        self,
        sim: Simulator,
        bit_rate: float,
        propagation_delay: DelaySpec,
        name: str = "link",
        iframe_errors: Optional[ErrorModel] = None,
        cframe_errors: Optional[ErrorModel] = None,
        reverse_iframe_errors: Optional[ErrorModel] = None,
        reverse_cframe_errors: Optional[ErrorModel] = None,
        streams: Optional[StreamRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.streams = streams or StreamRegistry()
        self.tracer = tracer or Tracer()
        self.forward = SimplexChannel(
            sim, f"{name}.fwd", bit_rate, propagation_delay,
            iframe_errors=iframe_errors, cframe_errors=cframe_errors,
            streams=self.streams, tracer=self.tracer,
        )
        self.reverse = SimplexChannel(
            sim, f"{name}.rev", bit_rate, propagation_delay,
            iframe_errors=reverse_iframe_errors or iframe_errors,
            cframe_errors=reverse_cframe_errors or cframe_errors,
            streams=self.streams, tracer=self.tracer,
        )

    def attach(self, endpoint_a: FrameHandler, endpoint_b: FrameHandler) -> None:
        """Wire receive handlers: A hears the reverse channel, B the forward."""
        self.forward.attach_receiver(endpoint_b)
        self.reverse.attach_receiver(endpoint_a)

    def round_trip_time(self, when: float = 0.0) -> float:
        """Propagation-only RTT at time *when* (no serialization)."""
        return self.forward.propagation_delay(when) + self.reverse.propagation_delay(when)

    def down(self) -> None:
        """Cut both directions."""
        self.forward.down()
        self.reverse.down()

    def up(self) -> None:
        """Restore both directions."""
        self.forward.up()
        self.reverse.up()

    def __repr__(self) -> str:
        return f"<FullDuplexLink {self.name}>"


def delay_from_distance_km(distance_km: float) -> float:
    """Propagation delay in seconds for a light-speed path of *distance_km*."""
    if distance_km < 0:
        raise ValueError("distance cannot be negative")
    return distance_km / LIGHT_SPEED_KM_S

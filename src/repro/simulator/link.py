"""Point-to-point full-duplex link with bandwidth, delay, and errors.

A :class:`FullDuplexLink` is two independent :class:`SimplexChannel`
instances (forward and reverse), matching the paper's link-model
assumption 2 ("all links operate in full-duplex mode").

Each simplex channel models:

- **Serialization**: one frame at a time occupies the transmitter for
  ``size_bits / bit_rate`` seconds; frames pushed while busy queue FIFO.
- **Propagation**: a fixed delay or a time-varying ``delay(t)`` callable
  (driven by the orbit model); arrivals are clamped monotone so frames
  never overtake each other.
- **Errors**: separate :class:`~repro.simulator.errormodel.ErrorModel`
  instances for I-frames and control frames, reflecting the paper's
  assumption 4 that control frames use a more powerful FEC.  Corrupted
  frames are still *delivered* with ``corrupted=True`` — the paper's
  assumption 9 makes every error CRC-detectable, and whether a corrupted
  frame's header remains readable is the receiving protocol's business.
- **Outages**: the channel can be cut (``down()``) and restored
  (``up()``); frames sent while down are silently lost (link failure /
  retargeting episodes, Section 3.2).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable, Optional, Protocol, Sequence, Union

from .engine import Simulator
from .errormodel import ErrorModel, PerfectChannel, scalar_draw_window
from .rng import StreamRegistry
from .trace import Tracer

__all__ = ["Transmittable", "SimplexChannel", "FullDuplexLink", "LIGHT_SPEED_KM_S"]

LIGHT_SPEED_KM_S = 299_792.458
"""Speed of light in km/s, for distance → propagation-delay conversion."""


class Transmittable(Protocol):
    """Anything a channel can carry: needs a size and a class."""

    @property
    def size_bits(self) -> int: ...

    @property
    def is_control(self) -> bool: ...


DelaySpec = Union[float, Callable[[float], float]]
FrameHandler = Callable[[Any, bool], None]


class _Burst:
    """In-flight state of one :meth:`SimplexChannel.send_burst` window.

    ``cancelled_from`` marks the first frame index handed back to the
    scalar machinery by a mid-burst :meth:`SimplexChannel.down` — its
    pre-scheduled delivery (and the burst-complete event) become
    no-ops for indices at or past the mark.
    """

    __slots__ = ("frames", "starts", "finishes", "arrivals",
                 "verdicts", "cancelled_from", "prev_last_arrival")

    def __init__(self, frames, starts, finishes, arrivals, verdicts,
                 prev_last_arrival):
        self.frames = frames
        self.starts = starts
        self.finishes = finishes
        self.arrivals = arrivals
        self.verdicts = verdicts
        self.cancelled_from = len(frames)
        self.prev_last_arrival = prev_last_arrival


class SimplexChannel:
    """One direction of a link: serializer + propagation pipe + errors."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bit_rate: float,
        propagation_delay: DelaySpec,
        iframe_errors: Optional[ErrorModel] = None,
        cframe_errors: Optional[ErrorModel] = None,
        streams: Optional[StreamRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {bit_rate!r}")
        self.sim = sim
        self.name = name
        self.bit_rate = bit_rate
        self._delay_spec = propagation_delay
        # Constant-delay fast path: most scenarios use a fixed float, so
        # hot paths can skip the callable dispatch in propagation_delay.
        if callable(propagation_delay):
            self._fixed_delay: Optional[float] = None
        else:
            if propagation_delay < 0:
                raise ValueError("propagation delay cannot be negative")
            self._fixed_delay = float(propagation_delay)
        self.iframe_errors: ErrorModel = iframe_errors or PerfectChannel()
        self.cframe_errors: ErrorModel = cframe_errors or PerfectChannel()
        self.streams = streams or StreamRegistry()
        self.tracer = tracer or Tracer()
        self.receiver: Optional[FrameHandler] = None
        self.idle_callbacks: list[Callable[[], None]] = []
        self._queue: deque[Any] = deque()
        self._transmitting = False
        self._last_arrival = -1.0
        self._is_up = True
        self._active_burst: Optional[_Burst] = None
        # Cached RNG streams for the per-frame error draws; the registry
        # returns the same generator per name, so caching is free and
        # skips an f-string build plus a dict probe per frame.
        self._iframe_rng = None
        self._cframe_rng = None
        self.busy_seconds = 0.0
        self.frames_sent = 0
        self.frames_corrupted = 0
        self.frames_lost_outage = 0

    # -- wiring ----------------------------------------------------------

    def attach_receiver(self, handler: FrameHandler) -> None:
        """Set the callback receiving ``(frame, corrupted)`` deliveries."""
        self.receiver = handler

    def on_idle(self, callback: Callable[[], None]) -> None:
        """Register a callback fired whenever the transmit queue drains."""
        self.idle_callbacks.append(callback)

    # -- state -----------------------------------------------------------

    def propagation_delay(self, when: float) -> float:
        """Propagation delay for a frame departing at time *when*."""
        spec = self._delay_spec
        delay = spec(when) if callable(spec) else spec
        if delay < 0:
            raise ValueError(f"propagation delay went negative at t={when}")
        return delay

    @property
    def is_idle(self) -> bool:
        """True when nothing is queued or being serialized."""
        return not self._transmitting and not self._queue

    @property
    def queue_length(self) -> int:
        """Frames waiting behind the one being serialized."""
        return len(self._queue)

    @property
    def is_up(self) -> bool:
        return self._is_up

    def down(self) -> None:
        """Cut the channel: queued/in-flight sends from now on are lost."""
        self._is_up = False
        if self._active_burst is not None:
            self._rescalarize_burst(self._active_burst)

    def up(self) -> None:
        """Restore the channel."""
        self._is_up = True

    # -- transmission ----------------------------------------------------

    def send(self, frame: Transmittable) -> None:
        """Queue *frame* for transmission (FIFO behind any busy frame)."""
        if self._transmitting:
            self._queue.append(frame)
            return
        if self._queue:
            # Not transmitting but backlogged (only reachable mid
            # _start_next reentry); keep strict FIFO.
            self._queue.append(frame)
            self._start_next()
            return
        # Idle-channel fast path: skip the queue round-trip and start
        # serializing immediately (the per-frame common case).
        self._transmitting = True
        tx_time = frame.size_bits / self.bit_rate
        self.busy_seconds += tx_time
        sim = self.sim
        departure = sim.now
        # Inlined sim.schedule (hot: once per frame).
        sim._sequence = sequence = sim._sequence + 1
        heappush(sim._heap, (departure + tx_time, sequence,
                             self._finish_transmit, (frame, departure)))

    def transmission_time(self, frame: Transmittable) -> float:
        """Seconds the transmitter is occupied serializing *frame*."""
        return frame.size_bits / self.bit_rate

    # -- batched transmission --------------------------------------------

    def send_burst(self, frames: Sequence[Transmittable]) -> None:
        """Serialize a FIFO window of frames as one batched operation.

        Semantically equivalent to ``for f in frames: self.send(f)`` on
        an idle, up channel with no competing traffic: departure,
        finish, and arrival times match the scalar schedule exactly, and
        corruption verdicts come from the error model's bulk
        ``draw_window`` — the same RNG variates in the same order as
        per-frame draws.  The saving is event count: ``k`` deliveries
        plus one completion event instead of ``2k`` events.

        Two deliberate, bounded divergences from the scalar path:

        - frames queued behind an in-progress burst (interleaved control
          traffic, NAK-triggered retransmissions) wait for the whole
          window rather than the next frame boundary, so recovery
          timing can shift once the backlog outlasts the RTT;
        - a mid-burst :meth:`down` hands the unfinished tail back to the
          scalar machinery, whose outage handling re-draws those frames'
          verdicts when the channel comes back up.

        Callers that need exact scalar behaviour (retransmissions,
        paced traffic) simply keep calling :meth:`send`.
        """
        if self._transmitting or self._queue or not self._is_up or len(frames) < 2:
            for frame in frames:
                self.send(frame)
            return
        first_control = frames[0].is_control
        sizes = []
        for frame in frames:
            if frame.is_control is not first_control:
                # Mixed window (never produced by the sender's batched
                # loop): the two frame classes draw from different RNG
                # streams, so fall back to per-frame sends.
                for one in frames:
                    self.send(one)
                return
            sizes.append(frame.size_bits)
        self._transmitting = True
        sim = self.sim
        bit_rate = self.bit_rate
        cursor = sim.now
        starts = []
        finishes = []
        for bits in sizes:
            starts.append(cursor)
            cursor += bits / bit_rate
            finishes.append(cursor)
        self.busy_seconds += cursor - starts[0]
        if first_control:
            rng = self._cframe_rng
            if rng is None:
                rng = self._cframe_rng = self.streams.get(f"{self.name}.cframe")
            model = self.cframe_errors
        else:
            rng = self._iframe_rng
            if rng is None:
                rng = self._iframe_rng = self.streams.get(f"{self.name}.iframe")
            model = self.iframe_errors
        bulk = getattr(model, "draw_window", None)
        if bulk is not None:
            verdicts = bulk(starts, sizes, rng)
        else:
            verdicts = scalar_draw_window(model, starts, sizes, rng)
        n = len(frames)
        self.frames_sent += n
        corrupted_count = 0
        fixed_delay = self._fixed_delay
        last_arrival = self._last_arrival
        prev_last_arrival = last_arrival
        arrivals = []
        propagation_delay = self.propagation_delay
        for i in range(n):
            if verdicts[i]:
                corrupted_count += 1
            delay = fixed_delay
            if delay is None:
                delay = propagation_delay(starts[i])
            arrival = finishes[i] + delay
            if arrival < last_arrival:
                arrival = last_arrival
            last_arrival = arrival
            arrivals.append(arrival)
        self.frames_corrupted += corrupted_count
        self._last_arrival = last_arrival
        burst = _Burst(frames, starts, finishes, arrivals, verdicts,
                       prev_last_arrival)
        self._active_burst = burst
        # Inlined sim.schedule_at: k delivery events plus one window-
        # completion event (vs 2k scalar events).
        heap = sim._heap
        sequence = sim._sequence
        deliver = self._deliver_burst
        for i in range(n):
            sequence += 1
            heappush(heap, (arrivals[i], sequence, deliver, (burst, i)))
        sequence += 1
        heappush(heap, (cursor, sequence, self._burst_complete, (burst,)))
        sim._sequence = sequence

    def _deliver_burst(self, burst: _Burst, i: int) -> None:
        if i >= burst.cancelled_from:
            return  # tail handed back to the scalar path by a mid-burst down()
        frame = burst.frames[i]
        if not self._is_up:
            self._lose_to_outage(frame, phase="propagate")
            return
        if self.receiver is None:
            raise RuntimeError(f"channel {self.name!r} has no receiver attached")
        corrupted = burst.verdicts[i]
        if self.tracer.active:
            self.tracer.emit(
                self.sim.now, self.name, "deliver",
                control=frame.is_control, corrupted=corrupted,
            )
        self.receiver(frame, corrupted)

    def _burst_complete(self, burst: _Burst) -> None:
        if burst.cancelled_from < len(burst.frames):
            return  # the rescalarized tail drives _start_next instead
        self._active_burst = None
        self._start_next()

    def _rescalarize_burst(self, burst: _Burst) -> None:
        """Hand a burst's unfinished tail back to the scalar machinery.

        Called by :meth:`down`.  Frames already past serialization keep
        their scheduled deliveries (they are in flight, and
        :meth:`_deliver_burst` loses them while the channel is down,
        like scalar in-flight frames).  The frame currently serializing
        finishes on the scalar :meth:`_finish_transmit` path; frames not
        yet started return to the head of the queue with their batched
        accounting undone, so the scalar path re-decides them against
        the channel state at their actual serialization times.
        """
        self._active_burst = None
        now = self.sim.now
        finishes = burst.finishes
        n = len(finishes)
        j = n
        for i in range(n):
            if finishes[i] > now:
                j = i
                break
        if j >= n:
            return  # window fully serialized; only the completion event remains
        burst.cancelled_from = j
        frames = burst.frames
        verdicts = burst.verdicts
        # Undo batched accounting for the unfinished tail.
        self.frames_sent -= n - j
        self.frames_corrupted -= sum(1 for i in range(j, n) if verdicts[i])
        # Arrival clamping must forget the cancelled tail's arrivals.
        self._last_arrival = (
            burst.arrivals[j - 1] if j > 0 else burst.prev_last_arrival
        )
        # Frames after the one mid-serialization go back to the queue
        # head (busy time re-accrues when they restart).
        for i in range(n - 1, j, -1):
            self.busy_seconds -= finishes[i] - burst.starts[i]
            self._queue.appendleft(frames[i])
        # The frame on the wire finishes serializing on schedule; the
        # scalar finish decides outage loss vs delivery and pulls the
        # queue along via _start_next.
        sim = self.sim
        sim._sequence = sequence = sim._sequence + 1
        heappush(sim._heap, (finishes[j], sequence,
                             self._finish_transmit, (frames[j], burst.starts[j])))

    def _start_next(self) -> None:
        if not self._queue:
            self._transmitting = False
            callbacks = self.idle_callbacks
            if len(callbacks) == 1:
                # Single registered callback (the usual wiring): skip the
                # defensive snapshot copy — this runs once per frame.
                callbacks[0]()
            else:
                for callback in list(callbacks):
                    callback()
            return
        frame = self._queue.popleft()
        self._transmitting = True
        tx_time = frame.size_bits / self.bit_rate
        self.busy_seconds += tx_time
        sim = self.sim
        departure = sim.now
        # Inlined sim.schedule (hot: once per queued frame).
        sim._sequence = sequence = sim._sequence + 1
        heappush(sim._heap, (departure + tx_time, sequence,
                             self._finish_transmit, (frame, departure)))

    def _finish_transmit(self, frame: Transmittable, departure: float) -> None:
        self.frames_sent += 1
        if not self._is_up:
            self._lose_to_outage(frame, phase="serialize")
            self._start_next()
            return
        # Propagation (inlined here — this plus _start_next is the
        # per-frame event): pick the per-class RNG stream and error
        # model, decide corruption, and schedule the delivery.
        sim = self.sim
        delay = self._fixed_delay
        if delay is None:
            delay = self.propagation_delay(departure)
        arrival = sim.now + delay
        # Frames cannot overtake: clamp to monotone arrival order.
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival
        if frame.is_control:
            rng = self._cframe_rng
            if rng is None:
                rng = self._cframe_rng = self.streams.get(f"{self.name}.cframe")
            model = self.cframe_errors
        else:
            rng = self._iframe_rng
            if rng is None:
                rng = self._iframe_rng = self.streams.get(f"{self.name}.iframe")
            model = self.iframe_errors
        corrupted = model.frame_error(departure, frame.size_bits, rng)
        if corrupted:
            self.frames_corrupted += 1
        # Inlined sim.schedule_at (hot: once per frame); arrival can
        # never precede now because delay is validated non-negative.
        sim._sequence = sequence = sim._sequence + 1
        heappush(sim._heap, (arrival, sequence, self._deliver, (frame, corrupted)))
        self._start_next()

    def _lose_to_outage(self, frame: Transmittable, phase: str) -> None:
        """Account one frame swallowed by a down channel.

        ``phase`` distinguishes where the outage caught the frame:
        ``"serialize"`` (still occupying the transmitter) vs
        ``"propagate"`` (in flight when the channel went down).
        """
        self.frames_lost_outage += 1
        self.tracer.emit(
            self.sim.now, self.name, "frame_lost_outage",
            phase=phase, control=frame.is_control,
        )

    def _deliver(self, frame: Transmittable, corrupted: bool) -> None:
        if not self._is_up:
            self._lose_to_outage(frame, phase="propagate")
            return
        if self.receiver is None:
            raise RuntimeError(f"channel {self.name!r} has no receiver attached")
        if self.tracer.active:
            self.tracer.emit(
                self.sim.now, self.name, "deliver",
                control=frame.is_control, corrupted=corrupted,
            )
        self.receiver(frame, corrupted)

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of elapsed time the transmitter was busy."""
        end = self.sim.now if now is None else now
        return self.busy_seconds / end if end > 0 else 0.0

    def __repr__(self) -> str:
        return f"<SimplexChannel {self.name} rate={self.bit_rate:g}bps>"


class FullDuplexLink:
    """A pair of simplex channels between endpoints A and B.

    Construct with per-direction (or shared) error models, then wire the
    two protocol endpoints with :meth:`attach`.
    """

    def __init__(
        self,
        sim: Simulator,
        bit_rate: float,
        propagation_delay: DelaySpec,
        name: str = "link",
        iframe_errors: Optional[ErrorModel] = None,
        cframe_errors: Optional[ErrorModel] = None,
        reverse_iframe_errors: Optional[ErrorModel] = None,
        reverse_cframe_errors: Optional[ErrorModel] = None,
        streams: Optional[StreamRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.streams = streams or StreamRegistry()
        self.tracer = tracer or Tracer()
        self.forward = SimplexChannel(
            sim, f"{name}.fwd", bit_rate, propagation_delay,
            iframe_errors=iframe_errors, cframe_errors=cframe_errors,
            streams=self.streams, tracer=self.tracer,
        )
        self.reverse = SimplexChannel(
            sim, f"{name}.rev", bit_rate, propagation_delay,
            iframe_errors=reverse_iframe_errors or iframe_errors,
            cframe_errors=reverse_cframe_errors or cframe_errors,
            streams=self.streams, tracer=self.tracer,
        )

    def attach(self, endpoint_a: FrameHandler, endpoint_b: FrameHandler) -> None:
        """Wire receive handlers: A hears the reverse channel, B the forward."""
        self.forward.attach_receiver(endpoint_b)
        self.reverse.attach_receiver(endpoint_a)

    def round_trip_time(self, when: float = 0.0) -> float:
        """Propagation-only RTT at time *when* (no serialization)."""
        return self.forward.propagation_delay(when) + self.reverse.propagation_delay(when)

    def down(self) -> None:
        """Cut both directions."""
        self.forward.down()
        self.reverse.down()

    def up(self) -> None:
        """Restore both directions."""
        self.forward.up()
        self.reverse.up()

    def __repr__(self) -> str:
        return f"<FullDuplexLink {self.name}>"


def delay_from_distance_km(distance_km: float) -> float:
    """Propagation delay in seconds for a light-speed path of *distance_km*."""
    if distance_km < 0:
        raise ValueError("distance cannot be negative")
    return distance_km / LIGHT_SPEED_KM_S

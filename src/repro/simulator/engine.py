"""Discrete-event simulation engine.

This module is a small, dependency-free discrete-event simulator in the
style of SimPy: a :class:`Simulator` owns a clock and an event heap,
*processes* are Python generators that ``yield`` events to wait on, and
plain callbacks can be scheduled at absolute or relative times.

The engine is deliberately deterministic: events scheduled for the same
time fire in the order they were scheduled (FIFO tie-breaking via a
monotonically increasing sequence number).  This matters for protocol
simulations where, e.g., a frame arrival and a timer expiry at the same
instant must resolve reproducibly.

Hot-path design notes
---------------------
The dispatch loop is the single hottest function in the repository (a
1 Gbps LAMS link simulates millions of frame events per run), so the
inner loop trades a little elegance for speed:

- Heap entries are plain ``(time, sequence, callback, args)`` tuples.
  Slotted record objects were benchmarked as the alternative and lost
  by ~3x: ``heapq`` compares tuples in C, while a slotted record pays a
  Python-level ``__lt__`` call per comparison.  The tuples are still
  "records" in the scheduling contract sense — the ``(time, sequence)``
  prefix is the total order and the trailing fields are opaque.
- ``heappush``/``heappop`` are bound once (keyword-only default
  arguments / loop locals), and :attr:`Simulator.now` is a plain
  attribute rather than a property so callbacks reading the clock do
  not pay descriptor overhead.
- :class:`Timer` expiries are engine-recognised entries dispatched
  inline (no per-expiry Python call for stale generations), and
  cancelled/restarted timers are compacted out of the heap in batch
  once they outnumber live entries — heavy timer churn cannot bloat
  the heap, and there is no per-cancel O(n) sweep.

Engine backends
---------------
The dispatch loop has two interchangeable implementations selected via
the ``REPRO_ENGINE`` environment variable (read once at import):

- ``pure`` — the Python loop in :meth:`Simulator.run` below.
- ``compiled`` — the C port in ``_speedups.c`` (build it with
  ``python setup.py build_ext --inplace``).  Requesting ``compiled``
  without the artifact warns and falls back to ``pure``.
- ``auto`` (default) — ``compiled`` when the artifact imports, else
  ``pure``, silently.

Both backends drain the same heap of the same tuples with the same
tie-breaking, clock updates, and event accounting, so results are
bit-identical — tests/test_engine_parity.py runs golden scenarios on
both and asserts identical tracer summaries and delivered payloads.
:func:`engine_backend` reports the active choice (benchmarks stamp it
into their records); :func:`use_backend` overrides it for a ``with``
block in tests.

Separately, :class:`Simulator` accepts a ``timer_wheel_width`` giving a
calendar-queue (bucketed) scheduler for :class:`Timer` expiries — aimed
at the constellation regime where ~10k concurrent checkpoint timers
churn faster than frame events.  The wheel run loop is pure Python (it
takes precedence over the compiled backend for that simulator) and its
merged dispatch preserves the exact ``(time, sequence)`` order.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim, log):
...     yield sim.timeout(1.0)
...     log.append(sim.now)
...     yield sim.timeout(2.0)
...     log.append(sim.now)
>>> _ = sim.process(proc(sim, log))
>>> sim.run()
3.0
>>> log
[1.0, 3.0]
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, Iterator, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Timer",
    "TimerWheel",
    "SimulationError",
    "StopSimulation",
    "engine_backend",
    "use_backend",
    "COMPILED_AVAILABLE",
]


class SimulationError(Exception):
    """Raised for illegal engine operations (e.g. double-firing an event)."""


class StopSimulation(Exception):
    """Raised inside a process to halt the whole simulation immediately."""


class _TimerExpiry:
    """Sentinel marking a heap entry as a :class:`Timer` expiry.

    Entries carrying this sentinel are dispatched inline by
    :meth:`Simulator.run` (args hold ``(timer, generation)``), which
    lets the engine both skip stale generations without a Python call
    and identify dead entries during batch compaction.
    """

    __slots__ = ()


_TIMER_EXPIRE = _TimerExpiry()


# -- backend selection (REPRO_ENGINE=pure|compiled|auto) -------------------

def _load_compiled_run(requested: str):
    """Import the compiled run loop, honouring the requested backend."""
    if requested == "pure":
        return None
    try:
        from repro.simulator import _speedups
    except ImportError:
        if requested == "compiled":
            warnings.warn(
                "REPRO_ENGINE=compiled but repro.simulator._speedups is not "
                "built; falling back to the pure-Python engine. Build it "
                "with: python setup.py build_ext --inplace",
                RuntimeWarning,
                stacklevel=2,
            )
        return None
    return _speedups.run_loop


_REQUESTED_ENGINE = os.environ.get("REPRO_ENGINE", "auto").strip().lower() or "auto"
if _REQUESTED_ENGINE not in ("pure", "compiled", "auto"):
    raise ValueError(
        f"REPRO_ENGINE must be 'pure', 'compiled', or 'auto', "
        f"got {_REQUESTED_ENGINE!r}"
    )

# The compiled loop is loaded once regardless of the request (so tests can
# flip backends at runtime via use_backend); _ACTIVE_RUN holds the loop a
# Simulator.run call will actually use, or None for the pure loop.
_COMPILED_RUN = _load_compiled_run("auto")
COMPILED_AVAILABLE = _COMPILED_RUN is not None
"""True when the ``_speedups`` extension imported successfully."""

if _REQUESTED_ENGINE == "compiled" and not COMPILED_AVAILABLE:
    # Re-run purely for the user-facing warning documented above.
    _load_compiled_run("compiled")

_ACTIVE_RUN = _COMPILED_RUN if _REQUESTED_ENGINE != "pure" else None


def engine_backend() -> str:
    """The dispatch-loop backend new :meth:`Simulator.run` calls will use.

    Returns ``"compiled"`` or ``"pure"``.  Benchmarks stamp this into
    their records so throughput numbers are attributable to a backend.
    (A simulator constructed with a timer wheel always runs the pure
    merged loop regardless of this value.)
    """
    return "compiled" if _ACTIVE_RUN is not None else "pure"


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Force the dispatch-loop backend within a ``with`` block.

    ``use_backend("compiled")`` raises :class:`RuntimeError` when the
    extension is not built, so differential tests can assert they truly
    exercised both loops rather than silently comparing pure to pure.
    """
    global _ACTIVE_RUN
    if name not in ("pure", "compiled"):
        raise ValueError(f"backend must be 'pure' or 'compiled', got {name!r}")
    if name == "compiled" and _COMPILED_RUN is None:
        raise RuntimeError(
            "compiled engine requested but repro.simulator._speedups is not "
            "built (python setup.py build_ext --inplace)"
        )
    previous = _ACTIVE_RUN
    _ACTIVE_RUN = _COMPILED_RUN if name == "compiled" else None
    try:
        yield
    finally:
        _ACTIVE_RUN = previous


_WHEEL_WIDTH_ENV = os.environ.get("REPRO_TIMER_WHEEL")
try:
    _DEFAULT_WHEEL_WIDTH = float(_WHEEL_WIDTH_ENV) if _WHEEL_WIDTH_ENV else 0.0
except ValueError:
    raise ValueError(
        f"REPRO_TIMER_WHEEL must be a bucket width in seconds, "
        f"got {_WHEEL_WIDTH_ENV!r}"
    ) from None


class TimerWheel:
    """Calendar queue holding :class:`Timer` expiry entries.

    A dict of per-bucket heaps keyed by ``int(time / width)`` plus a
    lazily-pruned min-heap of bucket keys.  Push and pop are O(log b)
    in the *bucket* population rather than the total pending count, so
    ~10k concurrent timers churning (start/cancel per frame, as in the
    constellation regime) do not pay a log of the whole backlog per
    operation.  Entries are the engine's plain ``(time, sequence,
    callback, args)`` tuples; iteration order within a bucket heap is
    unspecified but pops are globally ordered by ``(time, sequence)``,
    matching the main heap's total order exactly.
    """

    __slots__ = ("width", "_buckets", "_keys", "_count")

    def __init__(self, width: float) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width!r}")
        self.width = width
        self._buckets: dict[int, list[tuple]] = {}
        self._keys: list[int] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, entry: tuple) -> None:
        key = int(entry[0] / self.width)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = bucket = []
            heappush(self._keys, key)
        heappush(bucket, entry)
        self._count += 1

    def _front(self) -> Optional[list[tuple]]:
        """The bucket heap holding the globally smallest entry.

        Prunes keys whose buckets have been emptied and deleted; a key
        re-populated after going stale appears twice in the key heap,
        which lazy deletion handles (the dict lookup is authoritative).
        """
        buckets = self._buckets
        keys = self._keys
        while keys:
            bucket = buckets.get(keys[0])
            if bucket is not None:
                return bucket
            heappop(keys)
        return None

    def peek(self) -> Optional[tuple]:
        bucket = self._front()
        return bucket[0] if bucket is not None else None

    def pop(self) -> tuple:
        bucket = self._front()
        if bucket is None:
            raise IndexError("pop from an empty TimerWheel")
        entry = heappop(bucket)
        if not bucket:
            del self._buckets[self._keys[0]]
        self._count -= 1
        return entry

    def entries(self) -> Iterator[tuple]:
        """Every pending entry, in no particular order (for compaction)."""
        for bucket in self._buckets.values():
            yield from bucket

    def rebuild(self, entries: list[tuple]) -> None:
        """Replace the wheel's contents (compaction support)."""
        self._buckets.clear()
        self._keys.clear()
        self._count = 0
        for entry in entries:
            self.push(entry)


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, and then calls back every waiter.
    Events may be waited on after they have fired; the waiter resumes
    immediately at the current simulation time.
    """

    __slots__ = ("sim", "_value", "_ok", "_fired", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = None
        self._ok: bool = True
        self._fired: bool = False
        self._callbacks: list[Callable[["Event"], None]] = []

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._fired

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        self._trigger(value, ok=True)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will raise it."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(exception, ok=False)
        return self

    def _trigger(self, value: Any, ok: bool) -> None:
        if self._fired:
            raise SimulationError("event already triggered")
        self._fired = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim.schedule(0.0, callback, self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback(event)*; runs now if already triggered."""
        if self._fired:
            self.sim.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)


class Timeout(Event):
    """An event that succeeds after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self._expire, value)

    def _expire(self, value: Any) -> None:
        self.succeed(value)


class Process(Event):
    """A running generator; itself an event that fires on completion.

    The generator yields :class:`Event` instances.  When a yielded event
    succeeds, the generator is resumed with the event's value; when it
    fails, the exception is thrown into the generator (and propagates,
    failing the process, unless caught).
    """

    __slots__ = ("generator",)

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        super().__init__(sim)
        self.generator = generator
        sim.schedule(0.0, self._resume, None, True)

    def _on_wait_done(self, event: Event) -> None:
        self._resume(event.value, event.ok)

    def _resume(self, value: Any, ok: bool) -> None:
        if self.triggered:
            # A stale wakeup: the process already finished (e.g. it was
            # interrupted out of the wait this event belonged to).
            return
        try:
            if ok:
                target = self.generator.send(value)
            else:
                target = self.generator.throw(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except StopSimulation:
            self.sim.stop()
            self.succeed(None)
            return
        except BaseException as exc:  # process died: fail the process event
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.generator.throw(
                SimulationError(f"process yielded a non-event: {target!r}")
            )
            return
        target.add_callback(self._on_wait_done)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        self.sim.schedule(0.0, self._resume, Interrupt(cause), False)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class AnyOf(Event):
    """Succeeds when the first of several events succeeds.

    The value is the triggering event itself, so callers can identify
    which condition fired.  Failure of any constituent fails the AnyOf.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event)
        else:
            self.fail(event.value)


class AllOf(Event):
    """Succeeds when every constituent event has succeeded.

    The value is the list of constituent values in construction order.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise ValueError("AllOf requires at least one event")
        self._remaining = len(self.events)
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self.events])


class Timer:
    """A restartable one-shot timer built on the event heap.

    Protocol state machines need timers that can be started, restarted
    (reset to a fresh timeout) and cancelled; this wrapper provides that
    via a generation counter: a cancelled or superseded expiry is simply
    ignored when it surfaces.  The engine dispatches timer entries
    inline (no Python call for a stale expiry) and batch-compacts the
    heap when dead timer entries start to dominate it, so heavy
    start/cancel churn costs neither per-cancel sweeps nor unbounded
    heap growth.
    """

    __slots__ = ("sim", "callback", "_generation", "_deadline", "_running")

    def __init__(self, sim: "Simulator", callback: Callable[[], None]) -> None:
        self.sim = sim
        self.callback = callback
        self._generation = 0
        self._deadline: Optional[float] = None
        self._running = False

    @property
    def running(self) -> bool:
        """True while an expiry is pending."""
        return self._running

    @property
    def deadline(self) -> Optional[float]:
        """Absolute expiry time, or None when stopped."""
        return self._deadline if self._running else None

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire *delay* from now."""
        if delay < 0:
            raise ValueError(f"negative timer delay: {delay!r}")
        if self._running:
            # The previous expiry's heap entry just became garbage.
            self.sim._note_stale_timer()
        self._generation += 1
        self._running = True
        self._deadline = self.sim.now + delay
        self.sim._schedule_timer(delay, self, self._generation)

    def restart(self, delay: float) -> None:
        """Alias of :meth:`start`; reads better at call sites that reset."""
        self.start(delay)

    def cancel(self) -> None:
        """Disarm the timer; a pending expiry becomes a no-op."""
        if self._running:
            self.sim._note_stale_timer()
        self._generation += 1
        self._running = False
        self._deadline = None


class Simulator:
    """The event loop: clock, heap, and process bookkeeping.

    :attr:`now` is a plain attribute (read it freely, never assign it
    from outside the engine); :attr:`event_count` counts dispatched
    events across all :meth:`run` calls.
    """

    # Batch-compaction thresholds: rebuild the heap once dead timer
    # entries both exceed this floor and outnumber live entries.
    _COMPACT_MIN_STALE = 64

    def __init__(self, timer_wheel_width: Optional[float] = None) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._sequence = 0
        self._stopped = False
        self._stale_timers = 0
        self.event_count = 0
        # Calendar-queue option for Timer expiries: None = default from
        # REPRO_TIMER_WHEEL (0/unset = disabled), 0 = explicitly off,
        # otherwise the bucket width in seconds.
        if timer_wheel_width is None:
            timer_wheel_width = _DEFAULT_WHEEL_WIDTH
        self._wheel: Optional[TimerWheel] = (
            TimerWheel(timer_wheel_width) if timer_wheel_width else None
        )

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args: Any,
                 _push=heappush) -> None:
        """Run ``callback(*args)`` at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        self._sequence = sequence = self._sequence + 1
        _push(self._heap, (self.now + delay, sequence, callback, args))

    def schedule_at(self, when: float, callback: Callable, *args: Any,
                    _push=heappush) -> None:
        """Run ``callback(*args)`` at absolute time *when*."""
        now = self.now
        if when < now:
            raise ValueError(
                f"cannot schedule into the past (delay={when - now!r})"
            )
        self._sequence = sequence = self._sequence + 1
        _push(self._heap, (when, sequence, callback, args))

    def _schedule_timer(self, delay: float, timer: Timer, generation: int,
                        _push=heappush) -> None:
        """Push a :class:`Timer` expiry entry (engine-dispatched inline)."""
        self._sequence = sequence = self._sequence + 1
        entry = (self.now + delay, sequence, _TIMER_EXPIRE, (timer, generation))
        if self._wheel is not None:
            self._wheel.push(entry)
        else:
            _push(self._heap, entry)

    def _note_stale_timer(self) -> None:
        """Account one orphaned timer entry; compact the heap in batch."""
        self._stale_timers += 1
        if (self._stale_timers >= self._COMPACT_MIN_STALE
                and self._stale_timers * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop every dead timer entry from the heap in one pass.

        Mutates the heap list in place (run loops hold a reference to
        it) and preserves the ``(time, sequence)`` dispatch order of
        every surviving entry exactly.
        """
        if self._wheel is not None:
            self._wheel.rebuild([
                entry for entry in self._wheel.entries()
                if entry[3][1] == entry[3][0]._generation and entry[3][0]._running
            ])
        live = [
            entry for entry in self._heap
            if entry[2] is not _TIMER_EXPIRE
            or (entry[3][1] == entry[3][0]._generation and entry[3][0]._running)
        ]
        heapify(live)
        self._heap[:] = live
        self._stale_timers = 0

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event succeeding *delay* seconds from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start a generator as a process; returns its completion event."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of *events* succeeds."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of *events* have succeeded."""
        return AllOf(self, events)

    def timer(self, callback: Callable[[], None]) -> Timer:
        """A restartable :class:`Timer` invoking *callback* on expiry."""
        return Timer(self, callback)

    # -- running ----------------------------------------------------------

    def stop(self) -> None:
        """Halt :meth:`run` after the current callback returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event heap.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time; the clock is then
            advanced exactly to *until* (events at ``t == until`` run).
        max_events:
            Safety valve for runaway simulations.

        Returns the final simulation time.
        """
        if self._wheel is not None:
            return self._run_with_wheel(until, max_events)
        run_loop = _ACTIVE_RUN
        if run_loop is not None:
            # The C port of exactly the loop below (see _speedups.c).
            return run_loop(self, until, max_events, _TIMER_EXPIRE,
                            SimulationError)
        self._stopped = False
        heap = self._heap  # _compact mutates in place, so this stays valid
        pop = heappop
        push = heappush
        timer_sentinel = _TIMER_EXPIRE
        bounded = until is not None
        limit = float("inf") if max_events is None else max_events
        processed = 0
        try:
            while heap and not self._stopped:
                entry = pop(heap)
                when = entry[0]
                if bounded and when > until:
                    # Past the horizon: put the entry back (rare — at most
                    # once per run call) and stop at exactly *until*.
                    push(heap, entry)
                    self.now = until
                    return until
                self.now = when
                callback = entry[2]
                if callback is timer_sentinel:
                    timer, generation = entry[3]
                    if generation == timer._generation and timer._running:
                        timer._running = False
                        timer._deadline = None
                        timer.callback()
                    else:
                        self._stale_timers -= 1
                else:
                    callback(*entry[3])
                processed += 1
                if processed >= limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (possible runaway simulation)"
                    )
        finally:
            self.event_count += processed
        if bounded and self.now < until:
            self.now = until
        return self.now

    def _run_with_wheel(self, until: Optional[float],
                        max_events: Optional[int]) -> float:
        """The dispatch loop merged with the calendar queue.

        Identical semantics to :meth:`run`: at each step the globally
        smallest ``(time, sequence)`` entry across the main heap and the
        timer wheel is dispatched, so interleaving with frame events is
        exactly what the single-heap loop would produce.
        """
        self._stopped = False
        heap = self._heap
        wheel = self._wheel
        pop = heappop
        push = heappush
        wheel_peek = wheel.peek
        wheel_pop = wheel.pop
        timer_sentinel = _TIMER_EXPIRE
        bounded = until is not None
        limit = float("inf") if max_events is None else max_events
        processed = 0
        try:
            while not self._stopped:
                wheel_entry = wheel_peek()
                if heap and (wheel_entry is None or heap[0] < wheel_entry):
                    entry = pop(heap)
                    from_wheel = False
                elif wheel_entry is not None:
                    entry = wheel_pop()
                    from_wheel = True
                else:
                    break
                when = entry[0]
                if bounded and when > until:
                    if from_wheel:
                        wheel.push(entry)
                    else:
                        push(heap, entry)
                    self.now = until
                    return until
                self.now = when
                callback = entry[2]
                if callback is timer_sentinel:
                    timer, generation = entry[3]
                    if generation == timer._generation and timer._running:
                        timer._running = False
                        timer._deadline = None
                        timer.callback()
                    else:
                        self._stale_timers -= 1
                else:
                    callback(*entry[3])
                processed += 1
                if processed >= limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (possible runaway simulation)"
                    )
        finally:
            self.event_count += processed
        if bounded and self.now < until:
            self.now = until
        return self.now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None if the heap is empty."""
        first = self._heap[0][0] if self._heap else None
        if self._wheel is not None:
            wheel_entry = self._wheel.peek()
            if wheel_entry is not None and (first is None or wheel_entry[0] < first):
                first = wheel_entry[0]
        return first

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pending = len(self._heap) + (len(self._wheel) if self._wheel else 0)
        return f"<Simulator t={self.now:.6f} pending={pending}>"

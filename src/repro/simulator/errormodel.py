"""Channel error models.

The paper's link model (Section 2.2) abstracts the laser inter-satellite
channel to a residual bit error rate after FEC, with two distinct error
processes (Section 2.1): *random* errors from optical noise and *burst*
errors from beam mispointing / tracking loss.  Assumption 9 makes all
errors detectable (CRC), so a model only needs to decide, per frame,
whether that frame is corrupted.

Three models are provided:

- :class:`PerfectChannel` — never corrupts (control case).
- :class:`BernoulliChannel` — i.i.d. bit errors at a fixed BER;
  a frame of ``n`` bits is corrupted with probability ``1-(1-BER)^n``.
- :class:`GilbertElliottChannel` — the standard two-state continuous-
  time burst model: a Good state with low BER and a Bad state (burst)
  with high BER, exponential sojourn times.  This realises the paper's
  burst errors from mispointing, with the mean burst length
  ``L_burst`` that the cumulative-NAK condition
  ``C_depth * W_cp > L_burst`` (Section 3.3) refers to.
"""

from __future__ import annotations

import inspect
import math
from typing import Any, Callable, Mapping, Optional, Protocol, Union

import numpy as np

__all__ = [
    "ErrorModel",
    "ErrorModelSpec",
    "PerfectChannel",
    "BernoulliChannel",
    "GilbertElliottChannel",
    "available_error_models",
    "error_model_factory",
    "frame_error_probability",
    "make_error_model",
    "register_error_model",
    "resolve_error_model",
    "resolve_link_error_models",
    "scalar_draw_window",
]


def frame_error_probability(ber: float, bits: int) -> float:
    """Probability that an *bits*-bit frame suffers at least one bit error.

    Computed in log space to stay accurate for tiny BERs and long frames:
    ``1 - (1-ber)^bits = -expm1(bits * log1p(-ber))``.
    """
    if not 0.0 <= ber <= 1.0:
        raise ValueError(f"BER must be in [0, 1], got {ber!r}")
    if bits < 0:
        raise ValueError(f"negative frame length: {bits!r}")
    if ber == 0.0 or bits == 0:
        return 0.0
    if ber == 1.0:
        return 1.0
    return -math.expm1(bits * math.log1p(-ber))


class ErrorModel(Protocol):
    """Decides per-frame corruption for one channel direction.

    Models may additionally implement the bulk API::

        draw_window(starts, sizes, rng) -> list[bool]

    returning the corruption verdict for each of a FIFO window of frames
    (frame *i* starts at ``starts[i]`` and spans ``sizes[i]`` bits).  The
    bulk path is an optimisation, never a semantic change: it must
    consume exactly the same RNG variates in exactly the same order as
    ``len(sizes)`` successive :meth:`frame_error` calls, so batched and
    scalar runs stay bit-identical (enforced for every registered model
    by ``tests/test_draw_window.py``).  Callers fall back to
    :func:`scalar_draw_window` when the method is absent.
    """

    def frame_error(self, start: float, bits: int, rng: np.random.Generator) -> bool:
        """True if a frame of *bits* bits transmitted at *start* is corrupted.

        *start* is the simulation time the first bit enters the channel;
        models with memory (bursts) use it to evolve their state.
        """
        ...


def scalar_draw_window(
    model: "ErrorModel",
    starts: "list[float]",
    sizes: "list[int]",
    rng: np.random.Generator,
) -> "list[bool]":
    """Reference ``draw_window``: n scalar :meth:`frame_error` calls.

    The fallback for models that predate the bulk API — and, by
    definition, the oracle every native ``draw_window`` must match.
    """
    frame_error = model.frame_error
    return [
        frame_error(start, bits, rng) for start, bits in zip(starts, sizes)
    ]


class PerfectChannel:
    """Error-free channel: every frame arrives intact."""

    def frame_error(self, start: float, bits: int, rng: np.random.Generator) -> bool:
        return False

    def draw_window(
        self,
        starts: "list[float]",
        sizes: "list[int]",
        rng: np.random.Generator,
    ) -> "list[bool]":
        return [False] * len(sizes)

    def __repr__(self) -> str:
        return "PerfectChannel()"


class BernoulliChannel:
    """Memoryless random-error channel at a fixed bit error rate."""

    def __init__(self, ber: float) -> None:
        if not 0.0 <= ber <= 1.0:
            raise ValueError(f"BER must be in [0, 1], got {ber!r}")
        self.ber = ber
        # Per-frame-length cache of frame_error_probability: traffic uses
        # a handful of distinct frame sizes, while the expm1/log1p pair is
        # measurably hot when evaluated per frame.
        self._prob_by_bits: dict[int, float] = {}
        # Buffered uniform draws, kept PER GENERATOR.  Generator.random(n)
        # produces exactly the same double sequence as n scalar random()
        # calls, so draw k still sees the k-th variate of the stream —
        # bit-identical results, minus the per-call numpy dispatch
        # overhead.  A single-slot buffer keyed on the last generator
        # would be invalidated on every call when one instance serves two
        # per-direction streams (burning 512 variates per frame and
        # diverging from the scalar reference), so each generator gets
        # its own ``[rng, index, buffer]`` entry.  A channel direction
        # uses one generator, so the list holds at most a few entries.
        self._draws: list[list] = []

    def frame_error(self, start: float, bits: int, rng: np.random.Generator) -> bool:
        probability = self._prob_by_bits.get(bits)
        if probability is None:
            probability = self._prob_by_bits[bits] = frame_error_probability(
                self.ber, bits
            )
        # Zero-probability frames must not consume an RNG draw (keeps the
        # random sequence identical to a PerfectChannel run).
        if probability == 0.0:
            return False
        for entry in self._draws:
            if entry[0] is rng:
                break
        else:
            entry = [rng, 0, rng.random(512)]
            self._draws.append(entry)
        index = entry[1]
        if index >= 512:
            entry[2] = rng.random(512)
            index = 0
        entry[1] = index + 1
        return entry[2].item(index) < probability

    def draw_window(
        self,
        starts: "list[float]",
        sizes: "list[int]",
        rng: np.random.Generator,
    ) -> "list[bool]":
        """Bulk verdicts for a FIFO window, bit-identical to scalar draws.

        Variates come from the same per-generator buffer as
        :meth:`frame_error`, consumed in the same order; the only
        difference is that the threshold compare runs as one (or a few)
        numpy slice operations instead of ``n`` ``.item()`` calls.
        Zero-probability frames consume no draw, exactly as in the
        scalar path.
        """
        prob_get = self._prob_by_bits.get
        probabilities = []
        drawing = 0
        for bits in sizes:
            probability = prob_get(bits)
            if probability is None:
                probability = self._prob_by_bits[bits] = frame_error_probability(
                    self.ber, bits
                )
            probabilities.append(probability)
            if probability > 0.0:
                drawing += 1
        n = len(probabilities)
        if not drawing:
            return [False] * n
        for entry in self._draws:
            if entry[0] is rng:
                break
        else:
            entry = [rng, 0, rng.random(512)]
            self._draws.append(entry)
        index = entry[1]
        buffer = entry[2]
        # Dominant case: every frame in the window draws at the same
        # probability (equal-size I-frames) — compare whole buffer
        # slices against one threshold.
        first = probabilities[0]
        if drawing == n and all(p == first for p in probabilities):
            verdicts: list[bool] = []
            remaining = n
            while remaining:
                if index >= 512:
                    buffer = entry[2] = rng.random(512)
                    index = 0
                take = min(remaining, 512 - index)
                verdicts.extend(
                    (buffer[index : index + take] < first).tolist()
                )
                index += take
                remaining -= take
            entry[1] = index
            return verdicts
        # Mixed window: per-frame consumption, skipping p == 0 frames.
        verdicts = [False] * n
        for i, probability in enumerate(probabilities):
            if probability == 0.0:
                continue
            if index >= 512:
                buffer = entry[2] = rng.random(512)
                index = 0
            verdicts[i] = buffer.item(index) < probability
            index += 1
        entry[1] = index
        return verdicts

    def __repr__(self) -> str:
        return f"BernoulliChannel(ber={self.ber:g})"


class GilbertElliottChannel:
    """Two-state Gilbert–Elliott burst-error channel.

    The channel alternates between a *Good* state (BER ``good_ber``) and
    a *Bad* / burst state (BER ``bad_ber``), with exponentially
    distributed sojourn times of means ``mean_good`` and ``mean_bad``
    seconds.  A frame spanning ``[start, start + bits/rate]`` sees each
    state for some fraction of its bits; the frame survives only if no
    bit errors occur under either state's BER.

    The state trajectory is sampled lazily and deterministically from
    the supplied RNG, so one channel instance must always be driven with
    the same generator and with non-decreasing *start* times (links
    transmit FIFO, so this holds by construction for a single channel
    direction).  Sharing one instance across directions interleaves
    non-monotonic times and silently corrupts the state trajectory, so
    :meth:`frame_error` rejects any time regression with a
    :class:`ValueError` — use one instance per direction (what
    :func:`resolve_link_error_models` arranges).

    Parameters
    ----------
    good_ber, bad_ber:
        Residual BER in each state.
    mean_good, mean_bad:
        Mean sojourn seconds; ``mean_bad`` is the paper's mean burst
        length ``L_burst`` expressed in time.
    bit_rate:
        Channel rate in bits/second; converts a frame's bit count into
        the time span it occupies on the channel.
    """

    def __init__(
        self,
        good_ber: float,
        bad_ber: float,
        mean_good: float,
        mean_bad: float,
        bit_rate: float,
    ) -> None:
        for name, value in (("good_ber", good_ber), ("bad_ber", bad_ber)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if mean_good <= 0 or mean_bad <= 0:
            raise ValueError("state sojourn means must be positive")
        if bit_rate <= 0:
            raise ValueError("bit_rate must be positive")
        self.good_ber = good_ber
        self.bad_ber = bad_ber
        self.mean_good = mean_good
        self.mean_bad = mean_bad
        self.bit_rate = bit_rate
        self._in_bad = False
        self._state_until = 0.0
        self._initialised = False
        self._last_start = -math.inf

    @property
    def steady_state_bad_fraction(self) -> float:
        """Long-run fraction of time spent in the burst state."""
        return self.mean_bad / (self.mean_good + self.mean_bad)

    def _advance_to(self, time: float, rng: np.random.Generator) -> None:
        """Evolve the state machine so that ``_state_until > time``."""
        if not self._initialised:
            # Start in steady state: random initial phase.
            self._in_bad = bool(rng.random() < self.steady_state_bad_fraction)
            mean = self.mean_bad if self._in_bad else self.mean_good
            self._state_until = rng.exponential(mean)
            self._initialised = True
        while self._state_until <= time:
            self._in_bad = not self._in_bad
            mean = self.mean_bad if self._in_bad else self.mean_good
            self._state_until += rng.exponential(mean)

    def frame_error(self, start: float, bits: int, rng: np.random.Generator) -> bool:
        if start < self._last_start:
            raise ValueError(
                f"time went backwards in GilbertElliottChannel.frame_error "
                f"({start!r} < {self._last_start!r}); the state trajectory "
                f"assumes FIFO frame times — use one instance per channel "
                f"direction"
            )
        self._last_start = start
        if bits == 0:
            return False
        duration = bits / self.bit_rate
        end = start + duration
        self._advance_to(start, rng)
        # Walk the state intervals overlapped by the frame, accumulating
        # log-survival per segment.
        log_survival = 0.0
        cursor = start
        while cursor < end:
            self._advance_to(cursor, rng)
            segment_end = min(self._state_until, end)
            segment_bits = (segment_end - cursor) / duration * bits
            ber = self.bad_ber if self._in_bad else self.good_ber
            if ber >= 1.0:
                return True
            if ber > 0.0:
                log_survival += segment_bits * math.log1p(-ber)
            if segment_end >= end:
                break
            cursor = segment_end
        probability = -math.expm1(log_survival)
        if probability <= 0.0:
            return False
        return bool(rng.random() < probability)

    def draw_window(
        self,
        starts: "list[float]",
        sizes: "list[int]",
        rng: np.random.Generator,
    ) -> "list[bool]":
        """Bulk verdicts, bit-identical to scalar draws by construction.

        The state trajectory interleaves ``rng.exponential`` sojourn
        draws with the per-frame acceptance draw, and which draws happen
        depends on the state reached so far — so there is no variate
        reordering that keeps the stream identical.  The window
        therefore steps frames in order with the scalar kernel; the
        saving is the per-frame call overhead above this method, not the
        draws themselves.
        """
        frame_error = self.frame_error
        return [
            frame_error(start, bits, rng) for start, bits in zip(starts, sizes)
        ]

    def __repr__(self) -> str:
        return (
            f"GilbertElliottChannel(good_ber={self.good_ber:g}, "
            f"bad_ber={self.bad_ber:g}, mean_good={self.mean_good:g}, "
            f"mean_bad={self.mean_bad:g})"
        )


# ---------------------------------------------------------------------------
# The error-model registry
# ---------------------------------------------------------------------------

ErrorModelSpec = Union[
    "ErrorModel", str, tuple, Mapping[str, Any], None
]
"""Anything :func:`resolve_error_model` accepts: a ready instance, a
registered name (``"perfect"``, ``"bernoulli"``, ``"gilbert-elliott"``),
a ``(name, kwargs)`` pair, a ``{"model": name, **kwargs}`` mapping, or
``None`` (pick from the link's BER)."""


_ERROR_MODELS: dict[str, Callable[..., ErrorModel]] = {}


def register_error_model(name: str, factory: Optional[Callable[..., ErrorModel]] = None):
    """Register *factory* under *name*; usable as a decorator.

    Mirrors the protocol-alias registry of :mod:`repro.core.endpoint`:
    third-party models plug in with one call and are immediately
    constructible by name from :class:`~repro.workloads.scenarios.LinkScenario`,
    :func:`repro.api.build_simulation`, and the fault layer.
    """

    def _register(fn: Callable[..., ErrorModel]) -> Callable[..., ErrorModel]:
        _ERROR_MODELS[name.lower()] = fn
        return fn

    return _register(factory) if factory is not None else _register


def available_error_models() -> list[str]:
    """Every registered error-model name (sorted)."""
    return sorted(_ERROR_MODELS)


def error_model_factory(name: str) -> Callable[..., ErrorModel]:
    """The factory registered under *name* (case-insensitive)."""
    try:
        return _ERROR_MODELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown error model {name!r} "
            f"(use one of: {', '.join(available_error_models())})"
        ) from None


# Accepted-parameter sets per factory, computed once: ConstellationBuilder
# resolves models for every link of a constellation, and re-running
# inspect.signature per link is measurably hot at 1000 links.
_FACTORY_ACCEPTS: dict[Callable[..., ErrorModel], tuple[frozenset, bool]] = {}


def _factory_accepts(factory: Callable[..., ErrorModel]) -> tuple[frozenset, bool]:
    """``(keyword-parameter names, accepts **kwargs)`` for *factory*, cached."""
    try:
        return _FACTORY_ACCEPTS[factory]
    except KeyError:
        pass
    parameters = inspect.signature(factory).parameters.values()
    names = frozenset(
        p.name
        for p in parameters
        if p.kind
        in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    )
    var_keyword = any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters)
    result = _FACTORY_ACCEPTS[factory] = (names, var_keyword)
    return result


def make_error_model(
    name: str,
    context: Optional[Mapping[str, Any]] = None,
    **kwargs: Any,
) -> ErrorModel:
    """Build the registered model *name* from keyword arguments.

    *context* supplies defaults for constructor parameters the caller
    did not pass explicitly — the link layer uses it to thread its own
    ``ber`` and ``bit_rate`` into whichever model a scenario names, so
    ``make_error_model("bernoulli", {"ber": 1e-6})`` and
    ``make_error_model("gilbert-elliott", {"bit_rate": 3e8}, ...)`` both
    work without the caller knowing each model's signature.  A factory
    taking ``**kwargs`` receives every non-``None`` context entry.
    """
    factory = error_model_factory(name)
    if context:
        accepted, var_keyword = _factory_accepts(factory)
        for key, value in context.items():
            if (
                (var_keyword or key in accepted)
                and key not in kwargs
                and value is not None
            ):
                kwargs[key] = value
    return factory(**kwargs)


def resolve_error_model(
    spec: ErrorModelSpec,
    *,
    ber: float = 0.0,
    bit_rate: Optional[float] = None,
    context: Optional[Mapping[str, Any]] = None,
) -> ErrorModel:
    """Turn any :data:`ErrorModelSpec` into a live :class:`ErrorModel`.

    ``None`` keeps the historical default — Bernoulli at *ber* when the
    BER is nonzero, perfect otherwise — so every existing call site is a
    degenerate case of the registry.  *context* entries are merged over
    the ``ber``/``bit_rate`` defaults and offered to the factory the
    same way (the topology layer uses this to thread a link's orbital
    ``geometry`` into models that can use it).
    """
    if spec is None:
        return BernoulliChannel(ber) if ber else PerfectChannel()
    if isinstance(spec, str):
        name, kwargs = spec, {}
    elif isinstance(spec, Mapping):
        kwargs = dict(spec)
        try:
            name = kwargs.pop("model")
        except KeyError:
            raise ValueError(
                f"error-model mapping needs a 'model' key: {spec!r}"
            ) from None
    elif isinstance(spec, tuple):
        if len(spec) != 2:
            raise ValueError(f"error-model tuple must be (name, kwargs): {spec!r}")
        name, params = spec
        # The second element must be mapping-shaped: a Mapping proper or
        # an iterable of (key, value) pairs (the frozen chaos episode
        # specs use nested pair-tuples).  Anything else used to surface
        # as a confusing TypeError deep inside dict().
        if isinstance(params, Mapping):
            kwargs = dict(params)
        elif isinstance(params, str) or not hasattr(params, "__iter__"):
            raise ValueError(
                f"error-model tuple must be (name, kwargs) with a mapping "
                f"(or key/value pairs) second element, "
                f"got {type(params).__name__}: {spec!r}"
            )
        else:
            try:
                kwargs = dict(params)
            except (TypeError, ValueError):
                raise ValueError(
                    f"error-model tuple must be (name, kwargs) with a mapping "
                    f"(or key/value pairs) second element: {spec!r}"
                ) from None
    else:
        # Already a model instance (anything with frame_error).
        if not hasattr(spec, "frame_error"):
            raise TypeError(f"not an error-model spec: {spec!r}")
        return spec
    merged: dict[str, Any] = {"ber": ber, "bit_rate": bit_rate}
    if context:
        merged.update(context)
    return make_error_model(name, merged, **kwargs)


def _is_model_instance(spec: ErrorModelSpec) -> bool:
    """True when *spec* is already a live model rather than a recipe."""
    return not (spec is None or isinstance(spec, (str, tuple, Mapping)))


def resolve_link_error_models(
    *,
    iframe: ErrorModelSpec = None,
    cframe: ErrorModelSpec = None,
    reverse_iframe: ErrorModelSpec = None,
    reverse_cframe: ErrorModelSpec = None,
    iframe_ber: float = 0.0,
    cframe_ber: float = 0.0,
    reverse_iframe_ber: Optional[float] = None,
    reverse_cframe_ber: Optional[float] = None,
    bit_rate: Optional[float] = None,
    context: Optional[Mapping[str, Any]] = None,
) -> tuple[ErrorModel, ErrorModel, Optional[ErrorModel], Optional[ErrorModel]]:
    """Resolve the four per-direction models of one full-duplex link.

    Returns ``(iframe, cframe, reverse_iframe, reverse_cframe)`` ready
    for :class:`~repro.simulator.link.FullDuplexLink`.  Reverse specs
    and BERs default to the forward ones, giving the historical
    symmetric link; setting either independently realises an asymmetric
    feedback channel (checkpoint/NAK loss decoupled from forward BER).

    Constructible specs (name / tuple / mapping / ``None``) always
    yield a FRESH instance per direction: stateful models
    (Gilbert–Elliott, trace replay) must never be driven by two RNG
    streams at interleaved times.  A reverse entry is ``None`` — "share
    the forward instance", the legacy behaviour — only when the forward
    spec is already a live instance and nothing overrides the reverse
    direction.
    """
    fwd_iframe = resolve_error_model(
        iframe, ber=iframe_ber, bit_rate=bit_rate, context=context
    )
    fwd_cframe = resolve_error_model(
        cframe, ber=cframe_ber, bit_rate=bit_rate, context=context
    )

    def _reverse(forward_spec, reverse_spec, forward_ber, reverse_ber):
        if (
            reverse_spec is None
            and reverse_ber is None
            and _is_model_instance(forward_spec)
        ):
            return None  # legacy: FullDuplexLink shares the forward instance
        spec = reverse_spec if reverse_spec is not None else forward_spec
        direction_ber = reverse_ber if reverse_ber is not None else forward_ber
        return resolve_error_model(
            spec, ber=direction_ber, bit_rate=bit_rate, context=context
        )

    return (
        fwd_iframe,
        fwd_cframe,
        _reverse(iframe, reverse_iframe, iframe_ber, reverse_iframe_ber),
        _reverse(cframe, reverse_cframe, cframe_ber, reverse_cframe_ber),
    )


register_error_model("perfect", PerfectChannel)
register_error_model("bernoulli", BernoulliChannel)
register_error_model("gilbert-elliott", GilbertElliottChannel)

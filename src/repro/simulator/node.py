"""Satellite node: the container tying DLC endpoints to a network layer.

A :class:`Node` models one satellite acting as a store-and-forward DCE
(paper Section 2.1, property 1).  It owns any number of DLC endpoints
(one per attached link) and a *network layer* object that receives
packets delivered upward by those endpoints and decides whether to
consume them locally or queue them on another link's sending buffer
(assumption 3 of the link model).

The node is deliberately protocol-agnostic: LAMS-DLC and SR-HDLC
endpoints both plug in through the same two-method contract.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

from .engine import Simulator
from .trace import Tracer

__all__ = ["DlcEndpoint", "NetworkLayer", "Node", "PacketSink"]


class DlcEndpoint(Protocol):
    """What a node expects of a data-link endpoint."""

    def accept(self, packet: Any) -> bool:
        """Offer a packet for transmission; False if refused (no space)."""
        ...


class NetworkLayer(Protocol):
    """What a node expects of its network layer."""

    def on_packet(self, packet: Any, from_link: str) -> None:
        """A packet was delivered upward by the DLC on link *from_link*."""
        ...

    def on_link_failure(self, link_name: str) -> None:
        """The DLC declared link *link_name* failed."""
        ...


class PacketSink:
    """A trivial network layer that just collects delivered packets.

    Useful as the destination in single-link experiments: records each
    packet with its delivery time so tests can assert zero loss, count
    duplicates, and measure delay.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.packets: list[Any] = []
        self.delivery_times: list[float] = []
        self.failures: list[str] = []

    def on_packet(self, packet: Any, from_link: str) -> None:
        self.packets.append(packet)
        self.delivery_times.append(self.sim.now)

    def on_link_failure(self, link_name: str) -> None:
        self.failures.append(link_name)

    def __len__(self) -> int:
        return len(self.packets)


class Node:
    """One satellite: named endpoints plus a network layer."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        network_layer: Optional[NetworkLayer] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        # Explicit None check: a PacketSink with zero packets is falsy
        # (it defines __len__), so `or` would wrongly replace it.
        self.network_layer: NetworkLayer = (
            network_layer if network_layer is not None else PacketSink(sim)
        )
        self.tracer = tracer or Tracer()
        self.endpoints: dict[str, DlcEndpoint] = {}

    def attach_endpoint(self, link_name: str, endpoint: DlcEndpoint) -> None:
        """Register the DLC endpoint serving link *link_name*."""
        if link_name in self.endpoints:
            raise ValueError(f"link {link_name!r} already has an endpoint")
        self.endpoints[link_name] = endpoint

    def deliver_up(self, packet: Any, from_link: str) -> None:
        """Called by an endpoint when a packet is handed to the network layer."""
        self.tracer.emit(self.sim.now, self.name, "deliver_up", link=from_link)
        self.network_layer.on_packet(packet, from_link)

    def report_link_failure(self, link_name: str) -> None:
        """Called by an endpoint that has declared its link failed."""
        self.tracer.emit(self.sim.now, self.name, "link_failure", link=link_name)
        self.network_layer.on_link_failure(link_name)

    def send(self, packet: Any, via_link: str) -> bool:
        """Queue *packet* on the endpoint serving *via_link*."""
        endpoint = self.endpoints.get(via_link)
        if endpoint is None:
            raise KeyError(f"node {self.name!r} has no endpoint for link {via_link!r}")
        return endpoint.accept(packet)

    def __repr__(self) -> str:
        return f"<Node {self.name} links={sorted(self.endpoints)}>"

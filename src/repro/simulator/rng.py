"""Deterministic named random-number streams.

Every stochastic component of the simulation (each channel direction,
each traffic source) draws from its own named stream so that changing
one component's consumption pattern does not perturb the others — the
standard "common random numbers" discipline for comparable experiments.

Streams are derived from a single experiment seed plus a stable string
name, via :func:`numpy.random.SeedSequence` spawning.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["StreamRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """A stable 32-bit child seed for *name* under *master_seed*.

    Uses CRC-32 of the name mixed into the master seed; stable across
    Python runs and platforms (unlike ``hash``).
    """
    return (master_seed ^ zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF


class StreamRegistry:
    """Factory handing out independent ``numpy`` generators by name.

    >>> streams = StreamRegistry(seed=42)
    >>> a = streams.get("link.forward")
    >>> b = streams.get("link.reverse")
    >>> a is streams.get("link.forward")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The generator for *name*, created on first use."""
        generator = self._streams.get(name)
        if generator is None:
            child = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(derive_seed(self.seed, name),)
            )
            generator = np.random.Generator(np.random.PCG64(child))
            self._streams[name] = generator
        return generator

    def names(self) -> list[str]:
        """Names of all streams created so far (sorted)."""
        return sorted(self._streams)

    def reset(self) -> None:
        """Drop all streams; subsequent gets recreate them from scratch."""
        self._streams.clear()

"""Structured event tracing and statistics collection.

Protocol endpoints and links emit trace records through a shared
:class:`Tracer`.  Traces serve two purposes: debugging (a readable
timeline of what each endpoint did) and measurement (counters and
time-series the experiment harness aggregates into the paper's
metrics: throughput efficiency, holding time, buffer occupancy, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = ["TraceRecord", "Tracer", "Counter", "TimeWeightedStat", "SampleStat"]


@dataclass(frozen=True)
class TraceRecord:
    """One timeline entry: *who* did *what* at *when*, with detail."""

    time: float
    source: str
    event: str
    detail: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Human-readable one-line rendering."""
        detail = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"{self.time:12.6f}  {self.source:<16} {self.event:<24} {detail}"


class Counter:
    """A named monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, by: int = 1) -> None:
        self.value += by

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class SampleStat:
    """Streaming mean/variance/min/max over point samples (Welford)."""

    __slots__ = ("name", "count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, sample: float) -> None:
        self.count += 1
        delta = sample - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (sample - self._mean)
        if sample < self.minimum:
            self.minimum = sample
        if sample > self.maximum:
            self.maximum = sample

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); nan below two samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def stdev(self) -> float:
        variance = self.variance
        return math.sqrt(variance) if variance == variance else math.nan

    def __repr__(self) -> str:
        return f"SampleStat({self.name}: n={self.count} mean={self.mean:.6g})"


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal.

    Used for buffer occupancy: call :meth:`update` whenever the level
    changes; the average weights each level by how long it was held.
    """

    __slots__ = ("name", "_level", "_last_time", "_area", "_start", "maximum")

    def __init__(self, name: str, start_time: float = 0.0, level: float = 0.0) -> None:
        self.name = name
        self._level = level
        self._last_time = start_time
        self._start = start_time
        self._area = 0.0
        self.maximum = level

    @property
    def level(self) -> float:
        return self._level

    def update(self, now: float, level: float) -> None:
        """Record that the signal changed to *level* at time *now*."""
        if now < self._last_time:
            raise ValueError("time went backwards in TimeWeightedStat.update")
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level
        if level > self.maximum:
            self.maximum = level

    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean from start through *now* (default: last update)."""
        end = self._last_time if now is None else now
        if end < self._last_time:
            raise ValueError("query time precedes last update")
        span = end - self._start
        if span <= 0:
            return self._level
        area = self._area + self._level * (end - self._last_time)
        return area / span


class Tracer:
    """Collects trace records, counters, and statistics for one run.

    Recording full timelines is expensive for long runs, so timeline
    capture is off by default; counters and stats are always live.
    A *listener* callback can be attached to stream records (used by
    tests asserting on protocol behaviour).
    """

    def __init__(self, record_timeline: bool = False) -> None:
        self.record_timeline = record_timeline
        self.records: list[TraceRecord] = []
        self.counters: dict[str, Counter] = {}
        self.samples: dict[str, SampleStat] = {}
        self.levels: dict[str, TimeWeightedStat] = {}
        self.listeners: list[Callable[[TraceRecord], None]] = []

    # -- timeline --------------------------------------------------------

    def emit(self, time: float, source: str, event: str, **detail: Any) -> None:
        """Record a timeline event (and notify listeners)."""
        if not self.record_timeline and not self.listeners:
            return
        record = TraceRecord(time=time, source=source, event=event, detail=detail)
        if self.record_timeline:
            self.records.append(record)
        for listener in self.listeners:
            listener(record)

    def timeline(self, source: Optional[str] = None, event: Optional[str] = None) -> list[TraceRecord]:
        """Filtered view of the recorded timeline."""
        result = self.records
        if source is not None:
            result = [r for r in result if r.source == source]
        if event is not None:
            result = [r for r in result if r.event == event]
        return list(result)

    def format_timeline(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        """The timeline as a printable block of text."""
        chosen = self.records if records is None else records
        return "\n".join(record.format() for record in chosen)

    # -- metrics ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def count(self, name: str, by: int = 1) -> None:
        """Shorthand: increment counter *name*."""
        self.counter(name).increment(by)

    def sample(self, name: str, value: float) -> None:
        """Shorthand: add a point sample to stat *name*."""
        stat = self.samples.get(name)
        if stat is None:
            stat = self.samples[name] = SampleStat(name)
        stat.add(value)

    def level(self, name: str, now: float, value: float) -> None:
        """Shorthand: piecewise-constant signal *name* changed to *value*."""
        stat = self.levels.get(name)
        if stat is None:
            stat = self.levels[name] = TimeWeightedStat(name, start_time=now)
        stat.update(now, value)

    def value(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        counter = self.counters.get(name)
        return counter.value if counter else 0

    def summary(self) -> dict[str, Any]:
        """All metrics as one flat dictionary (for reports and tests)."""
        result: dict[str, Any] = {}
        for name, counter in sorted(self.counters.items()):
            result[name] = counter.value
        for name, stat in sorted(self.samples.items()):
            result[f"{name}.mean"] = stat.mean
            result[f"{name}.count"] = stat.count
        for name, stat in sorted(self.levels.items()):
            result[f"{name}.avg"] = stat.mean()
            result[f"{name}.max"] = stat.maximum
        return result

"""Structured event tracing and statistics collection.

Protocol endpoints and links emit trace records through a shared
:class:`Tracer`.  Traces serve two purposes: debugging (a readable
timeline of what each endpoint did) and measurement (counters and
time-series the experiment harness aggregates into the paper's
metrics: throughput efficiency, holding time, buffer occupancy, ...).

Hot-path design notes
---------------------
Timeline capture is the expensive part (one :class:`TraceRecord` plus a
detail dict per event), so a :class:`Tracer` maintains a precomputed
:attr:`Tracer.active` flag — true only while a timeline is being
recorded or at least one listener is attached.  The flag is kept honest
automatically: assigning :attr:`Tracer.record_timeline` or mutating
:attr:`Tracer.listeners` (which is how
:func:`repro.invariants.harness.attach_monitors` subscribes its
monitors) refreshes it.  Hot emit sites check ``tracer.active`` *before*
building their keyword arguments, which makes tracing near-zero-cost
for unmonitored runs; counters and stats are always live regardless.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = ["TraceRecord", "Tracer", "Counter", "TimeWeightedStat", "SampleStat"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One timeline entry: *who* did *what* at *when*, with detail."""

    time: float
    source: str
    event: str
    detail: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Human-readable one-line rendering."""
        detail = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"{self.time:12.6f}  {self.source:<16} {self.event:<24} {detail}"


class Counter:
    """A named monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, by: int = 1) -> None:
        self.value += by

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class SampleStat:
    """Streaming mean/variance/min/max over point samples (Welford)."""

    __slots__ = ("name", "count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, sample: float) -> None:
        self.count += 1
        delta = sample - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (sample - self._mean)
        if sample < self.minimum:
            self.minimum = sample
        if sample > self.maximum:
            self.maximum = sample

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 below two samples.

        A single observation (or none) carries no spread information, so
        the spread is reported as exactly zero rather than dividing by
        ``n - 1 = 0`` or poisoning downstream confidence intervals with
        NaN.
        """
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        # Welford's m2 is non-negative in exact arithmetic; clamp the
        # tiny negatives float cancellation can produce.
        return math.sqrt(max(0.0, self.variance))

    def __repr__(self) -> str:
        return f"SampleStat({self.name}: n={self.count} mean={self.mean:.6g})"


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal.

    Used for buffer occupancy: call :meth:`update` whenever the level
    changes; the average weights each level by how long it was held.

    Time must be non-decreasing: an :meth:`update` (or :meth:`mean`
    query) earlier than the last recorded time is rejected with
    :class:`ValueError` rather than silently accumulating negative
    time-weight into the running area.
    """

    __slots__ = ("name", "_level", "_last_time", "_area", "_start", "maximum")

    def __init__(self, name: str, start_time: float = 0.0, level: float = 0.0) -> None:
        self.name = name
        self._level = level
        self._last_time = start_time
        self._start = start_time
        self._area = 0.0
        self.maximum = level

    @property
    def level(self) -> float:
        return self._level

    def update(self, now: float, level: float) -> None:
        """Record that the signal changed to *level* at time *now*."""
        last = self._last_time
        if now < last:
            raise ValueError(
                f"time went backwards in TimeWeightedStat.update "
                f"({now!r} < {last!r})"
            )
        self._area += self._level * (now - last)
        self._last_time = now
        self._level = level
        if level > self.maximum:
            self.maximum = level

    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean from start through *now* (default: last update)."""
        end = self._last_time if now is None else now
        if end < self._last_time:
            raise ValueError("query time precedes last update")
        span = end - self._start
        if span <= 0:
            return self._level
        area = self._area + self._level * (end - self._last_time)
        return area / span


class _ListenerList(list):
    """Listener callbacks that keep the owning tracer's fast path honest.

    Call sites throughout the codebase (and tests) mutate
    ``tracer.listeners`` directly via ``append``/``remove``; every
    mutation refreshes :attr:`Tracer.active` so a listener attached
    mid-run immediately re-enables record construction.
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer") -> None:
        super().__init__()
        self._tracer = tracer

    def append(self, item: Any) -> None:
        super().append(item)
        self._tracer._refresh_active()

    def extend(self, items: Iterable[Any]) -> None:
        super().extend(items)
        self._tracer._refresh_active()

    def insert(self, index: int, item: Any) -> None:
        super().insert(index, item)
        self._tracer._refresh_active()

    def remove(self, item: Any) -> None:
        super().remove(item)
        self._tracer._refresh_active()

    def pop(self, index: int = -1) -> Any:
        item = super().pop(index)
        self._tracer._refresh_active()
        return item

    def clear(self) -> None:
        super().clear()
        self._tracer._refresh_active()

    def __delitem__(self, index) -> None:
        super().__delitem__(index)
        self._tracer._refresh_active()

    def __iadd__(self, items: Iterable[Any]) -> "_ListenerList":
        self.extend(items)
        return self


class Tracer:
    """Collects trace records, counters, and statistics for one run.

    Recording full timelines is expensive for long runs, so timeline
    capture is off by default; counters and stats are always live.
    A *listener* callback can be attached to stream records (used by
    tests asserting on protocol behaviour and by the invariant
    monitors).  :attr:`active` is the precomputed fast-path flag: hot
    emitters may skip :meth:`emit` (and the keyword-dict construction
    it implies) entirely while it is False.
    """

    def __init__(self, record_timeline: bool = False) -> None:
        self._record_timeline = bool(record_timeline)
        self.records: list[TraceRecord] = []
        self.counters: dict[str, Counter] = {}
        self.samples: dict[str, SampleStat] = {}
        self.levels: dict[str, TimeWeightedStat] = {}
        self.listeners: _ListenerList = _ListenerList(self)
        self.active = self._record_timeline

    # -- fast-path bookkeeping ---------------------------------------------

    @property
    def record_timeline(self) -> bool:
        """Whether :meth:`emit` appends to :attr:`records`."""
        return self._record_timeline

    @record_timeline.setter
    def record_timeline(self, value: bool) -> None:
        self._record_timeline = bool(value)
        self._refresh_active()

    def _refresh_active(self) -> None:
        self.active = self._record_timeline or bool(self.listeners)

    # -- timeline --------------------------------------------------------

    def emit(self, time: float, source: str, event: str, **detail: Any) -> None:
        """Record a timeline event (and notify listeners)."""
        if not self.active:
            return
        record = TraceRecord(time=time, source=source, event=event, detail=detail)
        if self._record_timeline:
            self.records.append(record)
        for listener in self.listeners:
            listener(record)

    def timeline(self, source: Optional[str] = None, event: Optional[str] = None) -> list[TraceRecord]:
        """Filtered view of the recorded timeline."""
        result = self.records
        if source is not None:
            result = [r for r in result if r.source == source]
        if event is not None:
            result = [r for r in result if r.event == event]
        return list(result)

    def format_timeline(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        """The timeline as a printable block of text."""
        chosen = self.records if records is None else records
        return "\n".join(record.format() for record in chosen)

    # -- metrics ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def count(self, name: str, by: int = 1) -> None:
        """Shorthand: increment counter *name*."""
        self.counter(name).increment(by)

    def sample_stat(self, name: str) -> SampleStat:
        """The :class:`SampleStat` for *name*, created on first use.

        Hot paths hold the returned object directly instead of paying a
        dict lookup (and often an f-string build) per sample.
        """
        stat = self.samples.get(name)
        if stat is None:
            stat = self.samples[name] = SampleStat(name)
        return stat

    def sample(self, name: str, value: float) -> None:
        """Shorthand: add a point sample to stat *name*."""
        self.sample_stat(name).add(value)

    def level_stat(self, name: str, start_time: float = 0.0) -> TimeWeightedStat:
        """The :class:`TimeWeightedStat` for *name*, created on first use.

        *start_time* only applies on creation; as with
        :meth:`sample_stat`, hot paths cache the returned object.
        """
        stat = self.levels.get(name)
        if stat is None:
            stat = self.levels[name] = TimeWeightedStat(name, start_time=start_time)
        return stat

    def level(self, name: str, now: float, value: float) -> None:
        """Shorthand: piecewise-constant signal *name* changed to *value*."""
        self.level_stat(name, start_time=now).update(now, value)

    def value(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        counter = self.counters.get(name)
        return counter.value if counter else 0

    def summary(self) -> dict[str, Any]:
        """All metrics as one flat dictionary (for reports and tests)."""
        result: dict[str, Any] = {}
        for name, counter in sorted(self.counters.items()):
            result[name] = counter.value
        for name, stat in sorted(self.samples.items()):
            result[f"{name}.mean"] = stat.mean
            result[f"{name}.count"] = stat.count
        for name, stat in sorted(self.levels.items()):
            result[f"{name}.avg"] = stat.mean()
            result[f"{name}.max"] = stat.maximum
        return result

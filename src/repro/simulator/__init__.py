"""Discrete-event simulation substrate for the LAMS-DLC reproduction.

Built from scratch (no SimPy dependency): a generator-process event
engine, deterministic named RNG streams, channel error models (random
and Gilbert–Elliott burst), full-duplex links with serialization and
time-varying propagation, LEO orbital geometry, and tracing/statistics.
"""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    SimulationError,
    StopSimulation,
    Timeout,
    Timer,
)
from .errormodel import (
    BernoulliChannel,
    ErrorModel,
    GilbertElliottChannel,
    PerfectChannel,
    frame_error_probability,
)
from .channels import (
    OrbitCoupledChannel,
    RecordingChannel,
    TraceReplayChannel,
    load_trace,
    replay_trace,
    synthesize_trace,
    write_trace,
)
from .link import (
    LIGHT_SPEED_KM_S,
    FullDuplexLink,
    SimplexChannel,
    delay_from_distance_km,
)
from .node import Node, PacketSink
from .orbit import (
    EARTH_RADIUS_KM,
    IsolatedLinkGeometry,
    Satellite,
    VisibilityWindow,
    link_distance_km,
    propagation_delay_fn,
    rtt_statistics,
    visibility_windows,
)
from .rng import StreamRegistry, derive_seed
from .trace import Counter, SampleStat, TimeWeightedStat, Tracer, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "BernoulliChannel",
    "Counter",
    "EARTH_RADIUS_KM",
    "ErrorModel",
    "Event",
    "FullDuplexLink",
    "GilbertElliottChannel",
    "Interrupt",
    "IsolatedLinkGeometry",
    "LIGHT_SPEED_KM_S",
    "Node",
    "OrbitCoupledChannel",
    "PacketSink",
    "PerfectChannel",
    "Process",
    "RecordingChannel",
    "SampleStat",
    "Satellite",
    "SimplexChannel",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "StreamRegistry",
    "Timeout",
    "TimeWeightedStat",
    "Timer",
    "TraceRecord",
    "TraceReplayChannel",
    "Tracer",
    "VisibilityWindow",
    "delay_from_distance_km",
    "derive_seed",
    "frame_error_probability",
    "link_distance_km",
    "load_trace",
    "propagation_delay_fn",
    "replay_trace",
    "rtt_statistics",
    "synthesize_trace",
    "visibility_windows",
    "write_trace",
]

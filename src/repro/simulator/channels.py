"""Time-varying channel models: trace replay and orbit-coupled BER.

The three seed models (perfect / Bernoulli / Gilbert–Elliott) are all
*stationary*, while the paper's environment (Section 2.1) is defined by
time-varying geometry: inter-satellite distance — and with it received
optical power — changes continuously along an orbit, and mispointing
error grows with the line-of-sight slew rate the tracking loop must
follow.  This module adds the two time-varying models ROADMAP item 3
calls for, both plugged into the string-keyed registry of
:mod:`repro.simulator.errormodel`:

- :class:`TraceReplayChannel` (``"trace-replay"``) — replays a recorded
  error trace: either exact per-frame corruption decisions or a
  piecewise-constant BER timeline, from a simple JSONL schema
  (see docs/CHANNELS.md).  Trace-driven evaluation follows Kuhn et al.
  ("Enabling Realistic Cross-Layer Analysis based on Satellite Physical
  Layer Traces"): record once, replay everywhere, compare protocols on
  *identical* error sequences.
- :class:`OrbitCoupledChannel` (``"orbit-coupled"``) — derives the
  instantaneous BER from :mod:`repro.simulator.orbit` geometry: a
  distance power law (received power falls with range, so residual BER
  after FEC rises) times a mispointing penalty quadratic in the
  line-of-sight slew rate.

:func:`synthesize_trace` / :func:`replay_trace` close the loop with no
external data: any registered model can be recorded into a trace
(``python -m repro trace-synth``) and the replay reproduces the source
run's delivered-payload digest bit-identically — every synthesized
trace is a regression fixture.
"""

from __future__ import annotations

import hashlib
import json
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from .errormodel import (
    ErrorModel,
    ErrorModelSpec,
    frame_error_probability,
    register_error_model,
    resolve_error_model,
)
from .orbit import IsolatedLinkGeometry, Satellite

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceReplayChannel",
    "RecordingChannel",
    "OrbitCoupledChannel",
    "TraceRunResult",
    "delivered_digest",
    "load_trace",
    "write_trace",
    "synthesize_trace",
    "replay_trace",
]

TRACE_SCHEMA_VERSION = 1
"""JSONL trace schema version (the header's ``version`` field)."""


# ---------------------------------------------------------------------------
# Trace replay
# ---------------------------------------------------------------------------


def _normalise_records(
    records: Iterable[Any], mode: Optional[str]
) -> tuple[str, list]:
    """Validate *records* and return ``(mode, normalised)``.

    Frame mode normalises to ``(t, bits, error)`` tuples (``t``/``bits``
    may be ``None``); BER mode to ``(t, ber)`` breakpoints sorted by
    time.  The mode is inferred from the first record when not given.
    """
    items = list(records)
    if mode is None:
        if not items:
            raise ValueError("cannot infer trace mode from an empty record list")
        first = items[0]
        if isinstance(first, Mapping):
            mode = "frame" if "error" in first else "ber"
        elif isinstance(first, bool):
            mode = "frame"
        else:
            mode = "ber"
    if mode not in ("frame", "ber"):
        raise ValueError(f"trace mode must be 'frame' or 'ber', got {mode!r}")

    if mode == "frame":
        frames: list[tuple[Optional[float], Optional[int], bool]] = []
        for record in items:
            if isinstance(record, Mapping):
                if "error" not in record:
                    raise ValueError(
                        f"frame-mode record needs an 'error' key: {record!r}"
                    )
                t = record.get("t")
                bits = record.get("bits")
                frames.append(
                    (
                        None if t is None else float(t),
                        None if bits is None else int(bits),
                        bool(record["error"]),
                    )
                )
            else:
                frames.append((None, None, bool(record)))
        return "frame", frames

    points: list[tuple[float, float]] = []
    for record in items:
        if isinstance(record, Mapping):
            try:
                t, ber = record["t"], record["ber"]
            except KeyError:
                raise ValueError(
                    f"ber-mode record needs 't' and 'ber' keys: {record!r}"
                ) from None
        else:
            try:
                t, ber = record
            except (TypeError, ValueError):
                raise ValueError(
                    f"ber-mode record must be a (t, ber) pair or mapping: {record!r}"
                ) from None
        t, ber = float(t), float(ber)
        if not 0.0 <= ber <= 1.0:
            raise ValueError(f"trace BER must be in [0, 1], got {ber!r}")
        points.append((t, ber))
    if not points:
        raise ValueError("ber-mode trace needs at least one (t, ber) breakpoint")
    points.sort(key=lambda p: p[0])
    return "ber", points


class TraceReplayChannel:
    """Replays a recorded error trace (registered as ``"trace-replay"``).

    Two trace modes:

    - ``"frame"`` — the trace is the exact sequence of per-frame
      corruption decisions; :meth:`frame_error` pops them FIFO and never
      touches the RNG, so a replay reproduces the recorded run's error
      pattern bit-identically regardless of seed.
    - ``"ber"`` — the trace is a piecewise-constant BER timeline
      ``(t, ber)``; each breakpoint holds until the next, the value at
      frame-start time decides the frame-error probability, and one
      uniform draw settles the frame (no draw while the BER is zero).

    Parameters
    ----------
    records:
        In-memory trace records (see :func:`_normalise_records` for the
        accepted shapes), mutually exclusive with *path*.
    path:
        JSONL trace file written by :func:`write_trace` /
        ``python -m repro trace-synth``.
    mode:
        ``"frame"`` or ``"ber"``; defaults to the file header's mode or
        is inferred from the first record.
    on_exhausted:
        Frame-mode policy once the trace runs out: ``"raise"`` (default
        — replay divergence is a bug worth failing loudly on),
        ``"perfect"`` (no further corruption) or ``"loop"`` (cycle the
        trace, for soak workloads longer than the recording).
    strict_bits:
        In frame mode, verify each replayed frame's bit count against
        the recorded one and raise on mismatch (catches replaying a
        trace against a different frame geometry).
    """

    def __init__(
        self,
        records: Optional[Iterable[Any]] = None,
        *,
        path: Optional[str] = None,
        mode: Optional[str] = None,
        on_exhausted: str = "raise",
        strict_bits: bool = False,
    ) -> None:
        if (records is None) == (path is None):
            raise ValueError("pass exactly one of records= or path=")
        if on_exhausted not in ("raise", "perfect", "loop"):
            raise ValueError(
                f"on_exhausted must be 'raise', 'perfect' or 'loop', "
                f"got {on_exhausted!r}"
            )
        self.header: dict[str, Any] = {}
        if path is not None:
            self.header, records = load_trace(path)
            if mode is None:
                mode = self.header.get("mode")
        self.mode, normalised = _normalise_records(records, mode)
        self.on_exhausted = on_exhausted
        self.strict_bits = strict_bits
        self._cursor = 0
        if self.mode == "frame":
            self._frames: list = normalised
        else:
            self._times = [p[0] for p in normalised]
            self._bers = [p[1] for p in normalised]
            # Per-(breakpoint, bits) frame-error probability cache; the
            # timeline is static so entries never invalidate.
            self._prob_cache: dict[tuple[int, int], float] = {}

    @property
    def length(self) -> int:
        """Number of trace records."""
        return len(self._frames) if self.mode == "frame" else len(self._times)

    @property
    def remaining(self) -> Optional[int]:
        """Frame-mode decisions not yet replayed (``None`` in BER mode)."""
        if self.mode != "frame":
            return None
        return max(0, len(self._frames) - self._cursor)

    def instantaneous_ber(self, t: float) -> float:
        """BER-mode value holding at time *t* (first breakpoint before it)."""
        if self.mode != "ber":
            raise ValueError("instantaneous_ber is only defined for ber-mode traces")
        index = bisect_right(self._times, t) - 1
        return self._bers[max(index, 0)]

    def frame_error(self, start: float, bits: int, rng: np.random.Generator) -> bool:
        if self.mode == "frame":
            index = self._cursor
            if index >= len(self._frames):
                if self.on_exhausted == "perfect":
                    return False
                if self.on_exhausted == "loop":
                    index = 0
                else:
                    raise ValueError(
                        f"trace exhausted after {len(self._frames)} frames "
                        f"(frame at t={start:.6f} has no recorded decision); "
                        f"use on_exhausted='perfect' or 'loop' to continue"
                    )
            t, recorded_bits, error = self._frames[index]
            if self.strict_bits and recorded_bits is not None and recorded_bits != bits:
                raise ValueError(
                    f"trace record {index} was captured for a {recorded_bits}-bit "
                    f"frame but is being replayed against {bits} bits"
                )
            self._cursor = index + 1
            return error
        index = bisect_right(self._times, start) - 1
        if index < 0:
            index = 0
        probability = self._prob_cache.get((index, bits))
        if probability is None:
            probability = self._prob_cache[(index, bits)] = frame_error_probability(
                self._bers[index], bits
            )
        if probability == 0.0:
            return False
        return bool(rng.random() < probability)

    def draw_window(
        self,
        starts: list,
        sizes: list,
        rng: np.random.Generator,
    ) -> list:
        """Bulk verdicts for a FIFO window, bit-identical to scalar replay.

        Frame mode slices the recorded decisions directly (zero RNG, the
        replay invariant); BER mode resolves each frame's timeline
        bucket, then settles all frames with nonzero probability from
        one bulk uniform draw — ``Generator.random(k)`` yields the same
        doubles as ``k`` scalar ``random()`` calls, and zero-probability
        frames consume no draw, exactly as in :meth:`frame_error`.
        """
        n = len(sizes)
        if self.mode == "frame":
            cursor = self._cursor
            if not self.strict_bits and cursor + n <= len(self._frames):
                self._cursor = cursor + n
                return [
                    record[2] for record in self._frames[cursor : cursor + n]
                ]
            # Exhaustion / loop / strict-bits paths stay on the scalar
            # kernel (they raise or wrap per frame).
            frame_error = self.frame_error
            return [
                frame_error(start, bits, rng)
                for start, bits in zip(starts, sizes)
            ]
        times = self._times
        prob_cache = self._prob_cache
        probabilities = []
        drawing = 0
        for start, bits in zip(starts, sizes):
            index = bisect_right(times, start) - 1
            if index < 0:
                index = 0
            probability = prob_cache.get((index, bits))
            if probability is None:
                probability = prob_cache[(index, bits)] = frame_error_probability(
                    self._bers[index], bits
                )
            probabilities.append(probability)
            if probability > 0.0:
                drawing += 1
        if not drawing:
            return [False] * n
        draws = rng.random(drawing)
        verdicts = [False] * n
        k = 0
        for i, probability in enumerate(probabilities):
            if probability > 0.0:
                verdicts[i] = bool(draws.item(k) < probability)
                k += 1
        return verdicts

    def __repr__(self) -> str:
        return (
            f"TraceReplayChannel(mode={self.mode!r}, length={self.length}, "
            f"on_exhausted={self.on_exhausted!r})"
        )


class RecordingChannel:
    """Wraps any model and records its per-frame decisions as a trace.

    The wrapper is transparent: it delegates every :meth:`frame_error`
    call to the inner model (same RNG consumption, same results) while
    appending a frame-mode trace record, so a recorded run and an
    unrecorded run of the same model are bit-identical.
    """

    def __init__(self, inner: ErrorModel) -> None:
        self.inner = inner
        self.records: list[dict[str, Any]] = []

    def frame_error(self, start: float, bits: int, rng: np.random.Generator) -> bool:
        error = bool(self.inner.frame_error(start, bits, rng))
        self.records.append({"t": start, "bits": bits, "error": error})
        return error

    def draw_window(
        self,
        starts: list,
        sizes: list,
        rng: np.random.Generator,
    ) -> list:
        """Delegate the bulk draw, recording every decision in order."""
        inner_bulk = getattr(self.inner, "draw_window", None)
        if inner_bulk is not None:
            verdicts = inner_bulk(starts, sizes, rng)
        else:
            frame_error = self.inner.frame_error
            verdicts = [
                frame_error(start, bits, rng)
                for start, bits in zip(starts, sizes)
            ]
        append = self.records.append
        for start, bits, error in zip(starts, sizes, verdicts):
            append({"t": start, "bits": bits, "error": bool(error)})
        return verdicts

    def __repr__(self) -> str:
        return f"RecordingChannel({self.inner!r}, records={len(self.records)})"


# ---------------------------------------------------------------------------
# Orbit-coupled BER
# ---------------------------------------------------------------------------


class OrbitCoupledChannel:
    """BER follows inter-satellite geometry (registered as ``"orbit-coupled"``).

    Models the two geometry-driven effects of Section 2.1 on the
    residual post-FEC BER:

    - **Range loss** — received optical power falls with distance, so
      the residual BER rises as a power law:
      ``ber(t) = ber * (d(t) / ref_distance_km) ** distance_exponent``.
    - **Mispointing** — the tracking loop's pointing error grows with
      the line-of-sight slew rate; the penalty is quadratic:
      ``* (1 + mispointing_gain * (slew(t) / slew_ref) ** 2)``.

    The instantaneous BER is clamped to *max_ber* and evaluated on a
    time grid of *update_interval* seconds (geometry moves on orbital
    timescales, frames on microsecond ones, so per-bucket caching is
    exact enough and keeps the per-frame cost flat).

    Parameters
    ----------
    ber:
        Residual BER at the reference distance with zero slew; injected
        from the link's BER by the registry context when not given.
    geometry:
        An :class:`~repro.simulator.orbit.IsolatedLinkGeometry`; the
        topology layer injects the link's own geometry via the registry
        context when both endpoints carry a satellite.  When absent, a
        two-satellite geometry is built from the orbital elements below.
    altitude_km, inclination_deg, raan_separation_deg, phase_separation_deg:
        Elements of the fallback two-satellite geometry: both satellites
        share altitude and inclination; their planes are separated by
        *raan_separation_deg* and their along-track phase by
        *phase_separation_deg*.
    ref_distance_km:
        Distance at which the BER equals *ber*; defaults to the link
        distance at *epoch*.
    distance_exponent:
        Power-law exponent of the range loss (2.0 = free-space power).
    mispointing_gain, slew_ref:
        Mispointing penalty gain and reference slew rate in rad/s
        (default: the satellites' mean motion).
    max_ber:
        Upper clamp on the instantaneous BER.
    update_interval:
        Geometry evaluation grid in seconds.
    epoch:
        Simulation time corresponding to orbital ``t = 0``.
    """

    def __init__(
        self,
        ber: float = 1e-6,
        geometry: Optional[IsolatedLinkGeometry] = None,
        *,
        altitude_km: float = 1000.0,
        inclination_deg: float = 60.0,
        raan_separation_deg: float = 30.0,
        phase_separation_deg: float = 10.0,
        ref_distance_km: Optional[float] = None,
        distance_exponent: float = 2.0,
        mispointing_gain: float = 0.5,
        slew_ref: Optional[float] = None,
        max_ber: float = 1e-2,
        update_interval: float = 0.01,
        epoch: float = 0.0,
    ) -> None:
        if not 0.0 <= ber <= 1.0:
            raise ValueError(f"BER must be in [0, 1], got {ber!r}")
        if not 0.0 <= max_ber <= 1.0:
            raise ValueError(f"max_ber must be in [0, 1], got {max_ber!r}")
        if distance_exponent < 0:
            raise ValueError("distance_exponent cannot be negative")
        if mispointing_gain < 0:
            raise ValueError("mispointing_gain cannot be negative")
        if update_interval < 0:
            raise ValueError("update_interval cannot be negative")
        if geometry is None:
            if raan_separation_deg == 0.0 and phase_separation_deg == 0.0:
                raise ValueError(
                    "fallback geometry needs a nonzero raan_separation_deg "
                    "or phase_separation_deg (coincident satellites)"
                )
            geometry = IsolatedLinkGeometry(
                Satellite(
                    "orbit-coupled-a",
                    altitude_km=altitude_km,
                    inclination_deg=inclination_deg,
                ),
                Satellite(
                    "orbit-coupled-b",
                    altitude_km=altitude_km,
                    inclination_deg=inclination_deg,
                    raan_deg=raan_separation_deg,
                    phase_deg=phase_separation_deg,
                ),
            )
        self.ber = ber
        self.geometry = geometry
        self.distance_exponent = distance_exponent
        self.mispointing_gain = mispointing_gain
        self.max_ber = max_ber
        self.update_interval = update_interval
        self.epoch = epoch
        if ref_distance_km is None:
            ref_distance_km = geometry.distance_km(0.0)
        if ref_distance_km <= 0:
            raise ValueError("ref_distance_km must be positive")
        self.ref_distance_km = ref_distance_km
        if slew_ref is None:
            slew_ref = max(geometry.a.angular_rate, geometry.b.angular_rate)
        if slew_ref <= 0:
            raise ValueError("slew_ref must be positive")
        self.slew_ref = slew_ref
        self._bucket: Optional[int] = None
        self._bucket_ber = 0.0
        self._prob_by_bits: dict[int, float] = {}

    def slew_rate(self, t: float, dt: float = 1.0) -> float:
        """Line-of-sight rotation rate in rad/s around time *t*.

        Finite difference of the unit line-of-sight vector over *dt*
        seconds — ample resolution for orbital-period motion.
        """
        a, b = self.geometry.a, self.geometry.b
        los0 = b.position(t) - a.position(t)
        los1 = b.position(t + dt) - a.position(t + dt)
        norm0 = float(np.linalg.norm(los0))
        norm1 = float(np.linalg.norm(los1))
        if norm0 == 0.0 or norm1 == 0.0:
            return 0.0
        cosine = float(np.dot(los0, los1)) / (norm0 * norm1)
        return math.acos(max(-1.0, min(1.0, cosine))) / dt

    def instantaneous_ber(self, t: float) -> float:
        """The geometry-coupled BER at simulation time *t*."""
        orbital_t = t - self.epoch
        distance = self.geometry.distance_km(orbital_t)
        ber = self.ber * (distance / self.ref_distance_km) ** self.distance_exponent
        if self.mispointing_gain:
            slew = self.slew_rate(orbital_t)
            ber *= 1.0 + self.mispointing_gain * (slew / self.slew_ref) ** 2
        return min(ber, self.max_ber)

    def frame_error(self, start: float, bits: int, rng: np.random.Generator) -> bool:
        if self.update_interval > 0:
            bucket = int(start // self.update_interval)
            if bucket != self._bucket:
                self._bucket = bucket
                self._bucket_ber = self.instantaneous_ber(bucket * self.update_interval)
                self._prob_by_bits.clear()
            probability = self._prob_by_bits.get(bits)
            if probability is None:
                probability = self._prob_by_bits[bits] = frame_error_probability(
                    self._bucket_ber, bits
                )
        else:
            probability = frame_error_probability(self.instantaneous_ber(start), bits)
        if probability == 0.0:
            return False
        return bool(rng.random() < probability)

    def draw_window(
        self,
        starts: list,
        sizes: list,
        rng: np.random.Generator,
    ) -> list:
        """Bulk verdicts via the same bucketed geometry lookups.

        Each frame resolves its probability exactly as
        :meth:`frame_error` would (advancing the bucket cache in frame
        order); frames with nonzero probability are then settled from
        one bulk uniform draw — the same variates in the same order as
        the scalar path, with zero-probability frames consuming none.
        """
        probabilities = []
        drawing = 0
        interval = self.update_interval
        prob_get = self._prob_by_bits.get
        for start, bits in zip(starts, sizes):
            if interval > 0:
                bucket = int(start // interval)
                if bucket != self._bucket:
                    self._bucket = bucket
                    self._bucket_ber = self.instantaneous_ber(bucket * interval)
                    self._prob_by_bits.clear()
                probability = prob_get(bits)
                if probability is None:
                    probability = self._prob_by_bits[bits] = (
                        frame_error_probability(self._bucket_ber, bits)
                    )
            else:
                probability = frame_error_probability(
                    self.instantaneous_ber(start), bits
                )
            probabilities.append(probability)
            if probability > 0.0:
                drawing += 1
        n = len(probabilities)
        if not drawing:
            return [False] * n
        draws = rng.random(drawing)
        verdicts = [False] * n
        k = 0
        for i, probability in enumerate(probabilities):
            if probability > 0.0:
                verdicts[i] = bool(draws.item(k) < probability)
                k += 1
        return verdicts

    def __repr__(self) -> str:
        return (
            f"OrbitCoupledChannel(ber={self.ber:g}, "
            f"ref_distance_km={self.ref_distance_km:g}, "
            f"distance_exponent={self.distance_exponent:g}, "
            f"mispointing_gain={self.mispointing_gain:g})"
        )


register_error_model("trace-replay", TraceReplayChannel)
register_error_model("orbit-coupled", OrbitCoupledChannel)


# ---------------------------------------------------------------------------
# Trace files (JSONL)
# ---------------------------------------------------------------------------


def write_trace(
    path: str,
    records: Sequence[Mapping[str, Any]],
    *,
    mode: str,
    model: Optional[str] = None,
    scenario: Optional[str] = None,
    seed: Optional[int] = None,
    bit_rate: Optional[float] = None,
    digest: Optional[str] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> dict[str, Any]:
    """Write a JSONL trace file; returns the header that was written.

    Line 1 is the header (``kind: "trace-header"``); every further line
    is one record.  See docs/CHANNELS.md for the schema.
    """
    mode, normalised = _normalise_records(records, mode)
    header: dict[str, Any] = {
        "kind": "trace-header",
        "version": TRACE_SCHEMA_VERSION,
        "mode": mode,
        "records": len(normalised),
    }
    for key, value in (
        ("model", model),
        ("scenario", scenario),
        ("seed", seed),
        ("bit_rate", bit_rate),
        ("digest", digest),
    ):
        if value is not None:
            header[key] = value
    if extra:
        header["extra"] = dict(extra)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        if mode == "frame":
            for t, bits, error in normalised:
                record = {"error": error}
                if t is not None:
                    record["t"] = t
                if bits is not None:
                    record["bits"] = bits
                handle.write(json.dumps(record) + "\n")
        else:
            for t, ber in normalised:
                handle.write(json.dumps({"t": t, "ber": ber}) + "\n")
    return header


def load_trace(path: str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a JSONL trace file; returns ``(header, records)``.

    Tolerates a missing header (every line a record) so hand-written
    traces stay valid.
    """
    header: dict[str, Any] = {}
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                value = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON: {exc}") from None
            if not isinstance(value, Mapping):
                raise ValueError(
                    f"{path}:{line_no}: trace lines must be JSON objects"
                )
            if value.get("kind") == "trace-header":
                if records:
                    raise ValueError(
                        f"{path}:{line_no}: header must be the first line"
                    )
                header = dict(value)
                version = header.get("version", TRACE_SCHEMA_VERSION)
                if version != TRACE_SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}: unsupported trace schema version {version!r} "
                        f"(this build reads version {TRACE_SCHEMA_VERSION})"
                    )
                continue
            records.append(dict(value))
    return header, records


# ---------------------------------------------------------------------------
# Trace synthesis and replay (the regression loop)
# ---------------------------------------------------------------------------


def delivered_digest(delivered: Sequence[Any]) -> str:
    """SHA-256 over the repr of every delivered payload, in order.

    The bit-identical acceptance check: two runs delivering the same
    payloads in the same order produce the same digest.
    """
    digest = hashlib.sha256()
    for item in delivered:
        digest.update(repr(item).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass
class TraceRunResult:
    """Outcome of one recorded or replayed batch transfer."""

    digest: str
    delivered: int
    duration: float
    records: list[dict[str, Any]] = field(default_factory=list)
    header: dict[str, Any] = field(default_factory=dict)


def _run_batch(setup, n_frames: int, max_time: float) -> tuple[int, float]:
    """Drive a FiniteBatch through *setup*; returns (delivered, duration)."""
    from ..workloads.generators import FiniteBatch

    batch = FiniteBatch(setup.sim, setup.endpoint_a, n_frames)
    batch.start()
    if batch.refused:
        raise RuntimeError(
            f"sending buffer refused {batch.refused} frames; lower n_frames"
        )
    completion: dict[str, float] = {}

    def check_done() -> None:
        if len(setup.delivered) >= n_frames and "time" not in completion:
            completion["time"] = setup.sim.now
            setup.sim.stop()

    setup.delivered.on_append = check_done
    setup.sim.run(until=max_time)
    return len(setup.delivered), completion.get("time", setup.sim.now)


def synthesize_trace(
    scenario,
    model: ErrorModelSpec = None,
    *,
    protocol: str = "lams",
    seed: int = 0,
    n_frames: int = 200,
    max_time: float = 60.0,
) -> TraceRunResult:
    """Record a frame-mode trace from *model* driving a batch transfer.

    Builds the scenario's one-way simulation with the resolved *model*
    (default: the scenario's own I-frame model) wrapped in a
    :class:`RecordingChannel` on the forward I-frame direction, runs an
    *n_frames* batch, and returns the recorded trace plus the
    delivered-payload digest.  Replaying the records through
    :func:`replay_trace` with the same arguments reproduces that digest
    bit-identically — the acceptance loop ``python -m repro trace-synth
    --verify`` runs.
    """
    from ..workloads.scenarios import build_simulation

    source = resolve_error_model(
        model if model is not None else scenario.iframe_error_model,
        ber=scenario.iframe_ber,
        bit_rate=scenario.bit_rate,
    )
    recorder = RecordingChannel(source)
    setup = build_simulation(scenario, protocol, seed=seed, iframe_errors=recorder)
    delivered, duration = _run_batch(setup, n_frames, max_time)
    return TraceRunResult(
        digest=delivered_digest(setup.delivered),
        delivered=delivered,
        duration=duration,
        records=recorder.records,
        header={
            "mode": "frame",
            "scenario": scenario.name,
            "protocol": protocol,
            "seed": seed,
            "n_frames": n_frames,
        },
    )


def replay_trace(
    scenario,
    trace: Union[str, Sequence[Any]],
    *,
    protocol: str = "lams",
    seed: int = 0,
    n_frames: int = 200,
    max_time: float = 60.0,
    on_exhausted: str = "raise",
) -> TraceRunResult:
    """Re-run a batch transfer with the trace deciding every frame error.

    *trace* is a path written by :func:`write_trace` or an in-memory
    record sequence (e.g. ``synthesize_trace(...).records``).
    """
    from ..workloads.scenarios import build_simulation

    if isinstance(trace, str):
        channel = TraceReplayChannel(path=trace, on_exhausted=on_exhausted)
    else:
        channel = TraceReplayChannel(
            records=trace, mode="frame", on_exhausted=on_exhausted
        )
    setup = build_simulation(scenario, protocol, seed=seed, iframe_errors=channel)
    delivered, duration = _run_batch(setup, n_frames, max_time)
    return TraceRunResult(
        digest=delivered_digest(setup.delivered),
        delivered=delivered,
        duration=duration,
        records=[],
        header=dict(channel.header),
    )

"""Seeded random chaos episodes: scenario × fault plan × workload.

An :class:`EpisodeSpec` is one fully-determined randomized trial — a
link operating point drawn from the preset envelope, protocol knobs
jittered inside the paper's stated ranges, a random
:class:`~repro.faults.plan.FaultPlan`, and a finite workload — all
derived from ``derive_seed(master_seed, "episode[i]")``, so any episode
regenerates bit-identically from ``(master_seed, index)`` alone.  That
pair is the *reproducer*: a soak violation report names it, and
``python -m repro soak --seed S --episodes N`` replays it.

Specs are frozen, picklable (parallel soak workers), and their
``repr`` is stable (sweep-cache keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..faults.plan import (
    BerStorm,
    ControlCorruption,
    Fault,
    FaultPlan,
    FeedbackBlackout,
    LinkOutage,
)
from ..simulator.rng import derive_seed
from ..workloads.scenarios import PRESETS, LinkScenario

__all__ = ["EpisodeSpec", "generate_episode", "generate_episodes"]

# Presets the generator perturbs; every draw stays inside the paper's
# Section 2.1 envelope (300 Mbps–1 Gbps, 2,000–10,000 km).
_PRESET_NAMES = ("short_hop", "nominal", "long_haul", "noisy")

# Error-model choices for the data channel: the default (Bernoulli at
# the scenario BER), an explicit Bernoulli, or a Gilbert–Elliott burst
# process (whose parameters the generator draws).
_IFRAME_MODELS = ("default", "bernoulli", "gilbert-elliott")


@dataclass(frozen=True)
class EpisodeSpec:
    """One reproducible randomized trial for the soak runner."""

    index: int
    seed: int
    master_seed: int
    scenario: LinkScenario
    fault_plan: FaultPlan
    overrides: tuple[tuple[str, Any], ...] = ()
    n_frames: int = 500
    max_time: float = 2.0
    iframe_errors: Optional[tuple[str, tuple[tuple[str, Any], ...]]] = None
    """Optional ``(name, params)`` error-model spec for the data
    channel, overriding the scenario's string field (used for models
    needing drawn parameters, like Gilbert–Elliott)."""

    @property
    def label(self) -> str:
        return (
            f"episode[{self.index}]@{self.scenario.name} "
            f"faults={len(self.fault_plan)} seed={self.seed}"
        )

    @property
    def overrides_dict(self) -> dict[str, Any]:
        return dict(self.overrides)

    def reproducer(self) -> dict[str, Any]:
        """Everything needed to regenerate and re-run this episode."""
        return {
            "master_seed": self.master_seed,
            "episode": self.index,
            "seed": self.seed,
            "scenario": self.scenario.name,
            "command": (
                f"python -m repro soak --seed {self.master_seed} "
                f"--episodes {self.index + 1} --only {self.index}"
            ),
        }


def _random_faults(
    rng: np.random.Generator, horizon: float, checkpoint_interval: float,
) -> list[Fault]:
    """1–3 faults with windows that fit inside the run horizon."""
    faults: list[Fault] = []
    for _ in range(int(rng.integers(1, 4))):
        start = float(rng.uniform(0.02, horizon * 0.6))
        kind = rng.choice(
            ["outage", "feedback-blackout", "ber-storm", "control-corruption"],
        )
        if kind == "outage":
            duration = float(rng.uniform(2 * checkpoint_interval, horizon * 0.3))
            direction = str(rng.choice(["forward", "reverse", "both"]))
            faults.append(LinkOutage(start=start, duration=duration, direction=direction))
        elif kind == "feedback-blackout":
            duration = float(rng.uniform(2 * checkpoint_interval, horizon * 0.3))
            faults.append(FeedbackBlackout(start=start, duration=duration))
        elif kind == "ber-storm":
            duration = float(rng.uniform(0.01, horizon * 0.25))
            target = str(rng.choice(["iframe", "cframe", "both"]))
            targets = ("iframe", "cframe") if target == "both" else (target,)
            faults.append(
                BerStorm(
                    start=start, duration=duration,
                    model="bernoulli",
                    params=(("ber", float(rng.choice([1e-5, 1e-4, 1e-3]))),),
                    direction=str(rng.choice(["forward", "reverse"])),
                    targets=targets,
                )
            )
        else:
            duration = float(rng.uniform(0.01, horizon * 0.25))
            faults.append(
                ControlCorruption(
                    start=start, duration=duration,
                    probability=float(rng.choice([0.25, 0.5, 1.0])),
                    direction="reverse",
                )
            )
    return faults


def generate_episode(master_seed: int, index: int) -> EpisodeSpec:
    """The *index*-th randomized episode under *master_seed*.

    Pure function of its arguments: the episode's own RNG is seeded
    with ``derive_seed(master_seed, "episode[index]")`` and drives
    every draw, so regeneration is exact.
    """
    seed = derive_seed(master_seed, f"episode[{index}]")
    rng = np.random.Generator(np.random.PCG64(seed))

    base = PRESETS[str(rng.choice(_PRESET_NAMES))]
    # Jitter the protocol knobs inside sane ranges.  W_cp stays well
    # above the frame time and t_proc so checkpoints remain "short and
    # frequent" rather than degenerate; BERs stay at or below the
    # preset's (the fault plan supplies the violence instead — the base
    # control channel must be quiet enough that spontaneous C_depth-long
    # corruption streaks stay out of the latency monitors' error budget).
    checkpoint_interval = float(rng.uniform(0.002, 0.02))
    cumulation_depth = int(rng.integers(2, 5))
    iframe_ber = float(base.iframe_ber * rng.choice([0.1, 0.5, 1.0]))
    model_choice = _IFRAME_MODELS[int(rng.integers(0, len(_IFRAME_MODELS)))]
    iframe_errors: Optional[tuple[str, tuple[tuple[str, Any], ...]]] = None
    if model_choice == "gilbert-elliott":
        iframe_errors = (
            "gilbert-elliott",
            (
                ("good_ber", iframe_ber * 0.1),
                ("bad_ber", float(rng.choice([1e-4, 1e-3]))),
                ("mean_good", float(rng.uniform(0.05, 0.2))),
                ("mean_bad", float(rng.uniform(0.001, 0.01))),
            ),
        )
    scenario = base.with_(
        name=f"{base.name}~chaos{index}",
        checkpoint_interval=checkpoint_interval,
        cumulation_depth=cumulation_depth,
        iframe_ber=iframe_ber,
        cframe_ber=float(min(base.cframe_ber, 1e-8) * rng.choice([0.0, 0.5, 1.0])),
        iframe_error_model="bernoulli" if model_choice == "bernoulli" else None,
    )

    overrides: dict[str, Any] = {}
    if rng.random() < 0.3:
        overrides["zero_duplication"] = True
    if rng.random() < 0.3:
        overrides["flow_control_enabled"] = False

    n_frames = int(rng.integers(200, 1501))
    # Run long enough for several fault/recovery cycles at this RTT and
    # checkpoint cadence, then a quiet tail for the backlog to drain.
    max_time = float(
        4.0 * scenario.round_trip_time
        + 60.0 * checkpoint_interval
        + rng.uniform(0.5, 1.5)
    )
    plan = FaultPlan(
        faults=tuple(_random_faults(rng, max_time * 0.6, checkpoint_interval)),
        name=f"chaos[{index}]",
    )
    return EpisodeSpec(
        index=index,
        seed=seed,
        master_seed=master_seed,
        scenario=scenario,
        fault_plan=plan,
        overrides=tuple(sorted(overrides.items())),
        n_frames=n_frames,
        max_time=max_time,
        iframe_errors=iframe_errors,
    )


def generate_episodes(master_seed: int, count: int) -> list[EpisodeSpec]:
    """The first *count* episodes under *master_seed*."""
    if count < 1:
        raise ValueError("need at least one episode")
    return [generate_episode(master_seed, index) for index in range(count)]

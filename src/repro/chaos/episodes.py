"""Seeded random chaos episodes: scenario × fault plan × workload.

An :class:`EpisodeSpec` is one fully-determined randomized trial — a
link operating point drawn from the preset envelope, protocol knobs
jittered inside the paper's stated ranges, a random
:class:`~repro.faults.plan.FaultPlan`, and a finite workload — all
derived from ``derive_seed(master_seed, "episode[i]")``, so any episode
regenerates bit-identically from ``(master_seed, index)`` alone.  That
pair is the *reproducer*: a soak violation report names it, and
``python -m repro soak --seed S --episodes N`` replays it.

Specs are frozen, picklable (parallel soak workers), and their
``repr`` is stable (sweep-cache keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..faults.metrics import declared_failure_bound
from ..faults.plan import (
    BerStorm,
    ControlCorruption,
    EndpointStall,
    Fault,
    FaultPlan,
    FeedbackBlackout,
    HandshakeBlackhole,
    LinkOutage,
    PeerRestart,
    SendErrorBurst,
)
from ..simulator.rng import derive_seed
from ..workloads.scenarios import PRESETS, LinkScenario

__all__ = [
    "EpisodeSpec",
    "generate_episode",
    "generate_episodes",
    "generate_transport_episode",
]

# Presets the generator perturbs; every draw stays inside the paper's
# Section 2.1 envelope (300 Mbps–1 Gbps, 2,000–10,000 km).
_PRESET_NAMES = ("short_hop", "nominal", "long_haul", "noisy")

# Error-model choices for the data channel: the default (Bernoulli at
# the scenario BER), an explicit Bernoulli, a Gilbert–Elliott burst
# process, a BER-timeline trace replay, or an orbit-coupled channel
# (parameters for the last three drawn by the generator).
_IFRAME_MODELS = (
    "default",
    "bernoulli",
    "gilbert-elliott",
    "trace-replay",
    "orbit-coupled",
)


@dataclass(frozen=True)
class EpisodeSpec:
    """One reproducible randomized trial for the soak runner."""

    index: int
    seed: int
    master_seed: int
    scenario: LinkScenario
    fault_plan: FaultPlan
    overrides: tuple[tuple[str, Any], ...] = ()
    n_frames: int = 500
    max_time: float = 2.0
    iframe_errors: Optional[tuple[str, tuple[tuple[str, Any], ...]]] = None
    """Optional ``(name, params)`` error-model spec for the data
    channel, overriding the scenario's string field (used for models
    needing drawn parameters, like Gilbert–Elliott)."""
    backend: str = "des"
    """Which substrate runs the episode: ``"des"`` (virtual time) or
    ``"udp"`` (supervised real-time loopback sessions)."""

    @property
    def label(self) -> str:
        tag = "" if self.backend == "des" else f" backend={self.backend}"
        return (
            f"episode[{self.index}]@{self.scenario.name} "
            f"faults={len(self.fault_plan)} seed={self.seed}{tag}"
        )

    @property
    def overrides_dict(self) -> dict[str, Any]:
        return dict(self.overrides)

    def reproducer(self) -> dict[str, Any]:
        """Everything needed to regenerate and re-run this episode."""
        backend_flag = "" if self.backend == "des" else f" --backend {self.backend}"
        return {
            "master_seed": self.master_seed,
            "episode": self.index,
            "seed": self.seed,
            "scenario": self.scenario.name,
            "backend": self.backend,
            "command": (
                f"python -m repro soak --seed {self.master_seed}"
                f"{backend_flag} "
                f"--episodes {self.index + 1} --only {self.index}"
            ),
        }


def _random_faults(
    rng: np.random.Generator, horizon: float, checkpoint_interval: float,
) -> list[Fault]:
    """1–3 faults with windows that fit inside the run horizon."""
    faults: list[Fault] = []
    for _ in range(int(rng.integers(1, 4))):
        start = float(rng.uniform(0.02, horizon * 0.6))
        kind = rng.choice(
            ["outage", "feedback-blackout", "ber-storm", "control-corruption"],
        )
        if kind == "outage":
            duration = float(rng.uniform(2 * checkpoint_interval, horizon * 0.3))
            direction = str(rng.choice(["forward", "reverse", "both"]))
            faults.append(LinkOutage(start=start, duration=duration, direction=direction))
        elif kind == "feedback-blackout":
            duration = float(rng.uniform(2 * checkpoint_interval, horizon * 0.3))
            faults.append(FeedbackBlackout(start=start, duration=duration))
        elif kind == "ber-storm":
            duration = float(rng.uniform(0.01, horizon * 0.25))
            target = str(rng.choice(["iframe", "cframe", "both"]))
            targets = ("iframe", "cframe") if target == "both" else (target,)
            faults.append(
                BerStorm(
                    start=start, duration=duration,
                    model="bernoulli",
                    params=(("ber", float(rng.choice([1e-5, 1e-4, 1e-3]))),),
                    direction=str(rng.choice(["forward", "reverse"])),
                    targets=targets,
                )
            )
        else:
            duration = float(rng.uniform(0.01, horizon * 0.25))
            faults.append(
                ControlCorruption(
                    start=start, duration=duration,
                    probability=float(rng.choice([0.25, 0.5, 1.0])),
                    direction="reverse",
                )
            )
    return faults


def generate_episode(master_seed: int, index: int) -> EpisodeSpec:
    """The *index*-th randomized episode under *master_seed*.

    Pure function of its arguments: the episode's own RNG is seeded
    with ``derive_seed(master_seed, "episode[index]")`` and drives
    every draw, so regeneration is exact.
    """
    seed = derive_seed(master_seed, f"episode[{index}]")
    rng = np.random.Generator(np.random.PCG64(seed))

    base = PRESETS[str(rng.choice(_PRESET_NAMES))]
    # Jitter the protocol knobs inside sane ranges.  W_cp stays well
    # above the frame time and t_proc so checkpoints remain "short and
    # frequent" rather than degenerate; BERs stay at or below the
    # preset's (the fault plan supplies the violence instead — the base
    # control channel must be quiet enough that spontaneous C_depth-long
    # corruption streaks stay out of the latency monitors' error budget).
    checkpoint_interval = float(rng.uniform(0.002, 0.02))
    cumulation_depth = int(rng.integers(2, 5))
    iframe_ber = float(base.iframe_ber * rng.choice([0.1, 0.5, 1.0]))
    model_choice = _IFRAME_MODELS[int(rng.integers(0, len(_IFRAME_MODELS)))]
    iframe_errors: Optional[tuple[str, tuple[tuple[str, Any], ...]]] = None
    if model_choice == "gilbert-elliott":
        iframe_errors = (
            "gilbert-elliott",
            (
                ("good_ber", iframe_ber * 0.1),
                ("bad_ber", float(rng.choice([1e-4, 1e-3]))),
                ("mean_good", float(rng.uniform(0.05, 0.2))),
                ("mean_bad", float(rng.uniform(0.001, 0.01))),
            ),
        )
    elif model_choice == "trace-replay":
        # An inline piecewise-constant BER timeline: 3–6 breakpoints
        # over a horizon generously covering any drawn max_time, BERs
        # inside the monitors' error budget.  The records ride the spec
        # as nested tuples, keeping it frozen/picklable/repr-stable.
        breakpoints = sorted(
            float(rng.uniform(0.0, 3.0)) for _ in range(int(rng.integers(2, 6)))
        )
        levels = [0.0] + [
            float(iframe_ber * rng.choice([0.5, 2.0, 10.0]))
            for _ in breakpoints
        ]
        records = tuple(
            (t, min(ber, 1e-4))
            for t, ber in zip([0.0] + breakpoints, levels)
        )
        iframe_errors = (
            "trace-replay",
            (("records", records), ("mode", "ber")),
        )
    elif model_choice == "orbit-coupled":
        iframe_errors = (
            "orbit-coupled",
            (
                ("ber", iframe_ber),
                ("altitude_km", float(rng.uniform(600.0, 1400.0))),
                ("inclination_deg", float(rng.uniform(40.0, 80.0))),
                ("raan_separation_deg", float(rng.uniform(10.0, 60.0))),
                ("phase_separation_deg", float(rng.uniform(0.0, 30.0))),
                ("distance_exponent", float(rng.choice([1.0, 2.0]))),
                ("mispointing_gain", float(rng.uniform(0.0, 1.0))),
                ("max_ber", 1e-4),
            ),
        )
    scenario = base.with_(
        name=f"{base.name}~chaos{index}",
        checkpoint_interval=checkpoint_interval,
        cumulation_depth=cumulation_depth,
        iframe_ber=iframe_ber,
        cframe_ber=float(min(base.cframe_ber, 1e-8) * rng.choice([0.0, 0.5, 1.0])),
        iframe_error_model="bernoulli" if model_choice == "bernoulli" else None,
    )

    overrides: dict[str, Any] = {}
    if rng.random() < 0.3:
        overrides["zero_duplication"] = True
    if rng.random() < 0.3:
        overrides["flow_control_enabled"] = False

    n_frames = int(rng.integers(200, 1501))
    # Run long enough for several fault/recovery cycles at this RTT and
    # checkpoint cadence, then a quiet tail for the backlog to drain.
    max_time = float(
        4.0 * scenario.round_trip_time
        + 60.0 * checkpoint_interval
        + rng.uniform(0.5, 1.5)
    )
    plan = FaultPlan(
        faults=tuple(_random_faults(rng, max_time * 0.6, checkpoint_interval)),
        name=f"chaos[{index}]",
    )
    return EpisodeSpec(
        index=index,
        seed=seed,
        master_seed=master_seed,
        scenario=scenario,
        fault_plan=plan,
        overrides=tuple(sorted(overrides.items())),
        n_frames=n_frames,
        max_time=max_time,
        iframe_errors=iframe_errors,
    )


# -- transport (UDP) episodes ------------------------------------------------

# The UDP soak runs in real time, so its envelope is the golden-
# conformance operating point (megabit-class link, millisecond frames)
# rather than the paper's gigabit presets: each episode costs wall
# seconds, and the violence comes from the fault plan, not the BER.
_TRANSPORT_FAULT_MENU = (
    "endpoint-stall",
    "peer-restart",
    "handshake-blackhole",
    "send-error-burst",
    "outage",
    "ber-storm",
)


def _random_transport_faults(
    rng: np.random.Generator, horizon: float, declared_bound: float,
) -> list[Fault]:
    """1–2 faults sized against the declared-failure budget.

    Stall-class windows last several failure budgets, so the protocol
    (or the supervisor's heartbeat) *must* declare and the session must
    recover through a supervised reconnect — the regime this soak
    exists to exercise.  *horizon* bounds the start draws: at megabit
    rates the whole transfer lasts tens of milliseconds, so starts
    stay inside that active window or the fault would fire into an
    already-finished session.
    """
    faults: list[Fault] = []
    for _ in range(int(rng.integers(1, 3))):
        kind = str(rng.choice(_TRANSPORT_FAULT_MENU))
        start = float(rng.uniform(0.01, horizon))
        stall_duration = float(
            rng.uniform(1.5 * declared_bound, 3.0 * declared_bound + 0.4)
        )
        if kind == "handshake-blackhole":
            faults.append(HandshakeBlackhole(
                start=float(rng.uniform(0.0, 0.02)), duration=stall_duration,
            ))
        elif kind == "endpoint-stall":
            faults.append(EndpointStall(
                start=start, duration=stall_duration,
                endpoint=str(rng.choice(["a", "b"])),
            ))
        elif kind == "peer-restart":
            # Restarts only bite while frames are still in flight, and
            # the send phase is the first few tens of milliseconds —
            # draw these earlier than the shared start.
            faults.append(PeerRestart(
                start=float(rng.uniform(0.005, horizon * 0.3)),
                duration=stall_duration,
            ))
        elif kind == "send-error-burst":
            faults.append(SendErrorBurst(
                start=start,
                duration=float(rng.uniform(0.1, 0.4)),
                probability=float(rng.choice([0.5, 1.0])),
                direction=str(rng.choice(["forward", "reverse"])),
            ))
        elif kind == "outage":
            faults.append(LinkOutage(
                start=start, duration=stall_duration,
                direction=str(rng.choice(["forward", "reverse", "both"])),
            ))
        else:
            faults.append(BerStorm(
                start=start,
                duration=float(rng.uniform(0.1, 0.3)),
                model="bernoulli",
                params=(("ber", float(rng.choice([1e-5, 1e-4]))),),
                direction=str(rng.choice(["forward", "reverse"])),
                targets=("iframe",),
            ))
    return faults


def generate_transport_episode(master_seed: int, index: int) -> EpisodeSpec:
    """The *index*-th randomized UDP-backend episode under *master_seed*.

    Same purity contract as :func:`generate_episode`, drawn from a
    distinct seed namespace (``"udp-episode[i]"``) so the two soak
    planes never share an episode stream.  Roughly a quarter of the
    episodes are fault-free: the soak runner cross-checks those against
    the DES reference digest as a live conformance probe.
    """
    seed = derive_seed(master_seed, f"udp-episode[{index}]")
    rng = np.random.Generator(np.random.PCG64(seed))

    checkpoint_interval = float(rng.uniform(0.012, 0.03))
    cumulation_depth = int(rng.integers(2, 5))
    scenario = LinkScenario(
        name=f"udp~chaos{index}",
        bit_rate=2e6,
        distance_km=float(rng.uniform(1000.0, 6000.0)),
        iframe_ber=float(rng.choice([0.0, 1e-6, 4e-5])),
        cframe_ber=0.0,
        iframe_payload_bits=2048,
        iframe_overhead_bits=80,
        cframe_bits=96,
        checkpoint_interval=checkpoint_interval,
        cumulation_depth=cumulation_depth,
        processing_time=10e-6,
    )
    config = scenario.protocol_config("lams")
    declared = declared_failure_bound(config, scenario.round_trip_time)

    n_frames = int(rng.integers(12, 33))
    # Wall-clock watchdog: transfer + a couple of reconnect cycles +
    # settle, with generous CI headroom.  An episode that needs more
    # than this has hung, and the runner reports it as a violation.
    max_time = float(6.0 + rng.uniform(0.0, 2.0))
    faults: tuple[Fault, ...] = ()
    if rng.random() >= 0.25:
        faults = tuple(_random_transport_faults(rng, 0.15, declared))
    return EpisodeSpec(
        index=index,
        seed=seed,
        master_seed=master_seed,
        scenario=scenario,
        fault_plan=FaultPlan(faults=faults, name=f"udp-chaos[{index}]"),
        overrides=(),
        n_frames=n_frames,
        max_time=max_time,
        backend="udp",
    )


def generate_episodes(
    master_seed: int, count: int, backend: str = "des",
) -> list[EpisodeSpec]:
    """The first *count* episodes under *master_seed* for *backend*."""
    if count < 1:
        raise ValueError("need at least one episode")
    if backend == "des":
        return [generate_episode(master_seed, index) for index in range(count)]
    if backend == "udp":
        return [generate_transport_episode(master_seed, index)
                for index in range(count)]
    raise ValueError(f"unknown soak backend {backend!r} (use 'des' or 'udp')")

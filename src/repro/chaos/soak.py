"""The chaos soak: randomized episodes under full invariant monitoring.

Each :class:`ChaosPoint` wraps one
:class:`~repro.chaos.episodes.EpisodeSpec` as a sweep work unit: build
the simulation with the invariant suite armed
(``build_simulation(..., run_with_invariants=True)``), wire a
destination :class:`~repro.netlayer.resequencer.Resequencer` so the
ordering monitor sees end-to-end releases, drive a finite workload
through the random fault plan, and report every invariant violation
with its trace window and reproducer seed.

:func:`run_soak` fans N episodes over the parallel sweep pool
(:func:`repro.experiments.parallel.run_sweep`); ``fail_fast`` aborts on
the first violating episode via
:class:`~repro.experiments.parallel.SweepStop` without losing the
violating report.  CLI: ``python -m repro soak``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .. import __version__ as CODE_VERSION
from ..experiments.parallel import SweepStop, _jsonable, run_sweep
from ..netlayer.packet import Datagram
from ..netlayer.resequencer import Resequencer
from ..workloads.generators import FiniteBatch
from ..workloads.scenarios import build_simulation
from .episodes import EpisodeSpec, generate_episodes

__all__ = [
    "ChaosPoint",
    "SoakResult",
    "run_episode",
    "run_soak",
    "run_transport_episode",
]


def run_episode(spec: EpisodeSpec) -> dict[str, Any]:
    """Run one chaos episode under monitors; returns a plain-data report."""
    setup = build_simulation(
        spec.scenario, "lams",
        seed=spec.seed,
        overrides=spec.overrides_dict,
        iframe_errors=spec.iframe_errors,
        fault_plan=spec.fault_plan,
        run_with_invariants=True,
    )
    suite = setup.monitors
    suite.context.update(spec.reproducer())

    # Destination resequencer: DLC delivery order is relaxed, so the
    # ordering invariant is only checkable past this component.
    reseq = Resequencer(tracer=setup.tracer, clock=lambda: setup.sim.now)

    def on_append() -> None:
        payload = setup.delivered[-1]
        reseq.push(
            Datagram(
                source="a", destination="b",
                sequence=payload[1], created_at=setup.sim.now,
            )
        )

    setup.delivered.on_append = on_append
    batch = FiniteBatch(setup.sim, setup.endpoint_a, spec.n_frames)
    batch.start()
    setup.run(until=spec.max_time)
    setup.finalize_monitors()

    violations = [v.as_dict() for v in suite.violations]
    return {
        "episode": spec.index,
        "seed": spec.seed,
        "master_seed": spec.master_seed,
        "scenario": spec.scenario.name,
        "fault_plan": spec.fault_plan.to_dict(),
        "n_frames": spec.n_frames,
        "offered": batch.offered,
        "delivered": len(setup.delivered),
        "dest_released": reseq.delivered,
        "duplicates_dropped": reseq.duplicates_dropped,
        "failures_declared": (
            setup.recovery.failures_declared if setup.recovery else 0
        ),
        "monitor_summary": suite.summary(),
        "violations": violations,
        "ok": not violations,
        "reproducer": spec.reproducer(),
    }


def _synthetic_violation(
    invariant: str, message: str, spec: EpisodeSpec, **detail: Any,
) -> dict[str, Any]:
    """A violation-shaped entry for failures the monitors cannot see
    (wall-clock hangs, cross-backend digest mismatches)."""
    return {
        "invariant": invariant,
        "time": spec.max_time,
        "message": message,
        "detail": {k: repr(v) for k, v in detail.items()},
        "trace_window": [],
        "context": {k: repr(v) for k, v in spec.reproducer().items()},
    }


def run_transport_episode(spec: EpisodeSpec) -> dict[str, Any]:
    """Run one chaos episode as a supervised real-time UDP session.

    The episode's fault plan is injected at the transport layer
    (:class:`~repro.transport.impair.TransportFaultInjector`), the
    session runs under the full invariant suite plus the supervisor's
    reconnect/replay lifecycle, and ``spec.max_time`` acts as the
    per-episode watchdog — a session that hangs past it is reported as
    a synthetic ``transport-watchdog`` violation.  Fault-free episodes
    double as live conformance probes: their transfer is re-run on the
    DES backend and the wire digests must agree.
    """
    from ..transport.conformance import run_des_reference
    from ..transport.supervisor import SupervisorPolicy, run_supervised_transfer

    config = spec.scenario.protocol_config("lams", **spec.overrides_dict)
    # Tight reconnect pacing: soak episodes budget wall seconds, so cap
    # the backoff well below the interactive default and allow enough
    # attempts to ride out the longest generated stall.
    policy = SupervisorPolicy.for_scenario(
        spec.scenario, config=config, max_attempts=8, backoff_cap=0.4,
    )
    result = run_supervised_transfer(
        spec.scenario, "lams", seed=spec.seed,
        n_frames=spec.n_frames, payload_bytes=256,
        timeout=spec.max_time, policy=policy,
        overrides=spec.overrides_dict, fault_plan=spec.fault_plan,
        run_with_invariants=True,
    )
    suite = result.monitors
    if suite is not None:
        suite.context.update(spec.reproducer())
    violations = [v.as_dict() for v in result.violations]
    if result.failure_reason == "watchdog":
        violations.append(_synthetic_violation(
            "transport-watchdog",
            f"session hung past the {spec.max_time:.1f}s episode watchdog "
            f"({result.delivered_unique}/{spec.n_frames} delivered, "
            f"{result.attempts} attempt(s))",
            spec, attempts=result.attempts, reconnects=result.reconnects,
        ))
    if result.completed and result.digest != result.expected_digest:
        violations.append(_synthetic_violation(
            "transport-digest",
            "completed session delivered a payload set that does not "
            "match the offered bytes",
            spec, digest=result.digest, expected=result.expected_digest,
        ))
    conformance: dict[str, Any] | None = None
    if not len(spec.fault_plan):
        if not result.completed:
            violations.append(_synthetic_violation(
                "transport-completion",
                f"fault-free episode failed to complete "
                f"(reason={result.failure_reason!r})",
                spec, failure_reason=result.failure_reason,
            ))
        reference = run_des_reference(
            spec.scenario, "lams", seed=spec.seed,
            n_frames=spec.n_frames, payload_bytes=256,
            overrides=spec.overrides_dict,
        )
        conformance = {
            "des_completed": reference.completed,
            "des_digest": reference.digest,
            "udp_digest": result.digest,
            "match": reference.digest == result.digest,
        }
        if (reference.completed and result.completed
                and reference.digest != result.digest):
            violations.append(_synthetic_violation(
                "des-conformance",
                "fault-free UDP episode's wire digest disagrees with the "
                "DES reference",
                spec, des=reference.digest, udp=result.digest,
            ))
    return {
        "episode": spec.index,
        "seed": spec.seed,
        "master_seed": spec.master_seed,
        "backend": "udp",
        "scenario": spec.scenario.name,
        "fault_plan": spec.fault_plan.to_dict(),
        "n_frames": spec.n_frames,
        "completed": result.completed,
        "failure_reason": result.failure_reason,
        "attempts": result.attempts,
        "reconnects": result.reconnects,
        "delivered": result.delivered_unique,
        "duplicates": result.duplicates,
        "elapsed": result.elapsed,
        "stats": result.stats,
        "conformance": conformance,
        "monitor_summary": suite.summary() if suite is not None else {},
        "violations": violations,
        "ok": not violations,
        "reproducer": spec.reproducer(),
    }


@dataclass(frozen=True)
class ChaosPoint:
    """One episode as a cacheable, picklable sweep work unit."""

    spec: EpisodeSpec

    @property
    def label(self) -> str:
        return self.spec.label

    def cache_key(self) -> dict[str, Any]:
        kwargs = {
            "fault_plan": self.spec.fault_plan.to_dict(),
            "overrides": dict(self.spec.overrides),
            "n_frames": self.spec.n_frames,
            "max_time": self.spec.max_time,
            "episode": self.spec.index,
            "iframe_errors": repr(self.spec.iframe_errors),
        }
        # Only non-DES runs key on the backend, so historical DES soak
        # cache entries stay valid.
        if self.spec.backend != "des":
            kwargs["backend"] = self.spec.backend
        return {
            "experiment_id": "chaos-soak",
            "scenario": dataclasses.asdict(self.spec.scenario),
            "kwargs": kwargs,
            "seed": self.spec.seed,
            "code_version": CODE_VERSION,
        }

    def execute(self) -> Any:
        if self.spec.backend == "udp":
            return _jsonable(run_transport_episode(self.spec))
        return _jsonable(run_episode(self.spec))


@dataclass
class SoakResult:
    """Aggregate outcome of one soak run."""

    master_seed: int
    requested: int
    episodes: list[dict[str, Any]]
    stopped_early: bool = False

    @property
    def completed(self) -> int:
        return len(self.episodes)

    @property
    def violations(self) -> list[dict[str, Any]]:
        out: list[dict[str, Any]] = []
        for episode in self.episodes:
            out.extend(episode.get("violations", ()))
        return out

    @property
    def ok(self) -> bool:
        return not self.violations and not self.stopped_early

    def summary(self) -> dict[str, Any]:
        totals: dict[str, int] = {}
        for episode in self.episodes:
            for name, count in episode.get("monitor_summary", {}).items():
                totals[name] = totals.get(name, 0) + count
        return {
            "master_seed": self.master_seed,
            "episodes_requested": self.requested,
            "episodes_completed": self.completed,
            "stopped_early": self.stopped_early,
            "violations": len(self.violations),
            "violations_by_invariant": totals,
            "ok": self.ok,
        }


def run_soak(
    episodes: int = 50,
    master_seed: int = 0,
    jobs: int = 1,
    fail_fast: bool = False,
    only: Optional[int] = None,
    cache: Any = None,
    progress: Optional[Callable[[dict[str, Any]], None]] = None,
    *,
    pool: Any = None,
    chunksize: int = 0,
    backend: str = "des",
) -> SoakResult:
    """Run *episodes* randomized chaos episodes under full monitoring.

    *only* restricts the run to one episode index (reproducing a
    violation from its report).  *fail_fast* stops scheduling new
    episodes once any violation is seen; the violating episode's report
    is always retained.  *progress*, if given, receives each episode's
    report dict as it completes.  *pool* shares a persistent
    :class:`~repro.experiments.parallel.SweepPool` with other sweeps in
    the same session (the soak rides the same warm workers); *chunksize*
    is the sweep dispatch granularity (0 = adaptive).  *backend*
    selects the soak plane: ``"des"`` episodes run in virtual time,
    ``"udp"`` episodes as supervised real-time loopback sessions with
    transport-level fault injection.
    """
    specs = generate_episodes(master_seed, episodes, backend=backend)
    if only is not None:
        if not 0 <= only < len(specs):
            raise ValueError(
                f"--only index {only} outside the generated range 0..{len(specs) - 1}"
            )
        specs = [specs[only]]
    points = [ChaosPoint(spec) for spec in specs]
    stopped = False

    def on_progress(point: ChaosPoint, from_cache: bool, result: Any = None) -> None:
        nonlocal stopped
        if result is not None and progress is not None:
            progress(result)
        if fail_fast and result is not None and not result.get("ok", True):
            stopped = True
            raise SweepStop(point.label)

    results = run_sweep(points, jobs=jobs, cache=cache, progress=on_progress,
                        pool=pool, chunksize=chunksize)
    reports = [r for r in results if r is not None]
    return SoakResult(
        master_seed=master_seed,
        requested=len(points),
        episodes=reports,
        stopped_early=stopped,
    )

"""Randomized chaos-soak harness over the invariant monitors.

- :mod:`repro.chaos.episodes` — seeded random episode generation
  (scenario × fault plan × workload), exactly reproducible from
  ``(master_seed, index)``.
- :mod:`repro.chaos.soak` — :func:`run_soak`, fanning episodes over
  the parallel sweep pool with the full :mod:`repro.invariants` suite
  armed; ``python -m repro soak`` is the CLI surface.
"""

from .episodes import (
    EpisodeSpec,
    generate_episode,
    generate_episodes,
    generate_transport_episode,
)
from .soak import (
    ChaosPoint,
    SoakResult,
    run_episode,
    run_soak,
    run_transport_episode,
)

__all__ = [
    "ChaosPoint",
    "EpisodeSpec",
    "SoakResult",
    "generate_episode",
    "generate_episodes",
    "generate_transport_episode",
    "run_episode",
    "run_soak",
    "run_transport_episode",
]

"""Experiment harness: runners, the E1–E19 registry, statistical
replication, report generation, and table rendering."""

from . import runner
from .parallel import (
    ExperimentPoint,
    MeasurePoint,
    MeasureSpec,
    ResultCache,
    SweepPool,
    SweepStop,
    parallel_replicate,
    parallel_replicate_all,
    replication_seeds,
    run_experiments_parallel,
    run_sweep,
)
from .registry import (
    REGISTRY,
    SIMULATED_EXPERIMENTS,
    ExperimentResult,
    default_seed,
    experiment_ids,
    run_experiment,
)
from .reporting import format_value, render_series, render_table
from .sweeps import (
    ReplicationSummary,
    StreamingSummary,
    replicate,
    replicate_all,
    welford,
)

__all__ = [
    "REGISTRY",
    "SIMULATED_EXPERIMENTS",
    "ExperimentPoint",
    "ExperimentResult",
    "MeasurePoint",
    "MeasureSpec",
    "ResultCache",
    "StreamingSummary",
    "SweepPool",
    "SweepStop",
    "default_seed",
    "experiment_ids",
    "format_value",
    "parallel_replicate",
    "parallel_replicate_all",
    "render_series",
    "render_table",
    "ReplicationSummary",
    "replicate",
    "replicate_all",
    "replication_seeds",
    "run_experiment",
    "run_experiments_parallel",
    "run_sweep",
    "runner",
    "welford",
]

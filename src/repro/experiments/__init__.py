"""Experiment harness: runners, the E1–E19 registry, statistical
replication, report generation, and table rendering."""

from . import runner
from .registry import REGISTRY, ExperimentResult, experiment_ids, run_experiment
from .reporting import format_value, render_series, render_table
from .sweeps import ReplicationSummary, replicate, replicate_all

__all__ = [
    "REGISTRY",
    "ExperimentResult",
    "experiment_ids",
    "format_value",
    "render_series",
    "render_table",
    "ReplicationSummary",
    "replicate",
    "replicate_all",
    "run_experiment",
    "runner",
]

"""Measured (simulation) experiment runs.

Each function builds a live simulation from a
:class:`~repro.workloads.scenarios.LinkScenario`, drives a workload,
and returns the paper's metrics as a flat dict — the simulation-side
counterpart of the closed-form rows in :mod:`repro.analysis.compare`.
"""

from __future__ import annotations

from typing import Any, Optional

from ..faults.plan import FaultPlan
from ..simulator.engine import Simulator
from ..simulator.errormodel import ErrorModel
from ..workloads.generators import FiniteBatch, SaturatedSource
from ..workloads.scenarios import LinkScenario, build_simulation

__all__ = [
    "measure_batch_transfer",
    "measure_saturated",
    "measure_burst_utilization",
    "measure_failure_recovery",
    "measure_fault_plan",
]


def _build(scenario: LinkScenario, protocol: str, seed: int,
           overrides: Optional[dict] = None,
           iframe_errors: Optional[ErrorModel] = None,
           cframe_errors: Optional[ErrorModel] = None):
    # All protocol-name dispatch lives in the unified factory registry
    # (repro.core.endpoint / repro.api); unknown names raise ValueError.
    return build_simulation(
        scenario, protocol, seed=seed, overrides=overrides,
        iframe_errors=iframe_errors, cframe_errors=cframe_errors,
    )


def measure_batch_transfer(
    scenario: LinkScenario,
    protocol: str,
    n_frames: int,
    seed: int = 0,
    max_time: float = 600.0,
    overrides: Optional[dict] = None,
) -> dict[str, Any]:
    """Transfer a finite batch of N frames; measure total delivery time.

    The low-traffic experiment of Section 4: N frames ready at t=0,
    nothing more afterwards.  The clock stops when the N-th frame is
    delivered at the receiver.
    """
    setup = _build(scenario, protocol, seed, overrides)
    batch = FiniteBatch(setup.sim, setup.endpoint_a, n_frames)
    batch.start()
    if batch.refused:
        raise RuntimeError(
            f"sending buffer refused {batch.refused} frames; raise its capacity"
        )

    completion: dict[str, float] = {}

    def check_done() -> None:
        if len(setup.delivered) >= n_frames and "time" not in completion:
            completion["time"] = setup.sim.now
            setup.sim.stop()

    setup.delivered.on_append = check_done
    setup.sim.run(until=max_time)
    duration = completion.get("time", float("nan"))

    sender = setup.endpoint_a.sender
    iframe_time = scenario.iframe_time
    return {
        "protocol": protocol,
        "n_frames": n_frames,
        "duration": duration,
        "eta": n_frames / duration if duration == duration else float("nan"),
        "efficiency": n_frames * iframe_time / duration if duration == duration else float("nan"),
        "delivered": len(setup.delivered),
        "iframes_sent": sender.iframes_sent,
        "retransmissions": sender.retransmissions,
        "mean_holding_time": sender.mean_holding_time,
        "completed": duration == duration,
    }


def measure_saturated(
    scenario: LinkScenario,
    protocol: str,
    duration: float,
    seed: int = 0,
    overrides: Optional[dict] = None,
    iframe_errors: Optional[ErrorModel] = None,
    cframe_errors: Optional[ErrorModel] = None,
) -> dict[str, Any]:
    """Saturated source for *duration* seconds; measure steady throughput.

    The high-traffic experiment: the sending buffer never runs dry
    (incoming rate pinned at the line rate), so efficiency is
    deliveries per frame-time of elapsed time, and the sending-buffer
    trajectory reveals whether a transparent size exists (finite for
    LAMS-DLC, divergent for SR-HDLC).
    """
    setup = _build(scenario, protocol, seed, overrides, iframe_errors, cframe_errors)
    sender = setup.endpoint_a.sender
    backlog = lambda: sender.pending_count
    source = SaturatedSource(
        setup.sim, setup.endpoint_a, backlog_fn=backlog,
        low_water=256, chunk=512, poll_interval=scenario.iframe_time * 64,
    )
    source.start()
    setup.sim.run(until=duration)

    delivered = len(setup.delivered)
    iframe_time = scenario.iframe_time
    buf_stat = setup.tracer.levels.get(f"{setup.endpoint_a.name}.tx.sendbuf")
    return {
        "protocol": protocol,
        "duration": duration,
        "delivered": delivered,
        "eta": delivered / duration,
        "efficiency": delivered * iframe_time / duration,
        "iframes_sent": sender.iframes_sent,
        "retransmissions": sender.retransmissions,
        "mean_holding_time": sender.mean_holding_time,
        "sendbuf_avg": buf_stat.mean(duration) if buf_stat else float("nan"),
        "sendbuf_max": buf_stat.maximum if buf_stat else float("nan"),
        "offered": source.offered,
        "utilization": setup.link.forward.utilization(duration),
    }


def measure_constant_rate(
    scenario: LinkScenario,
    protocol: str,
    duration: float,
    load: float = 0.9,
    seed: int = 0,
    overrides: Optional[dict] = None,
) -> dict[str, Any]:
    """Constant-rate offered load at *load* × line rate.

    The buffer-divergence experiment: input arrives at a fixed rate
    regardless of protocol state.  A protocol with a transparent buffer
    size (LAMS-DLC, for load below its efficiency) reaches a plateau;
    SR-HDLC's sending buffer grows without bound because every window
    stalls for its resolution time while input keeps arriving.

    Returns the buffer occupancy at the midpoint and end of the run so
    callers can test for growth vs plateau.
    """
    from ..workloads.generators import ConstantRateSource

    setup = _build(scenario, protocol, seed, overrides)
    sender = setup.endpoint_a.sender
    rate = load / scenario.iframe_time
    source = ConstantRateSource(setup.sim, setup.endpoint_a, rate=rate)
    source.start()

    checkpoints: dict[str, int] = {}

    def snapshot_mid() -> None:
        checkpoints["mid"] = sender.occupancy

    setup.sim.schedule_at(duration / 2, snapshot_mid)
    setup.sim.run(until=duration)
    occupancy_end = sender.occupancy
    return {
        "protocol": protocol,
        "load": load,
        "duration": duration,
        "delivered": len(setup.delivered),
        "efficiency": len(setup.delivered) * scenario.iframe_time / duration,
        "occupancy_mid": checkpoints.get("mid", 0),
        "occupancy_end": occupancy_end,
        "growth": occupancy_end - checkpoints.get("mid", 0),
        "offered": source.offered,
    }


def measure_burst_utilization(
    scenario: LinkScenario,
    protocol: str,
    duration: float,
    mean_burst: float,
    mean_gap: float,
    bad_ber: float = 1e-3,
    seed: int = 0,
    overrides: Optional[dict] = None,
) -> dict[str, Any]:
    """Saturated transfer over a Gilbert–Elliott burst channel.

    The Section 3.3 burst scenario: mispointing episodes of mean length
    *mean_burst* seconds corrupt nearly everything in flight.  The
    cumulative-NAK condition ``C_depth * W_cp > L_burst`` decides
    whether LAMS-DLC rides the burst out.
    """
    # Registry specs, not instances: the resolver stamps out one fresh
    # GilbertElliottChannel per channel direction, which the model's
    # FIFO-time guard requires (a shared instance would see the two
    # directions' interleaved, non-monotonic frame times).
    burst_model = (
        "gilbert-elliott",
        {
            "good_ber": scenario.iframe_ber,
            "bad_ber": bad_ber,
            "mean_good": mean_gap,
            "mean_bad": mean_burst,
            "bit_rate": scenario.bit_rate,
        },
    )
    result = measure_saturated(
        scenario, protocol, duration, seed=seed, overrides=overrides,
        iframe_errors=burst_model, cframe_errors=burst_model,
    )
    result["mean_burst"] = mean_burst
    result["covered"] = (
        scenario.cumulation_depth * scenario.checkpoint_interval > mean_burst
    )
    return result


def measure_failure_recovery(
    scenario: LinkScenario,
    outage_start: float,
    outage_duration: float,
    total_time: float,
    n_frames: int = 5000,
    seed: int = 0,
    overrides: Optional[dict] = None,
) -> dict[str, Any]:
    """LAMS-DLC behaviour across a link outage (Section 3.2).

    Cuts both directions at *outage_start* for *outage_duration*
    seconds while a batch transfer is in flight, then measures: whether
    enforced recovery fired, whether a (premature) failure was
    declared, and whether every frame was still delivered (zero loss) —
    with duplicate delivery counted separately, since the paper admits
    duplication in this corner.
    """
    setup = _build(scenario, "lams", seed, overrides)
    batch = FiniteBatch(setup.sim, setup.endpoint_a, n_frames)
    batch.start()
    setup.sim.schedule_at(outage_start, setup.link.down)
    setup.sim.schedule_at(outage_start + outage_duration, setup.link.up)
    setup.sim.run(until=total_time)

    sender = setup.endpoint_a.sender
    payload_ids = [p[1] for p in setup.delivered]
    unique = set(payload_ids)
    # Zero-loss accounting: a frame is only *lost* if it was neither
    # delivered nor still held by the sender.  On a declared failure the
    # sender retains every unresolved frame for the network layer
    # (Section 3.3: the ends "can recover I-frames without loss").
    buffered_ids = {p[1] for p in sender.held_payloads()}
    accounted = unique | buffered_ids
    return {
        "outage_duration": outage_duration,
        "request_naks_sent": sender.request_naks_sent,
        "failure_declared": sender.failed,
        "recovered": not sender.failed,
        "delivered_total": len(payload_ids),
        "delivered_unique": len(unique),
        "duplicates": len(payload_ids) - len(unique),
        "buffered_at_sender": len(buffered_ids),
        "lost": n_frames - len(accounted),
        "retransmissions": sender.retransmissions,
    }


def measure_fault_plan(
    scenario: LinkScenario,
    fault_plan: FaultPlan,
    total_time: float,
    n_frames: int = 3000,
    seed: int = 0,
    overrides: Optional[dict] = None,
    protocol: str = "lams",
) -> dict[str, Any]:
    """Batch transfer under a declarative :class:`FaultPlan`.

    The generalisation of :func:`measure_failure_recovery`: instead of
    one hard-coded both-ways cut, the plan may mix outages, feedback
    blackouts, BER storms, and control-frame corruption.  Recovery
    metrics come from the fault layer's
    :class:`~repro.faults.metrics.RecoveryMetrics` (detection latency,
    frames lost per outage, post-recovery delay), merged with the same
    zero-loss accounting the outage experiment uses.  Everything is
    driven by the simulation's seeded streams, so the same (plan, seed)
    returns bit-identical numbers.
    """
    setup = build_simulation(
        scenario, protocol, seed=seed, overrides=overrides, fault_plan=fault_plan,
    )
    batch = FiniteBatch(setup.sim, setup.endpoint_a, n_frames)
    batch.start()
    setup.sim.run(until=total_time)

    sender = setup.endpoint_a.sender
    recovery = setup.recovery
    payload_ids = [p[1] for p in setup.delivered]
    unique = set(payload_ids)
    buffered_ids = {p[1] for p in sender.held_payloads()}
    accounted = unique | buffered_ids
    result: dict[str, Any] = {
        "plan": fault_plan.name,
        "faults": len(fault_plan),
        "failure_declared": sender.failed,
        "recovered": not sender.failed,
        "request_naks_sent": sender.request_naks_sent,
        "retransmissions": sender.retransmissions,
        "delivered_total": len(payload_ids),
        "delivered_unique": len(unique),
        "duplicates": len(payload_ids) - len(unique),
        "buffered_at_sender": len(buffered_ids),
        "lost": n_frames - len(accounted),
    }
    if recovery is not None:
        result.update(recovery.summary())
        if recovery.outages:
            # Single-outage plans are the common case; surface the first
            # outage's timeline as flat columns.
            result.update(recovery.outages[0].as_row())
    return result

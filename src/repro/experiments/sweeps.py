"""Statistical replication for simulation measurements.

Single-seed simulation numbers are point realisations; the paper's
claims are about means.  This module runs a measurement across
independent seeds and reports mean, standard deviation, and a normal-
approximation confidence interval — the difference between "we saw
0.91 once" and "0.91 ± 0.01 over ten seeds".

Used by benchmark E20 and available for any runner function::

    from repro.experiments.sweeps import replicate
    from repro.experiments.runner import measure_saturated

    summary = replicate(
        lambda seed: measure_saturated(scenario, "lams", 1.0, seed=seed),
        metric="efficiency", seeds=range(10),
    )
    print(summary.mean, summary.half_width)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

__all__ = ["ReplicationSummary", "replicate", "replicate_all"]

# Two-sided 95% normal quantile.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean / spread of one metric across independent replications."""

    metric: str
    samples: tuple[float, ...]

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (n-1); 0 for a single sample."""
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((value - mean) ** 2 for value in self.samples) / (len(self.samples) - 1)
        )

    @property
    def half_width(self) -> float:
        """95% confidence half-width (normal approximation)."""
        if len(self.samples) < 2:
            return 0.0
        return _Z95 * self.stdev / math.sqrt(len(self.samples))

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (nan at mean 0)."""
        mean = self.mean
        return self.half_width / mean if mean else float("nan")

    def overlaps(self, other: "ReplicationSummary") -> bool:
        """True if the two 95% intervals overlap (no clear separation)."""
        return self.low <= other.high and other.low <= self.high

    def __repr__(self) -> str:
        return (
            f"ReplicationSummary({self.metric}: {self.mean:.6g} "
            f"± {self.half_width:.2g}, n={self.count})"
        )


def replicate(
    measure: Callable[[int], Mapping[str, float]],
    metric: str,
    seeds: Iterable[int],
) -> ReplicationSummary:
    """Run ``measure(seed)`` per seed and summarise one metric."""
    samples = []
    for seed in seeds:
        result = measure(seed)
        value = result[metric]
        if value != value:  # NaN guard
            raise ValueError(f"measurement returned NaN for seed {seed}")
        samples.append(float(value))
    if not samples:
        raise ValueError("at least one seed is required")
    return ReplicationSummary(metric=metric, samples=tuple(samples))


def replicate_all(
    measure: Callable[[int], Mapping[str, float]],
    metrics: Sequence[str],
    seeds: Iterable[int],
) -> dict[str, ReplicationSummary]:
    """Summarise several metrics from the same replication runs."""
    seed_list = list(seeds)
    if not seed_list:
        raise ValueError("at least one seed is required")
    collected: dict[str, list[float]] = {metric: [] for metric in metrics}
    for seed in seed_list:
        result = measure(seed)
        for metric in metrics:
            collected[metric].append(float(result[metric]))
    return {
        metric: ReplicationSummary(metric=metric, samples=tuple(values))
        for metric, values in collected.items()
    }

"""Statistical replication for simulation measurements.

Single-seed simulation numbers are point realisations; the paper's
claims are about means.  This module runs a measurement across
independent seeds and reports mean, standard deviation, and a normal-
approximation confidence interval — the difference between "we saw
0.91 once" and "0.91 ± 0.01 over ten seeds".

Used by benchmark E20 and available for any runner function::

    from repro.experiments.sweeps import replicate
    from repro.experiments.runner import measure_saturated

    summary = replicate(
        lambda seed: measure_saturated(scenario, "lams", 1.0, seed=seed),
        metric="efficiency", seeds=range(10),
    )
    print(summary.mean, summary.half_width)

Both summary types — :class:`ReplicationSummary` (batch, holds every
sample) and :class:`StreamingSummary` (incremental, O(1) memory) —
compute mean and spread through the same :func:`welford` fold, one
sample at a time in sample order.  Feeding the same values in the same
order therefore produces *bit-identical* statistics from either type;
``tests/test_sweeps.py`` proves the equivalence with Hypothesis.  The
parallel sweep engine exploits this to aggregate thousand-point sweeps
without holding every sample in memory
(:func:`repro.experiments.parallel.parallel_replicate_all` with
``streaming=True``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "ReplicationSummary",
    "StreamingSummary",
    "replicate",
    "replicate_all",
    "welford",
]

# Two-sided 95% normal quantile.
_Z95 = 1.959963984540054


def welford(values: Iterable[float]) -> tuple[int, float, float]:
    """The canonical ``(count, mean, M2)`` fold over *values* in order.

    Welford's recurrence: numerically stable (no catastrophic
    cancellation at large means) and incremental.  Every statistic in
    this module derives from this exact operation sequence, which is
    what makes streamed and batch aggregation bit-identical — not
    merely close — when the fold order matches.
    """
    count = 0
    mean = 0.0
    m2 = 0.0
    for value in values:
        count += 1
        delta = value - mean
        mean += delta / count
        m2 += delta * (value - mean)
    return count, mean, m2


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean / spread of one metric across independent replications."""

    metric: str
    samples: tuple[float, ...]

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return welford(self.samples)[1]

    @property
    def stdev(self) -> float:
        """Sample standard deviation (n-1); 0 for a single sample."""
        count, _, m2 = welford(self.samples)
        if count < 2:
            return 0.0
        return math.sqrt(m2 / (count - 1))

    @property
    def half_width(self) -> float:
        """95% confidence half-width (normal approximation)."""
        if len(self.samples) < 2:
            return 0.0
        return _Z95 * self.stdev / math.sqrt(len(self.samples))

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (nan at mean 0)."""
        mean = self.mean
        return self.half_width / mean if mean else float("nan")

    def overlaps(self, other: "ReplicationSummary") -> bool:
        """True if the two 95% intervals overlap (no clear separation)."""
        return self.low <= other.high and other.low <= self.high

    def __repr__(self) -> str:
        return (
            f"ReplicationSummary({self.metric}: {self.mean:.6g} "
            f"± {self.half_width:.2g}, n={self.count})"
        )


class StreamingSummary:
    """An incrementally-built :class:`ReplicationSummary` twin.

    Holds only ``(count, mean, M2)`` — constant memory however many
    samples flow through — yet exposes the same statistics API.  Values
    :meth:`push`-ed in sample order yield statistics bit-identical to a
    :class:`ReplicationSummary` over the same tuple, because both run
    the identical :func:`welford` recurrence.

    :meth:`merge` combines two accumulators with the Chan et al.
    parallel formula; the merged moments are mathematically exact but
    fold values in a different order, so merged results are equal to
    within rounding, not bit-identical — use a single seed-order stream
    (as the sweep engine does) when exact reproducibility matters.
    """

    __slots__ = ("metric", "count", "_mean", "_m2")

    def __init__(self, metric: str = "", count: int = 0,
                 mean: float = 0.0, m2: float = 0.0) -> None:
        self.metric = metric
        self.count = count
        self._mean = mean
        self._m2 = m2

    @classmethod
    def from_samples(cls, metric: str, samples: Iterable[float]) -> "StreamingSummary":
        summary = cls(metric)
        for value in samples:
            summary.push(value)
        return summary

    def push(self, value: float) -> None:
        """Fold one sample in; the same ops :func:`welford` performs."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def merge(self, other: "StreamingSummary") -> None:
        """Absorb *other*'s moments (Chan et al. pairwise combination)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self._mean, self._m2 = other.count, other._mean, other._m2
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def stdev(self) -> float:
        """Sample standard deviation (n-1); 0 below two samples."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))

    @property
    def half_width(self) -> float:
        """95% confidence half-width (normal approximation)."""
        if self.count < 2:
            return 0.0
        return _Z95 * self.stdev / math.sqrt(self.count)

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (nan at mean 0)."""
        return self.half_width / self.mean if self.mean else float("nan")

    def overlaps(self, other) -> bool:
        """True if the two 95% intervals overlap (no clear separation)."""
        return self.low <= other.high and other.low <= self.high

    def __repr__(self) -> str:
        return (
            f"StreamingSummary({self.metric}: {self.mean:.6g} "
            f"± {self.half_width:.2g}, n={self.count})"
        )


def replicate(
    measure: Callable[[int], Mapping[str, float]],
    metric: str,
    seeds: Iterable[int],
) -> ReplicationSummary:
    """Run ``measure(seed)`` per seed and summarise one metric."""
    samples = []
    for seed in seeds:
        result = measure(seed)
        value = result[metric]
        if value != value:  # NaN guard
            raise ValueError(f"measurement returned NaN for seed {seed}")
        samples.append(float(value))
    if not samples:
        raise ValueError("at least one seed is required")
    return ReplicationSummary(metric=metric, samples=tuple(samples))


def replicate_all(
    measure: Callable[[int], Mapping[str, float]],
    metrics: Sequence[str],
    seeds: Iterable[int],
) -> dict[str, ReplicationSummary]:
    """Summarise several metrics from the same replication runs."""
    seed_list = list(seeds)
    if not seed_list:
        raise ValueError("at least one seed is required")
    collected: dict[str, list[float]] = {metric: [] for metric in metrics}
    for seed in seed_list:
        result = measure(seed)
        for metric in metrics:
            collected[metric].append(float(result[metric]))
    return {
        metric: ReplicationSummary(metric=metric, samples=tuple(values))
        for metric, values in collected.items()
    }

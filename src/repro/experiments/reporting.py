"""Fixed-width table rendering for experiment output.

The benchmark harness prints the paper-shaped series as plain-text
tables so results are readable straight from ``pytest -s`` output and
diffable across runs.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Sequence

__all__ = ["format_value", "render_table", "render_series"]


def format_value(value: Any, precision: int = 4) -> str:
    """Compact human rendering of one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    rows: Sequence[dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render dict-rows as an aligned fixed-width table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        {col: format_value(row.get(col, ""), precision) for col in columns}
        for row in rows
    ]
    widths = {
        col: max(len(col), *(len(r[col]) for r in rendered)) for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.rjust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[col] for col in columns))
    for r in rendered:
        lines.append("  ".join(r[col].rjust(widths[col]) for col in columns))
    return "\n".join(lines)


def render_series(
    x_name: str,
    x_values: Iterable[Any],
    series: dict[str, Iterable[Any]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render parallel series (one x column, many y columns) as a table."""
    columns = [x_name, *series.keys()]
    value_lists = [list(values) for values in series.values()]
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, Any] = {x_name: x}
        for name, values in zip(series.keys(), value_lists):
            row[name] = values[i]
        rows.append(row)
    return render_table(rows, columns=columns, title=title, precision=precision)

"""Parallel experiment execution: process pools, seed streams, caching.

The paper's evaluation is Monte-Carlo replication — the same
measurement across many independent seeds, BERs, and window settings —
and every replication is an isolated discrete-event simulation with no
shared state.  This module fans that work out over a
``multiprocessing`` pool while keeping three properties the serial
path guarantees:

**Determinism.**  Each replication derives its RNG streams from its own
seed (:mod:`repro.simulator.rng`), so a simulation's result depends
only on ``(spec, seed)`` — never on which process ran it or in what
order.  Parallel sweeps therefore produce *bit-identical* summaries to
serial execution on the same seeds.  :func:`replication_seeds` derives
the per-replication seeds from one master seed via
:func:`~repro.simulator.rng.derive_seed`, so a sweep's seed list is
itself stable across runs and machines.

**Free re-runs.**  Results are cached on disk as JSON, keyed by
``(experiment_id, scenario, seed, code_version)``; re-running an
unchanged point costs one file read and zero simulations.  JSON floats
round-trip exactly (shortest-repr encoding), so cached summaries are
byte-identical to freshly computed ones.

**Observability.**  :func:`run_sweep` reports per-worker progress and
timing through :mod:`repro.simulator.trace`-style counters and sample
statistics on a :class:`~repro.simulator.trace.Tracer`.

Entry points:

- :func:`parallel_replicate` / :func:`parallel_replicate_all` — the
  parallel counterparts of :func:`repro.experiments.sweeps.replicate`
  and :func:`~repro.experiments.sweeps.replicate_all`, taking a
  picklable :class:`MeasureSpec` instead of a closure.
- :func:`run_experiments_parallel` — fan registry experiments (E1–E20)
  out across processes.
- :func:`run_sweep` — the generic engine over any sequence of points.

CLI: ``python -m repro sweep`` (``--jobs N``, ``--cache-dir``,
``--no-cache``).  Benchmarks opt in via the ``REPRO_SWEEP_JOBS``
environment variable (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import itertools
import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from .. import __version__ as CODE_VERSION
from ..simulator.rng import derive_seed
from ..simulator.trace import Tracer
from ..workloads.scenarios import LinkScenario
from . import runner as _runner_module
from .registry import REGISTRY, ExperimentResult, run_experiment
from .sweeps import ReplicationSummary

__all__ = [
    "ExperimentPoint",
    "MeasurePoint",
    "MeasureSpec",
    "ResultCache",
    "SweepStop",
    "parallel_replicate",
    "parallel_replicate_all",
    "replication_seeds",
    "run_experiments_parallel",
    "run_sweep",
]


class SweepStop(Exception):
    """Raised by a ``progress`` callback to end a sweep early.

    :func:`run_sweep` catches it, stops dispatching further points, and
    returns the partial result list (unexecuted points stay ``None``).
    The chaos soak runner's ``--fail-fast`` uses this to abort on the
    first invariant violation without losing completed episodes.
    """


# ---------------------------------------------------------------------------
# Deterministic seed streams
# ---------------------------------------------------------------------------


def replication_seeds(
    master_seed: int, count: int, name: str = "replication"
) -> list[int]:
    """*count* independent replication seeds under one master seed.

    Derived with :func:`repro.simulator.rng.derive_seed` from the
    stable stream names ``"{name}[i]"``, so the list is identical
    across runs, platforms, and serial/parallel execution — the
    property that makes cached and parallel sweeps comparable.
    """
    if count < 1:
        raise ValueError("at least one replication is required")
    return [derive_seed(master_seed, f"{name}[{i}]") for i in range(count)]


# ---------------------------------------------------------------------------
# Work specifications (picklable, cache-keyable)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MeasureSpec:
    """A picklable description of one runner measurement.

    The serial :func:`~repro.experiments.sweeps.replicate` takes an
    arbitrary ``measure(seed)`` closure; closures do not cross process
    boundaries, so the parallel path names the runner function instead:
    *runner* is an attribute of :mod:`repro.experiments.runner`
    (``"measure_saturated"``, ``"measure_batch_transfer"``, ...),
    called as ``fn(scenario, protocol, seed=seed, **kwargs)`` (or
    without *protocol* for runners that fix it, like
    ``measure_failure_recovery``).
    """

    runner: str
    scenario: LinkScenario
    protocol: Optional[str] = None
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        runner: str,
        scenario: LinkScenario,
        protocol: Optional[str] = None,
        **kwargs: Any,
    ) -> "MeasureSpec":
        """Build a spec; keyword arguments are canonicalised (sorted)."""
        if not hasattr(_runner_module, runner):
            raise ValueError(
                f"unknown runner {runner!r}; not in repro.experiments.runner"
            )
        return cls(runner, scenario, protocol, tuple(sorted(kwargs.items())))

    @property
    def experiment_id(self) -> str:
        """The cache-key identity of this measurement family."""
        if self.protocol is None:
            return self.runner
        return f"{self.runner}:{self.protocol}"

    def run(self, seed: int) -> Mapping[str, Any]:
        """Execute the measurement at *seed* (in any process)."""
        fn = getattr(_runner_module, self.runner)
        kwargs = dict(self.kwargs)
        if self.protocol is None:
            return fn(self.scenario, seed=seed, **kwargs)
        return fn(self.scenario, self.protocol, seed=seed, **kwargs)

    def measure(self) -> Callable[[int], Mapping[str, Any]]:
        """A serial-``replicate``-compatible ``measure(seed)`` callable."""
        return self.run


@dataclass(frozen=True)
class MeasurePoint:
    """One cacheable unit of work: a :class:`MeasureSpec` at one seed."""

    spec: MeasureSpec
    seed: int

    @property
    def label(self) -> str:
        return f"{self.spec.experiment_id}@{self.spec.scenario.name} seed={self.seed}"

    def cache_key(self) -> dict[str, Any]:
        return {
            "experiment_id": self.spec.experiment_id,
            "scenario": dataclasses.asdict(self.spec.scenario),
            "kwargs": dict(self.spec.kwargs),
            "seed": self.seed,
            "code_version": CODE_VERSION,
        }

    def execute(self) -> Any:
        return _jsonable(self.spec.run(self.seed))


@dataclass(frozen=True)
class ExperimentPoint:
    """One registry experiment (E1–E20) as a cacheable work unit."""

    experiment_id: str
    seed: int
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        experiment_id: str,
        seed: Optional[int] = None,
        **kwargs: Any,
    ) -> "ExperimentPoint":
        """Build a point, resolving the experiment's default seed.

        Every registry function accepts an explicit ``seed`` kwarg; when
        *seed* is ``None`` the function's own default is used, so the
        cache key is well-defined either way.
        """
        try:
            fn = REGISTRY[experiment_id]
        except KeyError:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
            ) from None
        if seed is None:
            parameter = inspect.signature(fn).parameters.get("seed")
            if parameter is None or parameter.default is inspect.Parameter.empty:
                seed = 0
            else:
                seed = parameter.default
        return cls(experiment_id, int(seed), tuple(sorted(kwargs.items())))

    @property
    def label(self) -> str:
        return f"{self.experiment_id} seed={self.seed}"

    def cache_key(self) -> dict[str, Any]:
        kwargs = dict(self.kwargs)
        scenario = kwargs.pop("scenario", None)
        return {
            "experiment_id": self.experiment_id,
            "scenario": dataclasses.asdict(scenario) if scenario is not None else None,
            "kwargs": kwargs,
            "seed": self.seed,
            "code_version": CODE_VERSION,
        }

    def execute(self) -> Any:
        result = run_experiment(
            self.experiment_id, seed=self.seed, **dict(self.kwargs)
        )
        return {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "rows": _jsonable(result.rows),
            "notes": result.notes,
        }


def _jsonable(value: Any) -> Any:
    """Coerce a result to plain JSON types (numpy scalars included)."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item") and not isinstance(value, (bytes, bytearray)):
        # numpy scalar (np.float64, np.int64, np.bool_, ...)
        return _jsonable(value.item())
    return str(value)


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """JSON file cache keyed by (experiment_id, scenario, seed, version).

    One file per point under *root*, named by the SHA-256 of the
    canonical key; the key itself is stored alongside the result so a
    (vanishingly unlikely) digest collision is detected, not served.
    Writes are atomic (unique ``O_EXCL`` temp file + ``os.replace``),
    so a sweep killed mid-write never leaves a torn entry; temp files
    orphaned by a killed writer are swept out the next time a cache is
    opened on the same directory (once they are old enough that no
    live writer can still own them).
    """

    #: Orphaned ``*.tmp.*`` files older than this are removed on open.
    #: Generously longer than any single point's write so a concurrent
    #: sweep's in-flight temp file is never yanked out from under it.
    STALE_TMP_SECONDS = 3600.0

    _tmp_ids = itertools.count()

    def __init__(self, root: str, code_version: str = CODE_VERSION) -> None:
        self.root = str(root)
        self.code_version = code_version
        os.makedirs(self.root, exist_ok=True)
        self.stale_tmp_removed = self._sweep_stale_tmp()
        self.hits = 0
        self.misses = 0

    def _sweep_stale_tmp(self) -> int:
        """Delete old orphaned temp files; returns how many went."""
        cutoff = time.time() - self.STALE_TMP_SECONDS
        removed = 0
        for name in os.listdir(self.root):
            if ".json.tmp." not in name:
                continue
            path = os.path.join(self.root, name)
            try:
                if os.path.getmtime(path) < cutoff:
                    os.unlink(path)
                    removed += 1
            except OSError:
                # Raced with another opener or a finishing writer.
                continue
        return removed

    # -- keying ----------------------------------------------------------

    @staticmethod
    def _canonical(key: Mapping[str, Any]) -> str:
        return json.dumps(key, sort_keys=True, default=str)

    def path_for(self, point: Any) -> str:
        """The cache file path for *point* (which may not exist yet)."""
        digest = hashlib.sha256(
            self._canonical(point.cache_key()).encode("utf-8")
        ).hexdigest()
        return os.path.join(self.root, f"{digest}.json")

    # -- access ----------------------------------------------------------

    def get(self, point: Any) -> Optional[Any]:
        """The cached result for *point*, or None on a miss."""
        path = self.path_for(point)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                stored = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        if stored.get("key") != json.loads(self._canonical(point.cache_key())):
            self.misses += 1
            return None
        self.hits += 1
        return stored["result"]

    def put(self, point: Any, result: Any) -> None:
        """Store *result* for *point* atomically."""
        path = self.path_for(point)
        payload = {
            "key": json.loads(self._canonical(point.cache_key())),
            "result": result,
        }
        # Unique temp name per writer: pid alone is not enough (pid
        # reuse across runs, threads within one process), so add a
        # per-process counter and create with O_EXCL so a collision
        # surfaces as a retry instead of two writers sharing a file.
        pid = os.getpid()
        while True:
            tmp = f"{path}.tmp.{pid}.{next(self._tmp_ids)}"
            try:
                fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
                break
            except FileExistsError:
                continue
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for n in os.listdir(self.root) if n.endswith(".json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for name in os.listdir(self.root):
            if name.endswith(".json"):
                os.unlink(os.path.join(self.root, name))
                removed += 1
        return removed


# ---------------------------------------------------------------------------
# The sweep engine
# ---------------------------------------------------------------------------


def _progress_adapter(
    progress: Optional[Callable[..., None]],
) -> Callable[[Any, bool, Any], None]:
    """Normalise a progress callback to the (point, from_cache, result)
    calling convention, keeping 2-parameter callbacks working."""
    if progress is None:
        return lambda point, from_cache, result: None
    try:
        takes_result = len(inspect.signature(progress).parameters) >= 3
    except (TypeError, ValueError):
        takes_result = False
    if takes_result:
        return progress
    return lambda point, from_cache, result: progress(point, from_cache)


def _execute_point(point: Any) -> tuple[Any, int, float]:
    """Worker entry: run one point, reporting (result, pid, seconds)."""
    start = time.perf_counter()
    result = point.execute()
    return result, os.getpid(), time.perf_counter() - start


def _pool_context():
    """Prefer fork (cheap, inherits sys.path); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_sweep(
    points: Sequence[Any],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[Tracer] = None,
    progress: Optional[Callable[[Any, bool], None]] = None,
) -> list[Any]:
    """Execute *points*, in order, over up to *jobs* worker processes.

    Cached points are answered from *cache* without touching the pool
    (a fully warm sweep executes **zero** simulations); fresh results
    are written back.  Counters on *stats* (a
    :class:`~repro.simulator.trace.Tracer`):

    - ``sweep.points`` / ``sweep.executed`` / ``sweep.cache_hits``
    - ``sweep.worker.<pid>.tasks`` — per-worker task counts
    - samples ``sweep.task_seconds`` and ``sweep.worker.<pid>.seconds``

    *progress*, if given, is called as ``progress(point, from_cache)``
    after each point resolves — or ``progress(point, from_cache,
    result)`` when the callback accepts a third parameter; raising
    :class:`SweepStop` from it ends the sweep early with the partial
    results.  Results come back in input order regardless of
    completion order.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    points = list(points)
    stats = stats if stats is not None else Tracer()
    results: list[Any] = [None] * len(points)
    notify = _progress_adapter(progress)

    pending: list[tuple[int, Any]] = []
    try:
        for index, point in enumerate(points):
            stats.count("sweep.points")
            cached = cache.get(point) if cache is not None else None
            if cached is not None:
                results[index] = cached
                stats.count("sweep.cache_hits")
                notify(point, True, cached)
            else:
                pending.append((index, point))
    except SweepStop:
        return results

    if not pending:
        return results

    def _record(index: int, point: Any, payload: tuple[Any, int, float]) -> None:
        result, worker, elapsed = payload
        results[index] = result
        stats.count("sweep.executed")
        stats.count(f"sweep.worker.{worker}.tasks")
        stats.sample("sweep.task_seconds", elapsed)
        stats.sample(f"sweep.worker.{worker}.seconds", elapsed)
        if cache is not None:
            cache.put(point, result)
        notify(point, False, result)

    try:
        if jobs > 1 and len(pending) > 1:
            context = _pool_context()
            # Leaving the with-block terminates outstanding workers, so
            # a SweepStop raised mid-iteration cancels undispatched work.
            with context.Pool(processes=min(jobs, len(pending))) as pool:
                payloads = pool.imap(
                    _execute_point, [point for _, point in pending], chunksize=1
                )
                for (index, point), payload in zip(pending, payloads):
                    _record(index, point, payload)
        else:
            for index, point in pending:
                _record(index, point, _execute_point(point))
    except SweepStop:
        pass
    return results


# ---------------------------------------------------------------------------
# Replication over a pool (the parallel replicate / replicate_all)
# ---------------------------------------------------------------------------


def parallel_replicate(
    spec: MeasureSpec,
    metric: str,
    seeds: Iterable[int],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[Tracer] = None,
    progress: Optional[Callable[[Any, bool], None]] = None,
) -> ReplicationSummary:
    """Parallel :func:`~repro.experiments.sweeps.replicate`.

    Bit-identical to the serial version on the same seeds: sample order
    follows seed order, values are the same per-seed simulations, and
    NaN measurements raise the same ``ValueError``.
    """
    summaries = parallel_replicate_all(
        spec, [metric], seeds, jobs=jobs, cache=cache, stats=stats,
        progress=progress, _nan_guard=True,
    )
    return summaries[metric]


def parallel_replicate_all(
    spec: MeasureSpec,
    metrics: Sequence[str],
    seeds: Iterable[int],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[Tracer] = None,
    progress: Optional[Callable[[Any, bool], None]] = None,
    _nan_guard: bool = False,
) -> dict[str, ReplicationSummary]:
    """Parallel :func:`~repro.experiments.sweeps.replicate_all`.

    One simulation per seed feeds every metric, exactly like the serial
    version; summaries are bit-identical to serial execution.
    """
    seed_list = list(seeds)
    if not seed_list:
        raise ValueError("at least one seed is required")
    points = [MeasurePoint(spec, seed) for seed in seed_list]
    results = run_sweep(points, jobs=jobs, cache=cache, stats=stats,
                        progress=progress)
    collected: dict[str, list[float]] = {metric: [] for metric in metrics}
    for seed, result in zip(seed_list, results):
        for metric in metrics:
            value = result[metric]
            if _nan_guard and value != value:
                raise ValueError(f"measurement returned NaN for seed {seed}")
            collected[metric].append(float(value))
    return {
        metric: ReplicationSummary(metric=metric, samples=tuple(values))
        for metric, values in collected.items()
    }


# ---------------------------------------------------------------------------
# Registry fan-out
# ---------------------------------------------------------------------------


def run_experiments_parallel(
    experiment_ids: Sequence[str],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[Tracer] = None,
    seed: Optional[int] = None,
    progress: Optional[Callable[[Any, bool], None]] = None,
) -> dict[str, ExperimentResult]:
    """Run registry experiments across a process pool.

    Each experiment is one work unit (the E-series functions are
    internally serial); *seed* overrides every experiment's seed, or
    each keeps its registered default.  Results preserve the requested
    order and reconstruct as :class:`ExperimentResult`.
    """
    points = [ExperimentPoint.create(eid, seed=seed) for eid in experiment_ids]
    payloads = run_sweep(points, jobs=jobs, cache=cache, stats=stats,
                         progress=progress)
    out: dict[str, ExperimentResult] = {}
    for point, payload in zip(points, payloads):
        out[point.experiment_id] = ExperimentResult(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            rows=payload["rows"],
            notes=payload["notes"],
        )
    return out

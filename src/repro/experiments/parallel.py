"""Parallel experiment execution: process pools, seed streams, caching.

The paper's evaluation is Monte-Carlo replication — the same
measurement across many independent seeds, BERs, and window settings —
and every replication is an isolated discrete-event simulation with no
shared state.  This module fans that work out over a
``multiprocessing`` pool while keeping three properties the serial
path guarantees:

**Determinism.**  Each replication derives its RNG streams from its own
seed (:mod:`repro.simulator.rng`), so a simulation's result depends
only on ``(spec, seed)`` — never on which process ran it or in what
order.  Parallel sweeps therefore produce *bit-identical* summaries to
serial execution on the same seeds.  :func:`replication_seeds` derives
the per-replication seeds from one master seed via
:func:`~repro.simulator.rng.derive_seed`, so a sweep's seed list is
itself stable across runs and machines.

**Free re-runs.**  Results land in a sharded on-disk cache
(:class:`ResultCache`), keyed by ``(experiment_id, scenario, seed,
code_version)``: append-only JSON-lines shard files with an in-memory
index, so a fully warm 1000-point re-run costs one sequential index
read instead of 1000 file opens.  JSON floats round-trip exactly
(shortest-repr encoding), so cached summaries are byte-identical to
freshly computed ones.  Legacy one-file-per-point (v1) caches are read
transparently; ``python -m repro cache migrate`` upgrades in place.

**Observability.**  :func:`run_sweep` reports per-worker progress and
timing through :mod:`repro.simulator.trace`-style counters and sample
statistics on a :class:`~repro.simulator.trace.Tracer`.

The sweep plane itself is engineered for throughput:

- :class:`SweepPool` is a *persistent warm pool* — workers are created
  once (with the registry, runner, and scenario modules pre-imported)
  and reused across any number of :func:`run_sweep` calls, so a
  multi-protocol sweep or a chaos soak pays pool start-up exactly once.
- Points are dispatched with ``imap_unordered`` under an adaptive
  chunk size (``chunksize=0``), amortising one IPC round-trip over
  many points instead of paying it per point.
- Workers ship results back as compact slots-tuples ``(index, pid,
  seconds, json)`` — one pre-encoded JSON string per result instead of
  a pickled dict tree; the parent reuses the encoding verbatim for the
  cache append.
- With ``keep_results=False`` (used by ``parallel_replicate_all(...,
  streaming=True)``), results are folded into
  :class:`~repro.experiments.sweeps.StreamingSummary` accumulators as
  they arrive, in seed order, so sweep memory is O(points in flight)
  rather than O(total points) — and still bit-identical to batch
  aggregation (see :func:`repro.experiments.sweeps.welford`).

Entry points:

- :func:`parallel_replicate` / :func:`parallel_replicate_all` — the
  parallel counterparts of :func:`repro.experiments.sweeps.replicate`
  and :func:`~repro.experiments.sweeps.replicate_all`, taking a
  picklable :class:`MeasureSpec` instead of a closure.
- :func:`run_experiments_parallel` — fan registry experiments (E1–E20)
  out across processes.
- :func:`run_sweep` — the generic engine over any sequence of points.

CLI: ``python -m repro sweep`` (``--jobs N``, ``--chunksize``,
``--cache-dir``, ``--no-cache``) and ``python -m repro cache``
(``migrate`` / ``info``).  Benchmarks opt in via the
``REPRO_SWEEP_JOBS`` environment variable (see
``benchmarks/conftest.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import itertools
import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from .. import __version__ as CODE_VERSION
from ..simulator.rng import derive_seed
from ..simulator.trace import Tracer
from ..workloads.scenarios import LinkScenario
from . import runner as _runner_module
from .registry import REGISTRY, ExperimentResult, default_seed, run_experiment
from .sweeps import ReplicationSummary, StreamingSummary

__all__ = [
    "ExperimentPoint",
    "MeasurePoint",
    "MeasureSpec",
    "ResultCache",
    "SweepPool",
    "SweepStop",
    "parallel_replicate",
    "parallel_replicate_all",
    "replication_seeds",
    "resolve_jobs",
    "run_experiments_parallel",
    "run_sweep",
]


def resolve_jobs(jobs: int) -> int:
    """Adapt a requested worker count to the host.

    On a single-core host a worker pool is pure overhead — fork/spawn
    plus IPC with no parallelism to buy — and spawn-method pools have
    been observed to regress badly there, so any request resolves to
    serial execution when ``os.cpu_count() == 1`` (or is unknown).
    Multi-core hosts get the request back unchanged (the caller may
    deliberately oversubscribe).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cpus = os.cpu_count()
    if cpus is None or cpus <= 1:
        return 1
    return jobs


class SweepStop(Exception):
    """Raised by a ``progress`` callback to end a sweep early.

    :func:`run_sweep` catches it, stops dispatching further points, and
    returns the partial result list (unexecuted points stay ``None``).
    The chaos soak runner's ``--fail-fast`` uses this to abort on the
    first invariant violation without losing completed episodes.
    """


# ---------------------------------------------------------------------------
# Deterministic seed streams
# ---------------------------------------------------------------------------


def replication_seeds(
    master_seed: int, count: int, name: str = "replication"
) -> list[int]:
    """*count* independent replication seeds under one master seed.

    Derived with :func:`repro.simulator.rng.derive_seed` from the
    stable stream names ``"{name}[i]"``, so the list is identical
    across runs, platforms, and serial/parallel execution — the
    property that makes cached and parallel sweeps comparable.
    """
    if count < 1:
        raise ValueError("at least one replication is required")
    return [derive_seed(master_seed, f"{name}[{i}]") for i in range(count)]


# ---------------------------------------------------------------------------
# Work specifications (picklable, cache-keyable)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MeasureSpec:
    """A picklable description of one runner measurement.

    The serial :func:`~repro.experiments.sweeps.replicate` takes an
    arbitrary ``measure(seed)`` closure; closures do not cross process
    boundaries, so the parallel path names the runner function instead:
    *runner* is an attribute of :mod:`repro.experiments.runner`
    (``"measure_saturated"``, ``"measure_batch_transfer"``, ...),
    called as ``fn(scenario, protocol, seed=seed, **kwargs)`` (or
    without *protocol* for runners that fix it, like
    ``measure_failure_recovery``).
    """

    runner: str
    scenario: LinkScenario
    protocol: Optional[str] = None
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        runner: str,
        scenario: LinkScenario,
        protocol: Optional[str] = None,
        **kwargs: Any,
    ) -> "MeasureSpec":
        """Build a spec; keyword arguments are canonicalised (sorted)."""
        if not hasattr(_runner_module, runner):
            raise ValueError(
                f"unknown runner {runner!r}; not in repro.experiments.runner"
            )
        return cls(runner, scenario, protocol, tuple(sorted(kwargs.items())))

    @property
    def experiment_id(self) -> str:
        """The cache-key identity of this measurement family."""
        if self.protocol is None:
            return self.runner
        return f"{self.runner}:{self.protocol}"

    def run(self, seed: int) -> Mapping[str, Any]:
        """Execute the measurement at *seed* (in any process)."""
        fn = getattr(_runner_module, self.runner)
        kwargs = dict(self.kwargs)
        if self.protocol is None:
            return fn(self.scenario, seed=seed, **kwargs)
        return fn(self.scenario, self.protocol, seed=seed, **kwargs)

    def measure(self) -> Callable[[int], Mapping[str, Any]]:
        """A serial-``replicate``-compatible ``measure(seed)`` callable."""
        return self.run


@dataclass(frozen=True)
class MeasurePoint:
    """One cacheable unit of work: a :class:`MeasureSpec` at one seed."""

    spec: MeasureSpec
    seed: int

    @property
    def label(self) -> str:
        return f"{self.spec.experiment_id}@{self.spec.scenario.name} seed={self.seed}"

    def cache_key(self) -> dict[str, Any]:
        return {
            "experiment_id": self.spec.experiment_id,
            "scenario": dataclasses.asdict(self.spec.scenario),
            "kwargs": dict(self.spec.kwargs),
            "seed": self.seed,
            "code_version": CODE_VERSION,
        }

    def execute(self) -> Any:
        return _jsonable(self.spec.run(self.seed))


@dataclass(frozen=True)
class ExperimentPoint:
    """One registry experiment (E1–E20) as a cacheable work unit."""

    experiment_id: str
    seed: int
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        experiment_id: str,
        seed: Optional[int] = None,
        **kwargs: Any,
    ) -> "ExperimentPoint":
        """Build a point, resolving the experiment's default seed.

        Every registry function accepts an explicit ``seed`` kwarg; when
        *seed* is ``None`` the function's own default is used (memoised
        by :func:`repro.experiments.registry.default_seed`), so the
        cache key is well-defined either way.
        """
        if experiment_id not in REGISTRY:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
            )
        if seed is None:
            seed = default_seed(experiment_id)
        return cls(experiment_id, int(seed), tuple(sorted(kwargs.items())))

    @property
    def label(self) -> str:
        return f"{self.experiment_id} seed={self.seed}"

    def cache_key(self) -> dict[str, Any]:
        kwargs = dict(self.kwargs)
        scenario = kwargs.pop("scenario", None)
        return {
            "experiment_id": self.experiment_id,
            "scenario": dataclasses.asdict(scenario) if scenario is not None else None,
            "kwargs": kwargs,
            "seed": self.seed,
            "code_version": CODE_VERSION,
        }

    def execute(self) -> Any:
        result = run_experiment(
            self.experiment_id, seed=self.seed, **dict(self.kwargs)
        )
        return {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "rows": _jsonable(result.rows),
            "notes": result.notes,
        }


def _jsonable(value: Any) -> Any:
    """Coerce a result to plain JSON types (numpy scalars included)."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item") and not isinstance(value, (bytes, bytearray)):
        # numpy scalar (np.float64, np.int64, np.bool_, ...)
        return _jsonable(value.item())
    return str(value)


# ---------------------------------------------------------------------------
# On-disk result cache (v2: sharded append-only JSON-lines)
# ---------------------------------------------------------------------------


class ResultCache:
    """Sharded result cache keyed by (experiment_id, scenario, seed, version).

    **Layout (v2).**  Results live in append-only shard files
    (``shard-<pid>-<uniq>.jsonl``), one line per entry::

        <sha256-hex>\\t{"key": {...}, "result": ...}\\n

    Opening a cache reads every shard *sequentially once* and builds an
    in-memory index ``digest -> (shard, offset, length)`` — indexing
    needs only the digest prefix, no JSON parsing — so a fully warm
    1000-point sweep costs one index build plus 1000 seek-reads from a
    handful of open files, instead of 1000 ``open()`` calls.  The full
    key is stored alongside each result, so a (vanishingly unlikely)
    digest collision is detected, not served.

    **Durability.**  Each cache instance appends to its own private
    shard (``O_EXCL``-created), so concurrent writers never interleave.
    Every ``put`` is flushed; ``fsync`` is *batched* (every
    ``fsync_interval`` puts, and on :meth:`flush`/:meth:`close`).  A
    crash can therefore lose at most the last unsynced batch — and a
    torn final line is detected and skipped on the next open, never
    served as data.

    **Migration.**  Legacy v1 caches (one ``<digest>.json`` file per
    point) are read transparently as a fallback; :meth:`migrate`
    (``python -m repro cache migrate``) absorbs them — and compacts all
    existing shards — into a single fresh shard.
    """

    #: Orphaned v1 ``*.json.tmp.*`` files older than this are removed on
    #: open (left behind by killed pre-v2 writers).
    STALE_TMP_SECONDS = 3600.0

    #: Default number of puts between fsyncs.
    FSYNC_INTERVAL = 64

    _shard_ids = itertools.count()

    def __init__(self, root: str, code_version: str = CODE_VERSION,
                 fsync_interval: int = FSYNC_INTERVAL) -> None:
        self.root = str(root)
        self.code_version = code_version
        self.fsync_interval = max(1, int(fsync_interval))
        os.makedirs(self.root, exist_ok=True)
        self.stale_tmp_removed = self._sweep_stale_tmp()
        self.hits = 0
        self.misses = 0
        #: digest -> (shard path, byte offset, line length)
        self._index: dict[str, tuple[str, int, int]] = {}
        self._readers: dict[str, Any] = {}
        self._writer: Optional[Any] = None
        self._writer_path: Optional[str] = None
        self._writer_offset = 0
        self._unsynced = 0
        self._load_shards()

    # -- maintenance -----------------------------------------------------

    def _sweep_stale_tmp(self) -> int:
        """Delete old orphaned v1 temp files; returns how many went."""
        cutoff = time.time() - self.STALE_TMP_SECONDS
        removed = 0
        for name in os.listdir(self.root):
            if ".json.tmp." not in name:
                continue
            path = os.path.join(self.root, name)
            try:
                if os.path.getmtime(path) < cutoff:
                    os.unlink(path)
                    removed += 1
            except OSError:
                # Raced with another opener or a finishing writer.
                continue
        return removed

    def _shard_paths(self) -> list[str]:
        paths = [
            os.path.join(self.root, name)
            for name in os.listdir(self.root)
            if name.startswith("shard-") and name.endswith(".jsonl")
        ]
        # Later shards win on duplicate digests; mtime then name gives a
        # stable "last writer wins" order.
        def order(path: str) -> tuple[float, str]:
            try:
                return (os.path.getmtime(path), path)
            except OSError:
                return (0.0, path)
        return sorted(paths, key=order)

    def _load_shards(self) -> None:
        """One sequential pass over every shard builds the index.

        Only the 64-hex digest prefix of each line is inspected — the
        JSON payload is parsed lazily at :meth:`get` time.  A final
        line with no newline is a torn write from a killed process and
        is skipped.
        """
        for path in self._shard_paths():
            try:
                with open(path, "rb") as handle:
                    offset = 0
                    for line in handle:
                        if not line.endswith(b"\n"):
                            break  # torn tail: ignore, never served
                        length = len(line)
                        if length > 65 and line[64:65] == b"\t":
                            digest = line[:64].decode("ascii", "replace")
                            self._index[digest] = (path, offset, length)
                        offset += length
            except OSError:
                continue

    # -- keying ----------------------------------------------------------

    @staticmethod
    def _canonical(key: Mapping[str, Any]) -> str:
        return json.dumps(key, sort_keys=True, default=str)

    def digest_for(self, point: Any) -> str:
        """The SHA-256 hex digest of *point*'s canonical cache key."""
        return hashlib.sha256(
            self._canonical(point.cache_key()).encode("utf-8")
        ).hexdigest()

    def path_for(self, point: Any) -> str:
        """The legacy (v1) one-file-per-point path for *point*.

        Still the cache's stable key identity: two points share a
        ``path_for`` iff they share a canonical cache key.  v2 stores
        results in shards, but reads this path as a migration fallback.
        """
        return os.path.join(self.root, f"{self.digest_for(point)}.json")

    # -- access ----------------------------------------------------------

    def contains(self, point: Any) -> bool:
        """Whether *point* is (probably) cached — no read, no stats.

        An index membership test (plus a v1-file existence check), used
        by the sweep engine to partition points before dispatch.  A
        ``True`` here can still turn into a :meth:`get` miss if the
        entry is torn or its stored key mismatches; callers must handle
        that by recomputing.
        """
        return self.digest_for(point) in self._index or os.path.exists(
            self.path_for(point)
        )

    def _read_entry(self, entry: tuple[str, int, int]) -> Optional[dict]:
        path, offset, length = entry
        reader = self._readers.get(path)
        if reader is None:
            try:
                reader = open(path, "rb")
            except OSError:
                return None
            self._readers[path] = reader
        try:
            reader.seek(offset)
            line = reader.read(length)
        except OSError:
            return None
        tab = line.find(b"\t")
        if tab < 0:
            return None
        try:
            return json.loads(line[tab + 1:])
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
            return None

    def get(self, point: Any) -> Optional[Any]:
        """The cached result for *point*, or None on a miss."""
        key = json.loads(self._canonical(point.cache_key()))
        entry = self._index.get(self.digest_for(point))
        if entry is not None:
            stored = self._read_entry(entry)
            if stored is not None and stored.get("key") == key:
                self.hits += 1
                return stored["result"]
        # v1 fallback: one JSON file per point at the legacy path.
        try:
            with open(self.path_for(point), "r", encoding="utf-8") as handle:
                stored = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if stored.get("key") != key:
            self.misses += 1
            return None
        self.hits += 1
        return stored["result"]

    def put(self, point: Any, result: Any) -> None:
        """Store *result* for *point* (appended to this cache's shard)."""
        self._append(point, json.dumps(result))

    def put_raw(self, point: Any, result_json: str) -> None:
        """Store a pre-encoded JSON result verbatim.

        The pool workers ship results as JSON strings; appending that
        encoding directly skips a decode/re-encode round trip per point.
        """
        self._append(point, result_json)

    def _append(self, point: Any, result_json: str) -> None:
        digest = self.digest_for(point)
        line = (
            digest + '\t{"key": ' + self._canonical(point.cache_key())
            + ', "result": ' + result_json + "}\n"
        ).encode("utf-8")
        writer = self._writer if self._writer is not None else self._open_writer()
        offset = self._writer_offset
        writer.write(line)
        # Flush per put (visible to readers immediately); fsync batched.
        writer.flush()
        self._index[digest] = (self._writer_path, offset, len(line))
        self._writer_offset = offset + len(line)
        self._unsynced += 1
        if self._unsynced >= self.fsync_interval:
            os.fsync(writer.fileno())
            self._unsynced = 0

    def _open_writer(self) -> Any:
        pid = os.getpid()
        while True:
            name = (f"shard-{pid}-{next(self._shard_ids)}-"
                    f"{time.time_ns() & 0xFFFFFF:06x}.jsonl")
            path = os.path.join(self.root, name)
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                continue
            self._writer = os.fdopen(fd, "wb")
            self._writer_path = path
            self._writer_offset = 0
            return self._writer

    def flush(self) -> None:
        """Force any batched fsync out to disk."""
        if self._writer is not None:
            self._writer.flush()
            if self._unsynced:
                os.fsync(self._writer.fileno())
                self._unsynced = 0

    def close(self) -> None:
        """Flush and release every file handle (the cache stays usable)."""
        self.flush()
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._writer_path = None
        for reader in self._readers.values():
            try:
                reader.close()
            except OSError:
                pass
        self._readers.clear()

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- bulk operations -------------------------------------------------

    def _v1_paths(self) -> list[str]:
        out = []
        for name in os.listdir(self.root):
            if name.endswith(".json") and len(name) == 69:  # 64 hex + ".json"
                out.append(os.path.join(self.root, name))
        return out

    def __len__(self) -> int:
        digests = set(self._index)
        for path in self._v1_paths():
            digests.add(os.path.basename(path)[:-5])
        return len(digests)

    def clear(self) -> int:
        """Delete every entry; returns how many distinct keys went."""
        removed = len(self)
        self.close()
        for path in self._shard_paths() + self._v1_paths():
            try:
                os.unlink(path)
            except OSError:
                pass
        self._index.clear()
        return removed

    def migrate(self) -> dict[str, int]:
        """Upgrade in place: absorb v1 files, compact shards into one.

        Every live entry — v2 shard lines (index-reachable only, so
        superseded duplicates drop out) plus v1 per-point files — is
        rewritten into a single fresh shard; the old shards and v1
        files are then deleted.  Returns counts for reporting.
        """
        v1_absorbed = 0
        lines: dict[str, bytes] = {}
        for digest, entry in list(self._index.items()):
            stored = self._read_entry(entry)
            if stored is not None:
                lines[digest] = (
                    digest + "\t" + json.dumps(stored) + "\n"
                ).encode("utf-8")
        for path in self._v1_paths():
            digest = os.path.basename(path)[:-5]
            if digest in lines:
                continue
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    stored = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            lines[digest] = (
                digest + "\t" + json.dumps(stored) + "\n"
            ).encode("utf-8")
            v1_absorbed += 1
        old_shards = self._shard_paths()
        old_v1 = self._v1_paths()
        self.close()
        writer = self._open_writer()
        new_index: dict[str, tuple[str, int, int]] = {}
        offset = 0
        for digest, line in lines.items():
            writer.write(line)
            new_index[digest] = (self._writer_path, offset, len(line))
            offset += len(line)
        writer.flush()
        os.fsync(writer.fileno())
        self._writer_offset = offset
        for path in old_shards + old_v1:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._index = new_index
        return {
            "entries": len(new_index),
            "v1_absorbed": v1_absorbed,
            "shards_compacted": len(old_shards),
        }

    def info(self) -> dict[str, int]:
        """Shape of the on-disk cache (entries, shards, legacy files)."""
        return {
            "entries": len(self),
            "shards": len(self._shard_paths()),
            "v1_files": len(self._v1_paths()),
        }


# ---------------------------------------------------------------------------
# The worker pool
# ---------------------------------------------------------------------------


def _warm_worker() -> None:
    """Pool initializer: pre-import the heavy modules once per worker.

    Under ``fork`` the child inherits the parent's warm interpreter and
    this is nearly free; under ``spawn`` it front-loads the registry /
    runner / scenario (and transitively numpy) imports at pool start-up
    instead of paying them inside the first task.
    """
    from ..workloads import scenarios  # noqa: F401
    from . import registry, runner  # noqa: F401


def _resolve_start_method(method: Optional[str] = None) -> str:
    """The explicit multiprocessing start method for sweep pools.

    Preference order: the *method* argument, the ``REPRO_MP_START``
    environment variable, then ``fork`` where the platform offers it
    (cheapest — workers inherit the warm interpreter) with ``spawn`` as
    the explicit fallback.  Never the interpreter default, so sweeps
    behave identically on platforms where the default differs.
    """
    if method is None:
        method = os.environ.get("REPRO_MP_START") or None
    available = multiprocessing.get_all_start_methods()
    if method is None:
        method = "fork" if "fork" in available else "spawn"
    if method not in available:
        raise ValueError(
            f"unknown start method {method!r}; available: {available}"
        )
    return method


def _pool_context(method: Optional[str] = None):
    """An explicitly chosen multiprocessing context (spawn-safe)."""
    return multiprocessing.get_context(_resolve_start_method(method))


class SweepPool:
    """A persistent, warm worker pool reused across sweeps.

    Workers are created lazily on first use — initialised once with
    :func:`_warm_worker` — and then serve every subsequent
    :func:`run_sweep` call handed this pool, so a multi-protocol sweep
    session (or a chaos soak riding the same pool) pays pool start-up
    exactly once instead of once per sweep.

    :meth:`cancel` tears the workers down immediately (used on
    :class:`SweepStop` so abandoned tasks stop burning CPU); the next
    use transparently builds a fresh pool.  Context-manager exit closes
    the pool (or cancels it if exiting on an exception).
    """

    def __init__(self, jobs: int, start_method: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.start_method = _resolve_start_method(start_method)
        self._context = multiprocessing.get_context(self.start_method)
        self._pool: Optional[Any] = None
        #: How many times the pool was torn down and lazily rebuilt.
        self.recycled = 0

    def pool(self) -> Any:
        """The live ``multiprocessing.Pool`` (created on first use)."""
        if self._pool is None:
            self._pool = self._context.Pool(
                processes=self.jobs, initializer=_warm_worker
            )
        return self._pool

    def cancel(self) -> None:
        """Terminate workers now; the next use rebuilds the pool."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self.recycled += 1

    def close(self) -> None:
        """Finish outstanding tasks and shut the workers down."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, exc_type: Any, *exc: Any) -> None:
        if exc_type is None:
            self.close()
        else:
            self.cancel()


# ---------------------------------------------------------------------------
# The sweep engine
# ---------------------------------------------------------------------------


def _progress_adapter(
    progress: Optional[Callable[..., None]],
) -> Callable[[Any, bool, Any], None]:
    """Normalise a progress callback to the (point, from_cache, result)
    calling convention, keeping 2-parameter callbacks working."""
    if progress is None:
        return lambda point, from_cache, result: None
    try:
        takes_result = len(inspect.signature(progress).parameters) >= 3
    except (TypeError, ValueError):
        takes_result = False
    if takes_result:
        return progress
    return lambda point, from_cache, result: progress(point, from_cache)


def _execute_point(point: Any) -> tuple[Any, int, float]:
    """Run one point in-process, reporting (result, pid, seconds)."""
    start = time.perf_counter()
    result = point.execute()
    return result, os.getpid(), time.perf_counter() - start


def _execute_task(task: tuple[int, Any]) -> tuple[int, int, float, str]:
    """Worker entry: run one indexed point; ship a compact slots-tuple.

    The result crosses the process boundary as one JSON string (floats
    round-trip exactly under shortest-repr encoding) instead of a
    pickled dict tree — cheaper to serialise, and the parent reuses the
    encoding verbatim for the cache append.
    """
    index, point = task
    start = time.perf_counter()
    result = point.execute()
    return index, os.getpid(), time.perf_counter() - start, json.dumps(result)


def _resolve_chunksize(chunksize: int, pending: int, jobs: int) -> int:
    """Adaptive chunking: amortise IPC without starving the tail.

    ``chunksize=0`` targets ~4 chunks per worker (capped at 32 points a
    chunk), so dispatch overhead is paid once per chunk while the last
    worker never sits on more than a quarter of its share.
    """
    if chunksize > 0:
        return chunksize
    return max(1, min(32, -(-pending // (jobs * 4))))


def run_sweep(
    points: Sequence[Any],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[Tracer] = None,
    progress: Optional[Callable[[Any, bool], None]] = None,
    *,
    pool: Optional[SweepPool] = None,
    chunksize: int = 0,
    keep_results: bool = True,
) -> Optional[list[Any]]:
    """Execute *points*, in order, over up to *jobs* worker processes.

    Cached points are answered from *cache* without touching the pool
    (a fully warm sweep executes **zero** simulations); fresh results
    are written back.  *pool* reuses a persistent :class:`SweepPool`
    across calls (its worker count then overrides *jobs*); otherwise a
    transient pool is created for this sweep.  *chunksize* controls how
    many points travel per worker dispatch (0 = adaptive, see
    :func:`_resolve_chunksize`).

    Counters on *stats* (a :class:`~repro.simulator.trace.Tracer`):

    - ``sweep.points`` / ``sweep.executed`` / ``sweep.cache_hits``
    - ``sweep.worker.<pid>.tasks`` — per-worker task counts
    - samples ``sweep.task_seconds`` and ``sweep.worker.<pid>.seconds``

    *progress*, if given, is called as ``progress(point, from_cache)``
    after each point resolves — or ``progress(point, from_cache,
    result)`` when the callback accepts a third parameter — always in
    input order, whatever order workers complete in; raising
    :class:`SweepStop` from it ends the sweep early with the partial
    results.

    With ``keep_results=False`` the engine returns ``None`` and holds
    only the out-of-order arrival buffer (O(points in flight)) instead
    of the full result list — results are observed solely through
    *progress*, which is how streaming aggregation keeps thousand-point
    sweeps in constant memory.
    """
    jobs = resolve_jobs(jobs)
    points = list(points)
    stats = stats if stats is not None else Tracer()
    results: Optional[list[Any]] = [None] * len(points) if keep_results else None
    notify = _progress_adapter(progress)

    hit_flags = (
        [cache.contains(point) for point in points]
        if cache is not None
        else [False] * len(points)
    )
    pending = [(i, p) for i, (p, hit) in enumerate(zip(points, hit_flags)) if not hit]

    def _account(worker: int, elapsed: float) -> None:
        stats.count("sweep.executed")
        stats.count(f"sweep.worker.{worker}.tasks")
        stats.sample("sweep.task_seconds", elapsed)
        stats.sample(f"sweep.worker.{worker}.seconds", elapsed)

    def _resolve_hit(index: int, point: Any) -> None:
        cached = cache.get(point)
        if cached is None:
            # Torn or key-mismatched entry discovered after the probe:
            # recompute inline so the sweep still completes.
            _run_inline(index, point)
            return
        stats.count("sweep.cache_hits")
        if results is not None:
            results[index] = cached
        notify(point, True, cached)

    def _run_inline(index: int, point: Any) -> None:
        result, worker, elapsed = _execute_point(point)
        _account(worker, elapsed)
        if cache is not None:
            cache.put(point, result)
        if results is not None:
            results[index] = result
        notify(point, False, result)

    use_pool = len(pending) > 1 and (pool is not None or jobs > 1)
    try:
        if use_pool:
            owned = pool is None
            active = pool if pool is not None else SweepPool(min(jobs, len(pending)))
            completed = False
            try:
                chunk = _resolve_chunksize(chunksize, len(pending), active.jobs)
                arrivals = active.pool().imap_unordered(
                    _execute_task, pending, chunksize=chunk
                )
                # Out-of-order arrivals wait here until their turn; the
                # in-order chunk assignment bounds this buffer to
                # O(jobs * chunksize) under normal skew.
                ready: dict[int, tuple[int, float, str]] = {}
                for index, point in enumerate(points):
                    stats.count("sweep.points")
                    if hit_flags[index]:
                        _resolve_hit(index, point)
                        continue
                    while index not in ready:
                        got_index, worker, elapsed, encoded = next(arrivals)
                        ready[got_index] = (worker, elapsed, encoded)
                    worker, elapsed, encoded = ready.pop(index)
                    _account(worker, elapsed)
                    if cache is not None:
                        cache.put_raw(point, encoded)
                    if results is not None:
                        results[index] = json.loads(encoded)
                        notify(point, False, results[index])
                    else:
                        notify(point, False, json.loads(encoded))
                completed = True
            finally:
                if not completed:
                    # SweepStop or an error mid-sweep: abandoned chunks
                    # must not keep burning CPU (a persistent pool
                    # rebuilds lazily on its next use).
                    active.cancel()
                if owned:
                    active.close()
        else:
            for index, point in enumerate(points):
                stats.count("sweep.points")
                if hit_flags[index]:
                    _resolve_hit(index, point)
                else:
                    _run_inline(index, point)
    except SweepStop:
        pass
    if cache is not None:
        cache.flush()
    return results


# ---------------------------------------------------------------------------
# Replication over a pool (the parallel replicate / replicate_all)
# ---------------------------------------------------------------------------


def parallel_replicate(
    spec: MeasureSpec,
    metric: str,
    seeds: Iterable[int],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[Tracer] = None,
    progress: Optional[Callable[[Any, bool], None]] = None,
    *,
    pool: Optional[SweepPool] = None,
    chunksize: int = 0,
    streaming: bool = False,
):
    """Parallel :func:`~repro.experiments.sweeps.replicate`.

    Bit-identical to the serial version on the same seeds: sample order
    follows seed order, values are the same per-seed simulations, and
    NaN measurements raise the same ``ValueError``.  With
    ``streaming=True`` the return type is a
    :class:`~repro.experiments.sweeps.StreamingSummary` (same
    statistics, bit-identically, without retaining the samples).
    """
    summaries = parallel_replicate_all(
        spec, [metric], seeds, jobs=jobs, cache=cache, stats=stats,
        progress=progress, _nan_guard=True,
        pool=pool, chunksize=chunksize, streaming=streaming,
    )
    return summaries[metric]


def parallel_replicate_all(
    spec: MeasureSpec,
    metrics: Sequence[str],
    seeds: Iterable[int],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[Tracer] = None,
    progress: Optional[Callable[[Any, bool], None]] = None,
    _nan_guard: bool = False,
    *,
    pool: Optional[SweepPool] = None,
    chunksize: int = 0,
    streaming: bool = False,
):
    """Parallel :func:`~repro.experiments.sweeps.replicate_all`.

    One simulation per seed feeds every metric, exactly like the serial
    version; summaries are bit-identical to serial execution.

    ``streaming=True`` folds each metric into a
    :class:`~repro.experiments.sweeps.StreamingSummary` as results
    arrive (in seed order — the engine reorders worker completions), so
    memory stays O(points in flight) instead of O(seeds); the folded
    statistics are bit-identical to the batch
    :class:`~repro.experiments.sweeps.ReplicationSummary` because both
    run the same :func:`~repro.experiments.sweeps.welford` recurrence.
    """
    seed_list = list(seeds)
    if not seed_list:
        raise ValueError("at least one seed is required")
    points = [MeasurePoint(spec, seed) for seed in seed_list]

    if streaming:
        accumulators = {metric: StreamingSummary(metric) for metric in metrics}
        outer_notify = _progress_adapter(progress)

        def consume(point: MeasurePoint, from_cache: bool, result: Any) -> None:
            for metric in metrics:
                value = result[metric]
                if _nan_guard and value != value:
                    raise ValueError(
                        f"measurement returned NaN for seed {point.seed}"
                    )
                accumulators[metric].push(float(value))
            outer_notify(point, from_cache, result)

        run_sweep(points, jobs=jobs, cache=cache, stats=stats,
                  progress=consume, pool=pool, chunksize=chunksize,
                  keep_results=False)
        return accumulators

    results = run_sweep(points, jobs=jobs, cache=cache, stats=stats,
                        progress=progress, pool=pool, chunksize=chunksize)
    collected: dict[str, list[float]] = {metric: [] for metric in metrics}
    for seed, result in zip(seed_list, results):
        for metric in metrics:
            value = result[metric]
            if _nan_guard and value != value:
                raise ValueError(f"measurement returned NaN for seed {seed}")
            collected[metric].append(float(value))
    return {
        metric: ReplicationSummary(metric=metric, samples=tuple(values))
        for metric, values in collected.items()
    }


# ---------------------------------------------------------------------------
# Registry fan-out
# ---------------------------------------------------------------------------


def run_experiments_parallel(
    experiment_ids: Sequence[str],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[Tracer] = None,
    seed: Optional[int] = None,
    progress: Optional[Callable[[Any, bool], None]] = None,
    *,
    pool: Optional[SweepPool] = None,
    chunksize: int = 0,
) -> dict[str, ExperimentResult]:
    """Run registry experiments across a process pool.

    Each experiment is one work unit (the E-series functions are
    internally serial); *seed* overrides every experiment's seed, or
    each keeps its registered default.  Results preserve the requested
    order and reconstruct as :class:`ExperimentResult`.
    """
    points = [ExperimentPoint.create(eid, seed=seed) for eid in experiment_ids]
    payloads = run_sweep(points, jobs=jobs, cache=cache, stats=stats,
                         progress=progress, pool=pool, chunksize=chunksize)
    out: dict[str, ExperimentResult] = {}
    for point, payload in zip(points, payloads):
        out[point.experiment_id] = ExperimentResult(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            rows=payload["rows"],
            notes=payload["notes"],
        )
    return out

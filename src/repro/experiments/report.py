"""Full evaluation report: every experiment, one document.

``generate_report()`` runs the complete E1–E17 registry (model
transcriptions and simulations) and renders one plain-text document —
the reproduction's equivalent of the paper's evaluation section,
regenerated from scratch on demand.  Exposed on the CLI as
``python -m repro report``.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from .registry import REGISTRY, run_experiment
from .reporting import render_table

__all__ = ["generate_report", "HEADER"]

HEADER = """\
================================================================================
 The LAMS-DLC ARQ Protocol (Ward & Choi, 1991) — regenerated evaluation
================================================================================

Every series below is produced by this library: the closed-form model
(repro.analysis) transcribes Section 4, and the measured rows come from
the discrete-event simulator (repro.simulator) executing the LAMS-DLC
and SR-HDLC protocol implementations.  Experiment ids map to DESIGN.md;
paper-claim vs measured commentary lives in EXPERIMENTS.md.
"""


def generate_report(
    experiment_ids: Optional[Sequence[str]] = None,
    include_timing: bool = True,
) -> str:
    """Run experiments and render the full report text.

    Parameters
    ----------
    experiment_ids:
        Subset to run (default: the whole registry, in id order).
    include_timing:
        Append per-experiment wall-clock runtimes.
    """
    chosen = list(experiment_ids) if experiment_ids is not None else list(REGISTRY)
    unknown = [eid for eid in chosen if eid not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")

    sections = [HEADER]
    timings: list[tuple[str, float]] = []
    for eid in chosen:
        started = time.perf_counter()
        result = run_experiment(eid)
        elapsed = time.perf_counter() - started
        timings.append((eid, elapsed))
        sections.append(
            render_table(result.rows, title=f"[{result.experiment_id}] {result.title}")
        )
        if result.notes:
            sections.append(f"note: {result.notes}")
        sections.append("")
    if include_timing:
        sections.append("-" * 40)
        sections.append("experiment runtimes:")
        for eid, elapsed in timings:
            sections.append(f"  {eid:8s} {elapsed:8.2f} s")
    return "\n".join(sections)

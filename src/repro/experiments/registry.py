"""Experiment registry: every evaluation series of the paper, E1–E18.

The tech report's evaluation is the set of closed-form comparisons in
Section 4 plus the qualitative claims of Sections 2–3 (it prints no
numbered figures/tables); DESIGN.md maps each onto an experiment id.
Every entry here regenerates its series — from the analytic model, the
discrete-event simulation, or both — and returns printable rows.

Each experiment function returns an :class:`ExperimentResult`; the
benchmark files under ``benchmarks/`` call these, print the tables, and
assert the paper's qualitative shape (who wins, how the curve moves).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

import numpy as np

from ..analysis import bounds, compare
from ..analysis import hdlc as hdlc_model
from ..analysis import lams as lams_model
from ..analysis.errorprobs import (
    frame_error_probability,
    retransmission_probability_piggyback,
)
from ..faults import FaultPlan, declared_failure_bound, detection_bound
from ..simulator.orbit import Satellite, rtt_statistics
from ..workloads.scenarios import LinkScenario, preset
from . import runner

__all__ = [
    "ExperimentResult",
    "REGISTRY",
    "SIMULATED_EXPERIMENTS",
    "default_seed",
    "run_experiment",
    "experiment_ids",
]


@dataclass
class ExperimentResult:
    """Rows + metadata for one regenerated experiment."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def column(self, name: str) -> list:
        """One column across all rows."""
        return [row[name] for row in self.rows]


# ---------------------------------------------------------------------------
# E1 — retransmission factor s̄ vs BER
# ---------------------------------------------------------------------------


def e1_retransmission_factor(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """``s̄_LAMS`` vs ``s̄_HDLC`` over the paper's BER envelope."""
    scenario = scenario or preset("nominal")
    rows = []
    for ber in np.logspace(-7, -4.3, 12):
        params = scenario.with_(iframe_ber=float(ber)).model_parameters()
        p_f = params.p_f
        rows.append(
            {
                "ber": float(ber),
                "p_f": p_f,
                "p_r_lams": p_f,
                "p_r_hdlc": params.p_f + params.p_c - params.p_f * params.p_c,
                "p_r_piggyback": retransmission_probability_piggyback(p_f),
                "s_bar_lams": lams_model.s_bar(params),
                "s_bar_hdlc": hdlc_model.s_bar(params),
                "s_bar_piggyback": 1.0 / (1.0 - retransmission_probability_piggyback(p_f)),
            }
        )
    return ExperimentResult(
        "E1",
        "Mean transmissions per frame (s̄) vs BER: NAK-only vs pos-ack",
        rows,
        notes="s̄_HDLC ≥ s̄_LAMS everywhere; piggyback acks (P_C = P_F) double the gap.",
    )


# ---------------------------------------------------------------------------
# E2 — low-traffic total delivery time D_low(N)
# ---------------------------------------------------------------------------


def e2_delivery_time(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """``D_low(N)`` for both protocols, model + simulation spot checks."""
    scenario = scenario or preset("noisy")
    params = scenario.model_parameters()
    rows = []
    for n in (1, 4, 16, min(64, scenario.window_size)):
        rows.append(
            {
                "n_frames": n,
                "d_low_lams": lams_model.total_delivery_time_low(params, n),
                "d_low_lams_approx": lams_model.total_delivery_time_low(params, n, approximate=True),
                "d_low_hdlc": hdlc_model.total_delivery_time_low(params, n),
                "d_low_hdlc_paper": hdlc_model.total_delivery_time_low(params, n, variant="paper"),
            }
        )
    return ExperimentResult(
        "E2",
        "Low-traffic delivery time D_low(N) (seconds)",
        rows,
        notes="Near-parity when alpha→0 and P_C→0; the alpha term separates them.",
    )


def e2_delivery_time_measured(
    scenario: LinkScenario | None = None, seed: int = 2
) -> ExperimentResult:
    """Batch delivery time, model vs simulation, both protocols.

    The measured time runs to the *last delivery at the receiver*
    (frames only; the model's D_low additionally includes the final
    acknowledgement leg, R/2 + t_c + waits — subtracted here for an
    apples-to-apples row).
    """
    scenario = scenario or preset("noisy")
    params = scenario.model_parameters()
    rows = []
    for n in (16, 64):
        for protocol in ("lams", "hdlc"):
            measured = runner.measure_batch_transfer(
                scenario, protocol, n, seed=seed, max_time=60.0
            )
            if protocol == "lams":
                model = lams_model.total_delivery_time_low(params, n)
            else:
                model = hdlc_model.total_delivery_time_low(params, min(n, params.window_size))
            rows.append(
                {
                    "n_frames": n,
                    "protocol": protocol,
                    "d_low_model": model,
                    "measured_to_last_delivery": measured["duration"],
                    "completed": measured["completed"],
                }
            )
    return ExperimentResult(
        "E2-sim",
        "Batch delivery time: model vs measured (to last delivery)",
        rows,
        notes="The model is a mean-value analysis; a single seed's batch "
        "realises whole retransmission rounds (one lost frame costs a "
        "full checkpoint turnaround), so measured times sit within a "
        "small factor above D_low with the model's ranking preserved.",
    )


# ---------------------------------------------------------------------------
# E3 — mean holding time
# ---------------------------------------------------------------------------


def e3_holding_time(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """``H_frame`` vs BER and vs checkpoint interval."""
    scenario = scenario or preset("nominal")
    rows = []
    for ber in np.logspace(-7, -4.3, 6):
        for i_cp in (0.002, 0.005, 0.010, 0.020):
            params = scenario.with_(
                iframe_ber=float(ber), checkpoint_interval=i_cp
            ).model_parameters()
            h_frame = lams_model.holding_time(params)
            rows.append(
                {
                    "ber": float(ber),
                    "i_cp": i_cp,
                    "h_frame": h_frame,
                    "h_frame_approx": lams_model.holding_time(params, approximate=True),
                    # Holding time of a single (re)transmission attempt —
                    # the quantity the Section-3.3 resolving-period bound
                    # applies to (renumbering resets the clock).
                    "h_attempt": h_frame * (1.0 - params.p_f),
                    "resolving_bound": bounds.lams_resolving_period(params),
                }
            )
    return ExperimentResult(
        "E3",
        "Mean holding time H_frame (s) vs BER and checkpoint interval",
        rows,
        notes="Shrinking I_cp shrinks the holding time — the paper's buffer control.",
    )


# ---------------------------------------------------------------------------
# E4 — transparent buffer size (model) + HDLC divergence (simulation)
# ---------------------------------------------------------------------------


def e4_buffer_model(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """``B_LAMS`` over distance and checkpoint interval; B_HDLC = ∞."""
    scenario = scenario or preset("nominal")
    rows = []
    for distance in (2000.0, 5000.0, 10_000.0):
        for i_cp in (0.002, 0.005, 0.010):
            params = scenario.with_(
                distance_km=distance, checkpoint_interval=i_cp
            ).model_parameters()
            rows.append(
                {
                    "distance_km": distance,
                    "i_cp": i_cp,
                    "b_lams_frames": lams_model.transparent_buffer_size(params),
                    "b_hdlc": float("inf"),
                }
            )
    return ExperimentResult(
        "E4",
        "Transparent buffer size (frames): finite for LAMS-DLC, none for SR-HDLC",
        rows,
        notes="B_LAMS ≈ s̄(R + (n̄_cp−½)I_cp)/t_f; grows with distance and I_cp.",
    )


def e4_buffer_simulation(
    scenario: LinkScenario | None = None, duration: float = 3.0, seed: int = 3
) -> ExperimentResult:
    """Constant-rate load: LAMS buffer plateaus, HDLC's diverges.

    Offered load is fixed at 80% of the line rate — comfortably inside
    LAMS-DLC's capacity, far beyond SR-HDLC's window-stalled service
    rate.  Occupancy is sampled at the midpoint and end of the run: a
    protocol with a transparent buffer size shows ~zero growth between
    the two samples, an unbounded one keeps climbing.
    """
    scenario = scenario or preset("nominal")
    params = scenario.model_parameters()
    rows = []
    for protocol in ("lams", "hdlc"):
        result = runner.measure_constant_rate(
            scenario, protocol, duration, load=0.8, seed=seed
        )
        result["b_lams_model"] = lams_model.transparent_buffer_size(params)
        rows.append(result)
    return ExperimentResult(
        "E4-sim",
        "Sending-buffer growth under 80% constant offered load",
        rows,
        notes="'growth' is occupancy(end) − occupancy(mid): ≈0 for LAMS-DLC "
        "(transparent size exists), strictly positive and proportional to run "
        "length for SR-HDLC (B_HDLC = ∞).",
    )


# ---------------------------------------------------------------------------
# E5 — the N_total subperiod recursion
# ---------------------------------------------------------------------------


def e5_n_total(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """``N_total(N)`` recursion vs the closed form ``N·s̄``."""
    scenario = scenario or preset("noisy")
    params = scenario.model_parameters()
    rows = []
    for n in (100, 1000, 10_000, 100_000):
        schedule = lams_model.subperiod_schedule(params, n)
        rows.append(
            {
                "n_frames": n,
                "n_total_recursive": schedule.total_transmissions,
                "n_total_closed": lams_model.n_total(params, n),
                "subperiods": schedule.subperiod_count,
                "first_subperiod_new": schedule.new_frames[0],
            }
        )
    return ExperimentResult(
        "E5",
        "Total transmissions N_total(N): subperiod recursion vs N·s̄",
        rows,
        notes="The recursion converges to N·s̄; the transient shows the "
        "retransmission load ramping to equilibrium over the first holding times.",
    )


# ---------------------------------------------------------------------------
# E6 — high-traffic throughput efficiency
# ---------------------------------------------------------------------------


def e6_throughput_vs_n(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """η vs channel traffic N: LAMS rises toward 1, HDLC stays flat."""
    scenario = scenario or preset("nominal")
    params = scenario.model_parameters()
    rows = []
    for n in (100, 1000, 10_000, 100_000, 1_000_000):
        rows.append(
            {
                "n_frames": n,
                "eta_lams": lams_model.throughput_efficiency(params, n),
                "eta_hdlc": hdlc_model.throughput_efficiency(params, n),
                "ratio": compare.efficiency_ratio(params, n),
            }
        )
    return ExperimentResult(
        "E6",
        "Throughput efficiency vs offered frames N (model)",
        rows,
        notes="LAMS-DLC amortises its fixed s̄R + δ over all N; SR-HDLC pays "
        "(m+1)(s̄R + δ) — once per window — so its efficiency plateaus low.",
    )


def e6_throughput_vs_ber(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """η vs BER at fixed high traffic, model + simulation."""
    scenario = scenario or preset("nominal")
    rows = []
    for ber in np.logspace(-7, -4.3, 8):
        point = scenario.with_(iframe_ber=float(ber), cframe_ber=float(ber) / 100.0)
        params = point.model_parameters()
        n = 50_000
        rows.append(
            {
                "ber": float(ber),
                "eta_lams": lams_model.throughput_efficiency(params, n),
                "eta_hdlc": hdlc_model.throughput_efficiency(params, n),
                "ratio": compare.efficiency_ratio(params, n),
            }
        )
    return ExperimentResult(
        "E6-ber",
        "Throughput efficiency vs BER at N = 50k frames (model)",
        rows,
        notes="Both decline with BER; LAMS-DLC declines like 1/s̄_LAMS while "
        "HDLC also pays timeout recoveries, so the ratio widens.",
    )


def e6_window_sweep(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """η_HDLC vs window size, including the paper's W = B_LAMS point.

    Section 4's canonical comparison gives SR-HDLC a window equal to
    LAMS-DLC's transparent buffer size ("if W = B_LAMS ... the
    throughput efficiency η_HDLC with the buffer size B_HDLC =
    2·B_LAMS") — the most generous setting the paper grants HDLC.
    """
    scenario = scenario or preset("nominal")
    base = scenario.model_parameters()
    b_lams = lams_model.transparent_buffer_size(base)
    n = 100_000
    rows = []
    windows = [8, 64, 512, int(round(b_lams)), 4 * int(round(b_lams))]
    for window in windows:
        params = base.with_(window_size=window)
        rows.append(
            {
                "window": window,
                "is_paper_point": window == int(round(b_lams)),
                "eta_hdlc": hdlc_model.throughput_efficiency(params, n),
                "eta_lams": lams_model.throughput_efficiency(base, n),
                "hdlc_buffer": "2*B_LAMS" if window == int(round(b_lams)) else "unbounded",
            }
        )
    return ExperimentResult(
        "E6-window",
        "η_HDLC vs window size (paper point: W = B_LAMS)",
        rows,
        notes=f"B_LAMS = {b_lams:.0f} frames. Even at the paper's generous "
        "W = B_LAMS — where HDLC's receive buffer alone equals LAMS-DLC's "
        "total — LAMS-DLC retains the lead, because every window still "
        "pays its own s̄R + δ while LAMS-DLC pays once.",
    )


# ---------------------------------------------------------------------------
# E7 — ablation over (I_cp, C_depth)
# ---------------------------------------------------------------------------


def e7_knob_ablation(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """The paper's two knobs: checkpoint interval and cumulation depth."""
    scenario = scenario or preset("noisy")
    rows = []
    n = 50_000
    for i_cp in (0.001, 0.002, 0.005, 0.010, 0.020):
        for c_depth in (1, 2, 3, 5, 8):
            params = scenario.with_(
                checkpoint_interval=i_cp, cumulation_depth=c_depth
            ).model_parameters()
            rows.append(
                {
                    "i_cp": i_cp,
                    "c_depth": c_depth,
                    "eta_lams": lams_model.throughput_efficiency(params, n),
                    "b_lams": lams_model.transparent_buffer_size(params),
                    "numbering": bounds.lams_required_numbering_size(params),
                    "inconsistency_gap": bounds.lams_inconsistency_gap(params),
                }
            )
    return ExperimentResult(
        "E7",
        "Ablation: checkpoint interval × cumulation depth",
        rows,
        notes="Small I_cp: less wait, smaller buffer, more control overhead and "
        "larger numbering per second; C_depth trades failure-detection latency "
        "(C_depth·W_cp) against NAK-loss robustness.",
    )


# ---------------------------------------------------------------------------
# E8 — burst errors (simulation)
# ---------------------------------------------------------------------------


def e8_burst_utilization(
    scenario: LinkScenario | None = None, duration: float = 4.0, seed: int = 8
) -> ExperimentResult:
    """Utilization under Gilbert–Elliott bursts: cumulative NAKs vs SREJ."""
    scenario = scenario or preset("nominal").with_(
        checkpoint_interval=0.005, cumulation_depth=4
    )
    rows = []
    for mean_burst in (0.002, 0.010, 0.040):
        for protocol in ("lams", "hdlc"):
            result = runner.measure_burst_utilization(
                scenario, protocol, duration,
                mean_burst=mean_burst, mean_gap=0.25, seed=seed,
            )
            rows.append(
                {
                    "mean_burst_s": mean_burst,
                    "protocol": protocol,
                    "efficiency": result["efficiency"],
                    "retransmissions": result["retransmissions"],
                    "covered": result["covered"],
                }
            )
    return ExperimentResult(
        "E8",
        "Goodput efficiency under burst errors (simulation)",
        rows,
        notes="'covered' marks C_depth·W_cp > L_burst — the paper's condition "
        "for cumulative NAKs to ride out a burst without resynchronising.",
    )


# ---------------------------------------------------------------------------
# E9 — numbering-size requirement
# ---------------------------------------------------------------------------


def e9_numbering(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """Bounded (LAMS) vs unbounded-tail (HDLC) numbering requirements."""
    scenario = scenario or preset("long_haul")
    rows = []
    for ber in (1e-7, 1e-6, 1e-5):
        params = scenario.with_(iframe_ber=ber).model_parameters()
        rows.append(
            {
                "ber": ber,
                "lams_required": bounds.lams_required_numbering_size(params),
                "hdlc_q90": bounds.hdlc_required_numbering_size_quantile(params, 0.90),
                "hdlc_q999": bounds.hdlc_required_numbering_size_quantile(params, 0.999),
                "hdlc_q999999": bounds.hdlc_required_numbering_size_quantile(params, 0.999999),
            }
        )
    return ExperimentResult(
        "E9",
        "Required sequence-number space (frames)",
        rows,
        notes="LAMS-DLC's requirement is a constant set by the resolving period; "
        "HDLC's grows without bound as the coverage quantile → 1.",
    )


# ---------------------------------------------------------------------------
# E10 — enforced recovery / failure detection (simulation)
# ---------------------------------------------------------------------------


def e10_recovery(
    scenario: LinkScenario | None = None, seed: int = 10
) -> ExperimentResult:
    """Outage handling: recovery within lifetime, zero loss, duplicates."""
    scenario = scenario or preset("nominal")
    rows = []
    for outage in (0.02, 0.05, 0.2):
        result = runner.measure_failure_recovery(
            scenario, outage_start=0.05, outage_duration=outage,
            total_time=8.0, n_frames=3000, seed=seed,
        )
        result["outage"] = outage
        rows.append(result)
    return ExperimentResult(
        "E10",
        "Enforced recovery across link outages (simulation)",
        rows,
        notes="Zero loss in every case; duplicates may appear only via enforced "
        "recovery (the paper's admitted corner) and are removed by the "
        "destination resequencer.",
    )


# ---------------------------------------------------------------------------
# E11 — HDLC timeout-margin (alpha) sensitivity
# ---------------------------------------------------------------------------


def e11_alpha_sensitivity(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """η_HDLC vs alpha, with the orbit model supplying realistic alphas."""
    scenario = scenario or preset("noisy")
    sat_a = Satellite("sat-a", altitude_km=1000, inclination_deg=60, phase_deg=0)
    sat_b = Satellite("sat-b", altitude_km=1000, inclination_deg=60, raan_deg=25, phase_deg=12)
    stats = rtt_statistics(sat_a, sat_b, 0.0, 600.0, step_s=5.0)
    rows = []
    n = 50_000
    for alpha in (0.0, 0.01, stats["alpha_min"], 0.05, 0.1, 0.3):
        params = scenario.with_(alpha=float(alpha)).model_parameters()
        rows.append(
            {
                "alpha": float(alpha),
                "eta_hdlc": hdlc_model.throughput_efficiency(params, n),
                "eta_lams": lams_model.throughput_efficiency(params, n),
                "is_orbit_alpha": abs(alpha - stats["alpha_min"]) < 1e-12,
            }
        )
    return ExperimentResult(
        "E11",
        "HDLC timeout-margin sensitivity (alpha = t_out − R)",
        rows,
        notes=f"Orbit-model alpha lower bound for this pair: "
        f"{stats['alpha_min']:.4f}s (RTT var {stats['variance']:.3e}). "
        "η_HDLC decays with alpha; η_LAMS has no alpha dependence at all.",
    )


# ---------------------------------------------------------------------------
# E12 — model vs simulation validation
# ---------------------------------------------------------------------------


def e12_validation(
    scenario: LinkScenario | None = None, duration: float = 3.0, seed: int = 12
) -> ExperimentResult:
    """Measured η and H_frame vs the closed-form predictions."""
    scenario = scenario or preset("noisy")
    params = scenario.model_parameters()
    rows = []
    sim_lams = runner.measure_saturated(scenario, "lams", duration, seed=seed)
    n_equiv = max(1, int(sim_lams["delivered"]))
    rows.append(
        {
            "protocol": "lams",
            "metric": "efficiency",
            "model": lams_model.throughput_efficiency(params, n_equiv),
            "measured": sim_lams["efficiency"],
        }
    )
    rows.append(
        {
            "protocol": "lams",
            "metric": "holding_time",
            "model": lams_model.holding_time(params),
            "measured": sim_lams["mean_holding_time"],
        }
    )
    sim_hdlc = runner.measure_saturated(scenario, "hdlc", duration, seed=seed)
    n_equiv_h = max(1, int(sim_hdlc["delivered"]))
    rows.append(
        {
            "protocol": "hdlc",
            "metric": "efficiency",
            "model": hdlc_model.throughput_efficiency(params, n_equiv_h),
            "measured": sim_hdlc["efficiency"],
        }
    )
    rows.append(
        {
            "protocol": "hdlc",
            "metric": "holding_time",
            "model": hdlc_model.holding_time(params),
            "measured": sim_hdlc["mean_holding_time"],
        }
    )
    return ExperimentResult(
        "E12",
        "Model vs simulation (saturated load)",
        rows,
        notes="The model is a deterministic mean-value analysis with "
        "simplifying period assumptions; agreement is expected in shape and "
        "rough magnitude, not digit-for-digit.",
    )


# ---------------------------------------------------------------------------
# E13 — zero-duplication ablation (the paper's "more recent version")
# ---------------------------------------------------------------------------


def e13_zero_duplication(
    scenario: LinkScenario | None = None, seed: int = 13
) -> ExperimentResult:
    """Duplicates across an enforced recovery, with and without the mode."""
    scenario = scenario or preset("nominal")
    rows = []
    for zero_dup in (False, True):
        result = runner.measure_failure_recovery(
            scenario, outage_start=0.05, outage_duration=0.02,
            total_time=10.0, n_frames=3000, seed=seed,
            overrides={"zero_duplication": zero_dup},
        )
        rows.append(
            {
                "zero_duplication": zero_dup,
                "recovered": result["recovered"],
                "delivered_unique": result["delivered_unique"],
                "duplicates": result["duplicates"],
                "lost": result["lost"],
                "retransmissions": result["retransmissions"],
            }
        )
    return ExperimentResult(
        "E13",
        "Zero-duplication extension across an enforced recovery",
        rows,
        notes="Section 3.2: 'A more recent version of LAMS-DLC guarantees "
        "zero duplication as well as zero loss'. The receiver suppresses "
        "duplicate incarnations; loss stays zero either way.",
    )


# ---------------------------------------------------------------------------
# E14 — stutter-mode ablation (Section 1 background: Stutter / SR+ST)
# ---------------------------------------------------------------------------


def e14_stutter(
    scenario: LinkScenario | None = None, seed: int = 14
) -> ExperimentResult:
    """SR-HDLC batch completion time with and without stutter mode."""
    scenario = (scenario or preset("noisy")).with_(window_size=16)
    rows = []
    for stutter in (False, True):
        result = runner.measure_batch_transfer(
            scenario, "hdlc", 400, seed=seed,
            overrides={"stutter": stutter}, max_time=120.0,
        )
        rows.append(
            {
                "stutter": stutter,
                "duration": result["duration"],
                "iframes_sent": result["iframes_sent"],
                "delivered": result["delivered"],
                "completed": result["completed"],
            }
        )
    return ExperimentResult(
        "E14",
        "Stutter mode (idle-time repeats) for SR-HDLC, lossy batch transfer",
        rows,
        notes="The Stutter-GBN / SR+ST idea of references [1][3]: filling "
        "the stalled window's idle time with repeats cuts completion time "
        "at the price of channel occupancy. LAMS-DLC gets the same latency "
        "benefit structurally, without extra copies.",
    )


# ---------------------------------------------------------------------------
# E15 — link lifetime / retargeting overhead across passes
# ---------------------------------------------------------------------------


def e15_link_sessions(
    scenario: LinkScenario | None = None, seed: int = 15
) -> ExperimentResult:
    """Goodput over short link passes with retargeting overhead."""
    from ..core.config import LamsDlcConfig
    from ..hdlc.config import HdlcConfig
    from ..session import LinkSessionManager, PassSchedule
    from ..session.factories import hdlc_session_factory, lams_session_factory
    from ..simulator.engine import Simulator

    scenario = scenario or preset("nominal").with_(
        bit_rate=100e6, distance_km=3000.0
    )
    rows = []
    for protocol in ("lams", "hdlc"):
        for init_time in (0.01, 0.10):
            sim = Simulator()
            link = scenario.build_link(sim, seed=seed)
            schedule = PassSchedule.periodic(
                first_start=0.05, duration=0.5, gap=0.2, count=4
            )
            if protocol == "lams":
                factory = lams_session_factory(
                    LamsDlcConfig(
                        checkpoint_interval=scenario.checkpoint_interval,
                        cumulation_depth=scenario.cumulation_depth,
                    )
                )
            else:
                factory = hdlc_session_factory(
                    HdlcConfig(
                        window_size=scenario.window_size,
                        sequence_bits=scenario.sequence_bits,
                        timeout=scenario.timeout,
                    )
                )
            delivered: list = []
            manager = LinkSessionManager(
                sim, link, schedule, factory,
                init_time=init_time, deliver=delivered.append,
            )
            total = 40_000
            for i in range(total):
                manager.send(("pkt", i))
            sim.run(until=4.0)
            delivered_ids = {p[1] for p in delivered}
            backlog_ids = {p[1] for p in manager._queue}
            iframe_time = scenario.iframe_time
            rows.append(
                {
                    "protocol": protocol,
                    "init_overhead_s": init_time,
                    "passes": manager.passes_run,
                    "delivered_unique": len(delivered_ids),
                    "goodput_eff": len(delivered_ids) * iframe_time / schedule.total_link_time,
                    "carried_over": manager.carried_over,
                    "lost": total - len(delivered_ids | backlog_ids),
                }
            )
    return ExperimentResult(
        "E15",
        "Goodput across short link passes with retargeting overhead",
        rows,
        notes="Section 1: links live for minutes with 'large retargeting "
        "overhead'. Goodput per second of link time falls with overhead for "
        "both protocols, but LAMS-DLC uses the remaining time at line rate "
        "while SR-HDLC stays window-stalled.",
    )


# ---------------------------------------------------------------------------
# E18 — the full protocol field: LAMS vs SR-HDLC vs GBN vs NBDT
# ---------------------------------------------------------------------------


def e18_protocol_field(
    scenario: LinkScenario | None = None, duration: float = 2.0, seed: int = 18
) -> ExperimentResult:
    """Saturated-load comparison of every implemented protocol."""
    scenario = scenario or preset("noisy")
    rows = []
    for protocol in ("lams", "hdlc", "gbn", "nbdt-continuous", "nbdt-multiphase"):
        result = runner.measure_saturated(scenario, protocol, duration, seed=seed)
        rows.append(
            {
                "protocol": protocol,
                "efficiency": result["efficiency"],
                "retransmissions": result["retransmissions"],
                "mean_holding_time": result["mean_holding_time"],
                "delivered": result["delivered"],
            }
        )
    return ExperimentResult(
        "E18",
        "Saturated goodput of every implemented protocol (simulation)",
        rows,
        notes="The paper's full landscape: LAMS-DLC and NBDT-continuous "
        "avoid window stalls (high efficiency); NBDT still needs positive "
        "acks (memory until report) and has no failure handling; "
        "multiphase and the windowed protocols pay per-cycle round trips.",
    )


# ---------------------------------------------------------------------------
# E19 — validation matrix: model vs simulation across all presets
# ---------------------------------------------------------------------------


def e19_validation_matrix(
    duration: float = 1.5, seed: int = 19
) -> ExperimentResult:
    """Model-vs-measured efficiency for both protocols, every preset."""
    from ..workloads.scenarios import PRESETS

    rows = []
    for name, scenario in PRESETS.items():
        params = scenario.model_parameters()
        for protocol in ("lams", "hdlc"):
            measured = runner.measure_saturated(scenario, protocol, duration, seed=seed)
            n_equiv = max(1, measured["delivered"])
            if protocol == "lams":
                predicted = lams_model.throughput_efficiency(params, n_equiv)
            else:
                predicted = hdlc_model.throughput_efficiency(params, n_equiv)
            rows.append(
                {
                    "preset": name,
                    "protocol": protocol,
                    "model": predicted,
                    "measured": measured["efficiency"],
                    "ratio": measured["efficiency"] / predicted if predicted else float("nan"),
                }
            )
    return ExperimentResult(
        "E19",
        "Validation matrix: predicted vs measured efficiency, all presets",
        rows,
        notes="LAMS-DLC's mean-value analysis tracks the simulation within "
        "a few percent at every operating point; the HDLC analysis is "
        "within a small constant factor (its one-frame-per-retransmission-"
        "period assumption is optimistic), with the ordering always "
        "preserved.",
    )


# ---------------------------------------------------------------------------
# E16 — Type-I hybrid ARQ/FEC (Section 1, references [13–15])
# ---------------------------------------------------------------------------


def e16_hybrid_arq_fec(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """Goodput of the codec ladder across channel BERs: the ARQ/FEC trade."""
    from ..analysis import hybrid

    scenario = scenario or preset("nominal")
    base = scenario.model_parameters()
    rows = []
    for channel_ber in (1e-6, 1e-5, 1e-4, 1e-3):
        for row in hybrid.codec_sweep(base, scenario.iframe_bits, channel_ber):
            row["channel_ber"] = channel_ber
            rows.append(row)
    return ExperimentResult(
        "E16",
        "Type-I hybrid ARQ/FEC: goodput of codec strengths vs channel BER",
        rows,
        notes="Clean channels favour no coding (parity is pure overhead); "
        "noisy channels favour coding (retransmissions cost more than "
        "parity). The optimum codec strengthens as the channel degrades — "
        "the Type-I rationale of references [13–15].",
    )


# ---------------------------------------------------------------------------
# E17 — frame-size optimisation (Section 1 NBDT / Section 2.3)
# ---------------------------------------------------------------------------


def e17_frame_size(
    scenario: LinkScenario | None = None, seed: int = 0
) -> ExperimentResult:
    """Goodput vs payload size: the optimum the paper says NBDT chased."""
    from ..analysis import framesize

    scenario = scenario or preset("nominal")
    overhead = scenario.iframe_overhead_bits
    rows = []
    for ber in (1e-6, 1e-5, 1e-4):
        optimum = framesize.optimal_frame_size(overhead, ber)
        approx = framesize.optimal_frame_size_approx(overhead, ber)
        for size in (256, 1024, 4096, 8192, 32_768, 131_072):
            rows.append(
                {
                    "ber": ber,
                    "payload_bits": size,
                    "goodput": framesize.goodput_per_channel_bit(size, overhead, ber),
                    "optimal_bits": optimum,
                    "approx_bits": round(approx),
                }
            )
    return ExperimentResult(
        "E17",
        "Goodput vs frame size; optimum ≈ sqrt(overhead/BER)",
        rows,
        notes="Short frames drown in header overhead, long ones in "
        "retransmissions (Section 2.3). LAMS-DLC's renumbering lets the "
        "frame size track the optimum mid-stream — NBDT needed 32-bit "
        "absolute numbering for the same freedom.",
    )


# ---------------------------------------------------------------------------
# E21 — fault matrix: outage duration × cumulation depth (simulation)
# ---------------------------------------------------------------------------


def e21_fault_matrix(
    scenario: LinkScenario | None = None, seed: int = 21
) -> ExperimentResult:
    """Detection/recovery latency across outage duration × C_depth.

    Drives the declarative fault layer: one both-ways outage per cell,
    injected by a :class:`~repro.faults.injector.FaultInjector`, with
    recovery metrics from the fault layer's tracer listener.  Each row
    checks the paper's Section 3.2 latency guarantees — detection
    (first Request-NAK) within ``C_depth * W_cp`` of the cut, declared
    failure within that plus the failure-timer budget.
    """
    scenario = scenario or preset("nominal")
    rows = []
    for c_depth in (2, 4):
        point = scenario.with_(cumulation_depth=c_depth)
        config = point.lams_config()
        d_bound = detection_bound(config)
        f_bound = declared_failure_bound(config, point.round_trip_time)
        for outage in (0.01, 0.05, 0.2):
            plan = FaultPlan.single_outage(
                start=0.05, duration=outage, name=f"outage-{outage:g}",
            )
            result = runner.measure_fault_plan(
                point, plan, total_time=3.0, n_frames=1500, seed=seed,
            )
            t_probe = result.get("t_request_nak", float("nan"))
            t_fail = result.get("t_declared_failure", float("nan"))
            detected = t_probe == t_probe  # not NaN
            rows.append(
                {
                    "c_depth": c_depth,
                    "outage": outage,
                    "detected": detected,
                    "t_request_nak": t_probe,
                    "detection_bound": d_bound,
                    "detection_within_bound": (not detected) or t_probe <= d_bound + 1e-9,
                    "failure_declared": result["failure_declared"],
                    "t_declared_failure": t_fail,
                    "failure_bound": f_bound,
                    "failure_within_bound": (t_fail != t_fail) or t_fail <= f_bound + 1e-9,
                    "frames_lost": result.get("frames_lost", 0),
                    "recovered": result["recovered"],
                    "duplicates": result["duplicates"],
                    "lost": result["lost"],
                }
            )
    return ExperimentResult(
        "E21",
        "Fault matrix: outage duration × cumulation depth (simulation)",
        rows,
        notes="Detection fires within C_depth·W_cp of a full cut (an outage "
        "shorter than the watchdog rides out undetected); a declared "
        "failure lands within the detection bound plus the failure-timer "
        "budget. Zero loss in every cell: undelivered frames stay "
        "buffered at the sender for the network layer.",
    )


# ---------------------------------------------------------------------------
# E24 — constellation scale: M concurrent LAMS-DLC links, one engine
# ---------------------------------------------------------------------------


def e24_constellation(
    scenario: LinkScenario | None = None,
    seed: int = 24,
    scale_links: int = 100,
    duration: float = 2.0,
) -> ExperimentResult:
    """Constellation presets under cross-traffic, one engine per cell.

    Four cells exercise the topology layer's shapes (the paper's
    Section 2.1 environment at network scale):

    - ``ring-6`` — one orbital plane, stride-2 cross-traffic so every
      flow transits a relay;
    - ``chain-4`` — a store-and-forward pipeline with every node's
      flow converging on the far end: the hops nearest the sink carry
      the superposed load (relay congestion);
    - ``grid-3x4`` — three planes with cross-plane ISLs, stride-3
      cross-traffic;
    - ``ring-N`` (*scale_links* links, default 100) — the scale cell:
      M concurrent LAMS-DLC links in one engine, built and run twice
      from the same master seed with the rollups compared, so the row
      itself certifies determinism at scale.

    Every cell reports the network rollup (delivery accounting, merged
    delay streams, engine event count, peak event-queue width, peak
    per-link buffered state).
    """
    # Lazy import: the topology package consumes experiments.sweeps, so
    # a module-level import here would be circular.
    from ..topology import (
        LinkSpec,
        build_constellation,
        chain_topology,
        cross_traffic,
        grid_topology,
        ring_topology,
    )
    from ..topology.flows import FlowSpec

    scenario = scenario or preset("nominal")
    template = LinkSpec(scenario=scenario)

    def run_cell(topo, flows, until):
        constellation = build_constellation(
            topo, master_seed=seed, flows=flows, horizon=until,
            probe_interval=until / 50.0,
        )
        constellation.run(until=until)
        return constellation.network_rollup()

    rows = []

    def add_row(cell, topo, flows, until, rollup, deterministic=None):
        sent = rollup["datagrams_sent"]
        rows.append(
            {
                "cell": cell,
                "nodes": len(topo.nodes),
                "links": rollup["links"],
                "flows": len(flows),
                "duration": until,
                "datagrams_sent": sent,
                "datagrams_delivered": rollup["datagrams_delivered"],
                "delivery_ratio": (
                    rollup["datagrams_delivered"] / sent if sent else 1.0
                ),
                "e2e_delay_mean": rollup["e2e_delay_mean"],
                "frames_sent": rollup["frames_sent"],
                "frames_corrupted": rollup["frames_corrupted"],
                "events": rollup["events"],
                "peak_heap": rollup["peak_heap"],
                "peak_buffered": rollup["peak_buffered_max"],
                "utilization_mean": rollup["utilization_mean"],
                "retry_backlog": rollup["retry_backlog"],
                "deterministic": deterministic,
            }
        )

    # ring-6: every flow crosses a relay.
    topo = ring_topology(6, template, name="ring-6")
    flows = cross_traffic(topo.node_names(), stride=2, messages=40,
                          interval=duration / 80.0)
    add_row("ring-6", topo, flows, duration, run_cell(topo, flows, duration))

    # chain-4: all flows converge on the far end; the last hops carry
    # the superposed load (relay congestion).
    topo = chain_topology(4, template, name="chain-4")
    sink = topo.node_names()[-1]
    flows = [
        FlowSpec(source=name, destination=sink, messages=40,
                 interval=duration / 80.0, poisson=True)
        for name in topo.node_names()[:-1]
    ]
    add_row("chain-4", topo, flows, duration, run_cell(topo, flows, duration))

    # grid-3x4: three planes, cross-plane ISLs.
    topo = grid_topology(3, 4, template, name="grid-3x4")
    flows = cross_traffic(topo.node_names(), stride=5, messages=20,
                          interval=duration / 40.0)
    add_row("grid-3x4", topo, flows, duration, run_cell(topo, flows, duration))

    # Scale cell: M concurrent links, run twice, rollups compared.
    if scale_links >= 3:
        until = min(duration, 1.0)
        topo = ring_topology(scale_links, template, name=f"ring-{scale_links}")
        names = topo.node_names()
        flows = [
            FlowSpec(source=names[i], destination=names[(i + 2) % len(names)],
                     messages=10, interval=until / 20.0, poisson=True)
            for i in range(0, len(names), max(1, len(names) // 8))
        ]
        first = run_cell(topo, flows, until)
        second = run_cell(topo, flows, until)
        add_row(f"ring-{scale_links}", topo, flows, until, first,
                deterministic=first == second)

    return ExperimentResult(
        "E24",
        "Constellation scale: concurrent LAMS-DLC links in one engine",
        rows,
        notes="Every datagram delivered exactly once through relay nodes; "
        "per-link streams merge into the network rollup. The scale cell "
        "is built and run twice from one master seed — 'deterministic' "
        "asserts the two rollups are identical, the stream-isolation "
        "guarantee at constellation scale.",
    )


# ---------------------------------------------------------------------------
# E25 — feedback asymmetry: checkpoint/NAK loss vs the cumulative-NAK bound
# ---------------------------------------------------------------------------


def e25_feedback_asymmetry(
    scenario: LinkScenario | None = None,
    seed: int = 25,
    duration: float = 2.0,
    feedback_bers: tuple[float, ...] = (1e-8, 1e-4, 1e-3, 5e-3, 2e-2),
    depths: tuple[int, ...] = (2, 4),
) -> ExperimentResult:
    """Throughput vs feedback-channel BER at fixed forward BER.

    The paper's recovery argument leans on cumulative NAKs: a NAK is
    repeated in ``C_depth`` consecutive checkpoints, so the sender
    misses a retransmission request only when *every* copy is lost —
    probability ``p_cp**C_depth`` for checkpoint-loss probability
    ``p_cp``.  The scenario's ``reverse_cframe_ber`` field decouples the
    feedback direction from the forward BER, so this sweep holds the
    forward channel fixed (the ``noisy`` preset) and degrades only the
    checkpoint/NAK path.

    Expected shape: efficiency is flat while ``p_cp**C_depth`` stays
    negligible (cumulation absorbs isolated feedback losses), then
    degrades as whole NAK streaks start vanishing and recovery waits on
    the ``C_depth·W_cp`` watchdog; a deeper ``C_depth`` holds the
    plateau further into the feedback-loss axis.
    """
    scenario = scenario or preset("noisy")
    rows = []
    for c_depth in depths:
        for fb in feedback_bers:
            cell = scenario.with_(
                name=f"{scenario.name}~fb{fb:g}~c{c_depth}",
                cumulation_depth=c_depth,
                reverse_cframe_ber=fb,
            )
            result = runner.measure_saturated(cell, "lams", duration, seed=seed)
            p_cp = frame_error_probability(fb, scenario.cframe_bits)
            rows.append(
                {
                    "c_depth": c_depth,
                    "feedback_ber": fb,
                    "forward_ber": scenario.iframe_ber,
                    "p_checkpoint_loss": p_cp,
                    "p_nak_streak_lost": p_cp ** c_depth,
                    "efficiency": result["efficiency"],
                    "delivered": result["delivered"],
                    "retransmissions": result["retransmissions"],
                    "mean_holding_time": result["mean_holding_time"],
                    "sendbuf_max": result["sendbuf_max"],
                }
            )
    return ExperimentResult(
        "E25",
        "Feedback asymmetry: checkpoint/NAK loss at fixed forward BER",
        rows,
        notes="Only the reverse (feedback) direction degrades; the forward "
        "channel is pinned at the preset BER. Efficiency holds while "
        "p_cp**C_depth is negligible — cumulative NAKs absorb isolated "
        "checkpoint losses — and falls once whole NAK streaks vanish "
        "and recovery waits on the watchdog.",
    )


REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "E1": e1_retransmission_factor,
    "E2": e2_delivery_time,
    "E2-sim": e2_delivery_time_measured,
    "E3": e3_holding_time,
    "E4": e4_buffer_model,
    "E4-sim": e4_buffer_simulation,
    "E5": e5_n_total,
    "E6": e6_throughput_vs_n,
    "E6-ber": e6_throughput_vs_ber,
    "E6-window": e6_window_sweep,
    "E7": e7_knob_ablation,
    "E8": e8_burst_utilization,
    "E9": e9_numbering,
    "E10": e10_recovery,
    "E11": e11_alpha_sensitivity,
    "E12": e12_validation,
    "E13": e13_zero_duplication,
    "E14": e14_stutter,
    "E15": e15_link_sessions,
    "E16": e16_hybrid_arq_fec,
    "E17": e17_frame_size,
    "E18": e18_protocol_field,
    "E19": e19_validation_matrix,
    "E21": e21_fault_matrix,
    "E24": e24_constellation,
    "E25": e25_feedback_asymmetry,
}

SIMULATED_EXPERIMENTS: frozenset[str] = frozenset(
    {"E2-sim", "E4-sim", "E8", "E10", "E12", "E13", "E14", "E15", "E18", "E19",
     "E21", "E24", "E25"}
)
"""Experiments whose rows come from the discrete-event simulator.

Every registry function accepts ``seed``; for the analytic (model-only)
series the kwarg is accepted and ignored so callers — and the parallel
sweep runner — can pass a uniform ``seed`` without special-casing ids.
Only the ids listed here actually consume it.
"""


def experiment_ids() -> list[str]:
    """All registered experiment ids."""
    return list(REGISTRY)


@lru_cache(maxsize=None)
def default_seed(experiment_id: str) -> int:
    """The registered default ``seed`` of one experiment, memoised.

    The sweep plane resolves a seed per dispatched point; inspecting
    the function signature costs more than many cache probes, so the
    answer is computed once per experiment id for the process lifetime.
    """
    fn = REGISTRY[experiment_id]
    parameter = inspect.signature(fn).parameters.get("seed")
    if parameter is None or parameter.default is inspect.Parameter.empty:
        return 0
    return int(parameter.default)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        fn = REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None
    return fn(**kwargs)

"""Workloads: traffic generators and canned LAMS scenarios."""

from .generators import (
    ConstantRateSource,
    FiniteBatch,
    OnOffSource,
    SaturatedSource,
)
from .scenarios import (
    DeliveredList,
    PRESETS,
    LinkScenario,
    SimulationSetup,
    build_hdlc_simulation,
    build_lams_simulation,
    build_nbdt_simulation,
    build_simulation,
    preset,
)

__all__ = [
    "ConstantRateSource",
    "DeliveredList",
    "FiniteBatch",
    "LinkScenario",
    "OnOffSource",
    "PRESETS",
    "SaturatedSource",
    "SimulationSetup",
    "build_hdlc_simulation",
    "build_lams_simulation",
    "build_nbdt_simulation",
    "build_simulation",
    "preset",
]

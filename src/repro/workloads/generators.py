"""Traffic generators.

Four source models cover the paper's two analytic regimes and the
burst scenarios between them:

- :class:`FiniteBatch` — N frames available at t=0, then silence: the
  "low traffic" assumption of Section 4 ("the sender receives no
  I-frames until N I-frames are successfully transmitted").
- :class:`SaturatedSource` — the sending buffer never runs dry: the
  "high traffic" regime (incoming rate pinned at ``1/t_f``).
- :class:`ConstantRateSource` — packets at a fixed rate (offered load
  sweeps, flow-control experiments).
- :class:`OnOffSource` — deterministic on/off bursts (stress for the
  Stop-Go mechanism and queue dynamics).

All generators target anything exposing ``accept(packet) -> bool`` —
i.e. either protocol's endpoint — and tag packets with creation time.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol

from ..simulator.engine import Simulator

__all__ = [
    "AcceptsPackets",
    "FiniteBatch",
    "SaturatedSource",
    "ConstantRateSource",
    "OnOffSource",
]


class AcceptsPackets(Protocol):
    """Target interface: a DLC endpoint (or anything packet-shaped)."""

    def accept(self, packet: Any) -> bool: ...


def _default_packet(index: int, now: float) -> tuple[str, int, float]:
    return ("pkt", index, now)


class FiniteBatch:
    """All N packets offered at start time (the low-traffic model)."""

    def __init__(
        self,
        sim: Simulator,
        target: AcceptsPackets,
        count: int,
        make_packet: Optional[Callable[[int, float], Any]] = None,
    ) -> None:
        if count < 0:
            raise ValueError("count cannot be negative")
        self.sim = sim
        self.target = target
        self.count = count
        self.make_packet = make_packet or _default_packet
        self.offered = 0
        self.refused = 0

    def start(self) -> None:
        """Offer the whole batch immediately."""
        for index in range(self.count):
            packet = self.make_packet(index, self.sim.now)
            if self.target.accept(packet):
                self.offered += 1
            else:
                self.refused += 1


class SaturatedSource:
    """Keeps the target's buffer topped up: the high-traffic model.

    Refills whenever the backlog (as reported by *backlog_fn*) drops
    below *low_water*, in chunks of *chunk*; checks every
    *poll_interval* seconds.  Uses polling rather than callbacks so it
    works with any endpoint without protocol hooks.
    """

    def __init__(
        self,
        sim: Simulator,
        target: AcceptsPackets,
        backlog_fn: Callable[[], int],
        low_water: int = 64,
        chunk: int = 128,
        poll_interval: float = 0.001,
        make_packet: Optional[Callable[[int, float], Any]] = None,
        limit: Optional[int] = None,
    ) -> None:
        if low_water < 0 or chunk < 1 or poll_interval <= 0:
            raise ValueError("invalid saturation parameters")
        self.sim = sim
        self.target = target
        self.backlog_fn = backlog_fn
        self.low_water = low_water
        self.chunk = chunk
        self.poll_interval = poll_interval
        self.make_packet = make_packet or _default_packet
        self.limit = limit
        self.offered = 0
        self.refused = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        if self.limit is not None and self.offered >= self.limit:
            self._running = False
            return
        if self.backlog_fn() < self.low_water:
            budget = self.chunk
            if self.limit is not None:
                budget = min(budget, self.limit - self.offered)
            for _ in range(budget):
                packet = self.make_packet(self.offered + self.refused, self.sim.now)
                if self.target.accept(packet):
                    self.offered += 1
                else:
                    self.refused += 1
                    break
        self.sim.schedule(self.poll_interval, self._tick)


class ConstantRateSource:
    """One packet every ``1/rate`` seconds."""

    def __init__(
        self,
        sim: Simulator,
        target: AcceptsPackets,
        rate: float,
        make_packet: Optional[Callable[[int, float], Any]] = None,
        limit: Optional[int] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.target = target
        self.interval = 1.0 / rate
        self.make_packet = make_packet or _default_packet
        self.limit = limit
        self.offered = 0
        self.refused = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        self._emit()

    def stop(self) -> None:
        self._running = False

    def _emit(self) -> None:
        if not self._running:
            return
        if self.limit is not None and self.offered + self.refused >= self.limit:
            self._running = False
            return
        packet = self.make_packet(self.offered + self.refused, self.sim.now)
        if self.target.accept(packet):
            self.offered += 1
        else:
            self.refused += 1
        self.sim.schedule(self.interval, self._emit)


class OnOffSource:
    """Deterministic on/off bursts at a given on-rate."""

    def __init__(
        self,
        sim: Simulator,
        target: AcceptsPackets,
        rate: float,
        on_duration: float,
        off_duration: float,
        make_packet: Optional[Callable[[int, float], Any]] = None,
        limit: Optional[int] = None,
    ) -> None:
        if rate <= 0 or on_duration <= 0 or off_duration < 0:
            raise ValueError("invalid on/off parameters")
        self.sim = sim
        self.target = target
        self.interval = 1.0 / rate
        self.on_duration = on_duration
        self.off_duration = off_duration
        self.make_packet = make_packet or _default_packet
        self.limit = limit
        self.offered = 0
        self.refused = 0
        self._running = False
        self._phase_end = 0.0

    def start(self) -> None:
        self._running = True
        self._phase_end = self.sim.now + self.on_duration
        self._emit()

    def stop(self) -> None:
        self._running = False

    def _emit(self) -> None:
        if not self._running:
            return
        if self.limit is not None and self.offered + self.refused >= self.limit:
            self._running = False
            return
        if self.sim.now >= self._phase_end:
            # Off phase: sleep, then begin the next burst.
            self._phase_end = self.sim.now + self.off_duration + self.on_duration
            self.sim.schedule(self.off_duration, self._emit)
            return
        packet = self.make_packet(self.offered + self.refused, self.sim.now)
        if self.target.accept(packet):
            self.offered += 1
        else:
            self.refused += 1
        self.sim.schedule(self.interval, self._emit)

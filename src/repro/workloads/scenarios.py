"""Canned LAMS-network scenarios (paper Section 2.1 numbers).

A :class:`LinkScenario` captures one physical/protocol operating point
— rate, distance, residual BERs, protocol knobs — and can materialise
it either as :class:`~repro.analysis.params.ModelParameters` (for the
closed-form model) or as a live simulation (link + protocol endpoints
+ traffic), guaranteeing model and simulation always describe the same
system.

Named presets span the paper's stated envelope:

=================  ========  ===========  ==========  =========
preset             rate       distance     I-BER       C-BER
=================  ========  ===========  ==========  =========
``short_hop``      300 Mbps    2,000 km    1e-7        1e-9
``nominal``        300 Mbps    5,000 km    1e-6        1e-8
``long_haul``        1 Gbps   10,000 km    1e-6        1e-8
``noisy``          300 Mbps    5,000 km    1e-5        1e-7
=================  ========  ===========  ==========  =========
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..analysis.params import ModelParameters
from ..core.config import LamsDlcConfig
from ..core.endpoint import Endpoint, build_endpoint_pair, resolve_protocol
from ..faults.injector import FaultInjector
from ..faults.metrics import RecoveryMetrics
from ..faults.plan import FaultPlan
from ..hdlc.config import HdlcConfig
from ..simulator.engine import Simulator
from ..simulator.errormodel import (
    ErrorModel,
    ErrorModelSpec,
    resolve_link_error_models,
)
from ..simulator.link import FullDuplexLink, LIGHT_SPEED_KM_S
from ..simulator.rng import StreamRegistry
from ..simulator.trace import Tracer

__all__ = [
    "LinkScenario",
    "SimulationSetup",
    "DeliveredList",
    "PRESETS",
    "preset",
    "build_simulation",
    "build_lams_simulation",
    "build_hdlc_simulation",
    "build_nbdt_simulation",
]


@dataclass(frozen=True)
class LinkScenario:
    """One operating point of a LAMS inter-satellite link."""

    name: str = "nominal"
    bit_rate: float = 300e6
    distance_km: float = 5000.0
    iframe_ber: float = 1e-6
    cframe_ber: float = 1e-8
    iframe_payload_bits: int = 8192
    iframe_overhead_bits: int = 80
    cframe_bits: int = 96
    processing_time: float = 10e-6
    checkpoint_interval: float = 0.005
    cumulation_depth: int = 3
    window_size: int = 64
    alpha: float = 0.05
    sequence_bits: int = 7
    numbering_bits: int = 16
    # Registered error-model names (see repro.simulator.errormodel).
    # None keeps the historical default: Bernoulli at the scenario BER
    # when nonzero, perfect otherwise.  Strings only, so the dataclass
    # stays asdict/JSON-clean for sweep cache keys.
    iframe_error_model: Optional[str] = None
    cframe_error_model: Optional[str] = None
    # Asymmetric feedback channel: the reverse direction (receiver ->
    # sender, carrying checkpoints and NAKs) defaults to mirroring the
    # forward model/BER; any of these four decouples it, so checkpoint/
    # NAK loss can be swept independently of the forward BER
    # (Khosravirad & Viswanathan's feedback-error axis).
    reverse_iframe_error_model: Optional[str] = None
    reverse_cframe_error_model: Optional[str] = None
    reverse_iframe_ber: Optional[float] = None
    reverse_cframe_ber: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bit_rate <= 0 or self.distance_km <= 0:
            raise ValueError("rate and distance must be positive")

    # -- derived ---------------------------------------------------------

    @property
    def iframe_bits(self) -> int:
        return self.iframe_payload_bits + self.iframe_overhead_bits

    @property
    def one_way_delay(self) -> float:
        return self.distance_km / LIGHT_SPEED_KM_S

    @property
    def round_trip_time(self) -> float:
        return 2.0 * self.one_way_delay

    @property
    def iframe_time(self) -> float:
        return self.iframe_bits / self.bit_rate

    @property
    def timeout(self) -> float:
        """HDLC's ``t_out = R + alpha``."""
        return self.round_trip_time + self.alpha

    def with_(self, **changes: Any) -> "LinkScenario":
        """A copy with fields replaced (sweep helper)."""
        return replace(self, **changes)

    # -- materialisation -----------------------------------------------------

    def model_parameters(self) -> ModelParameters:
        """The closed-form model's view of this scenario."""
        return ModelParameters.from_link(
            bit_rate=self.bit_rate,
            distance_km=self.distance_km,
            iframe_bits=self.iframe_bits,
            cframe_bits=self.cframe_bits,
            iframe_ber=self.iframe_ber,
            cframe_ber=self.cframe_ber,
            processing_time=self.processing_time,
            checkpoint_interval=self.checkpoint_interval,
            cumulation_depth=self.cumulation_depth,
            window_size=self.window_size,
            alpha=self.alpha,
        )

    def lams_config(self, **overrides: Any) -> LamsDlcConfig:
        base = dict(
            checkpoint_interval=self.checkpoint_interval,
            cumulation_depth=self.cumulation_depth,
            iframe_payload_bits=self.iframe_payload_bits,
            iframe_overhead_bits=self.iframe_overhead_bits,
            cframe_base_bits=self.cframe_bits,
            processing_time=self.processing_time,
            numbering_bits=self.numbering_bits,
        )
        base.update(overrides)
        return LamsDlcConfig(**base)

    def hdlc_config(self, **overrides: Any) -> HdlcConfig:
        base = dict(
            window_size=self.window_size,
            sequence_bits=self.sequence_bits,
            timeout=self.timeout,
            iframe_payload_bits=self.iframe_payload_bits,
            iframe_overhead_bits=self.iframe_overhead_bits,
            control_frame_bits=self.cframe_bits,
            processing_time=self.processing_time,
        )
        base.update(overrides)
        return HdlcConfig(**base)

    def nbdt_config(self, **overrides: Any):
        from ..nbdt.config import NbdtConfig

        base = dict(
            timeout=self.timeout,
            iframe_payload_bits=self.iframe_payload_bits,
            processing_time=self.processing_time,
        )
        base.update(overrides)
        return NbdtConfig(**base)

    def protocol_config(self, protocol: str, **overrides: Any) -> Any:
        """The config dataclass for any protocol name / alias.

        Alias-implied settings (``"gbn"`` -> ``selective=False``,
        ``"nbdt-multiphase"`` -> ``mode="multiphase"``) are folded in
        before *overrides*, so explicit overrides always win.
        """
        family, implied = resolve_protocol(protocol)
        builders = {
            "lams": self.lams_config,
            "hdlc": self.hdlc_config,
            "nbdt": self.nbdt_config,
        }
        try:
            builder = builders[family]
        except KeyError:
            raise ValueError(
                f"no scenario config factory for protocol family {family!r}"
            ) from None
        implied.update(overrides)
        return builder(**implied)

    def build_link(
        self,
        sim: Simulator,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        iframe_errors: Optional[ErrorModelSpec] = None,
        cframe_errors: Optional[ErrorModelSpec] = None,
        reverse_iframe_errors: Optional[ErrorModelSpec] = None,
        reverse_cframe_errors: Optional[ErrorModelSpec] = None,
    ) -> FullDuplexLink:
        """A live link with this scenario's rate/delay/error models.

        The ``*_errors`` arguments accept any
        :data:`~repro.simulator.errormodel.ErrorModelSpec` (instance,
        registered name, ``(name, kwargs)``, mapping) and default to the
        scenario's ``*_error_model`` fields; everything resolves through
        the error-model registry with the scenario's BER and bit rate as
        context, one fresh instance per direction (see
        :func:`~repro.simulator.errormodel.resolve_link_error_models`).
        """
        models = resolve_link_error_models(
            iframe=self.iframe_error_model if iframe_errors is None else iframe_errors,
            cframe=self.cframe_error_model if cframe_errors is None else cframe_errors,
            reverse_iframe=(
                self.reverse_iframe_error_model
                if reverse_iframe_errors is None
                else reverse_iframe_errors
            ),
            reverse_cframe=(
                self.reverse_cframe_error_model
                if reverse_cframe_errors is None
                else reverse_cframe_errors
            ),
            iframe_ber=self.iframe_ber,
            cframe_ber=self.cframe_ber,
            reverse_iframe_ber=self.reverse_iframe_ber,
            reverse_cframe_ber=self.reverse_cframe_ber,
            bit_rate=self.bit_rate,
        )
        return FullDuplexLink(
            sim,
            bit_rate=self.bit_rate,
            propagation_delay=self.one_way_delay,
            name=self.name,
            iframe_errors=models[0],
            cframe_errors=models[1],
            reverse_iframe_errors=models[2],
            reverse_cframe_errors=models[3],
            streams=StreamRegistry(seed=seed),
            tracer=tracer,
        )


class DeliveredList(list):
    """A list that can notify on append (completion detection hooks)."""

    def __init__(self) -> None:
        super().__init__()
        self.on_append: Optional[Any] = None

    def append(self, item: Any) -> None:
        super().append(item)
        if self.on_append is not None:
            self.on_append()


@dataclass
class SimulationSetup:
    """A ready-to-run one-way transfer: A sends, B receives.

    ``fault_injector`` and ``recovery`` are populated when the setup was
    built with a fault plan; otherwise they stay ``None``.
    """

    sim: Simulator
    link: FullDuplexLink
    endpoint_a: Endpoint
    endpoint_b: Endpoint
    delivered: DeliveredList
    tracer: Tracer
    fault_injector: Optional[FaultInjector] = None
    recovery: Optional[RecoveryMetrics] = None
    monitors: Optional[Any] = None
    """Armed :class:`~repro.invariants.monitors.MonitorSuite` when the
    setup was built with ``run_with_invariants=True``."""

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    def finalize_monitors(self) -> Any:
        """Run the monitors' end-of-run checks; returns the suite."""
        if self.monitors is not None:
            self.monitors.finalize(self.sim.now)
        return self.monitors


def build_simulation(
    scenario: LinkScenario,
    protocol: str = "lams",
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    overrides: Optional[dict] = None,
    iframe_errors: Optional[ErrorModelSpec] = None,
    cframe_errors: Optional[ErrorModelSpec] = None,
    reverse_iframe_errors: Optional[ErrorModelSpec] = None,
    reverse_cframe_errors: Optional[ErrorModelSpec] = None,
    error_model: Optional[ErrorModelSpec] = None,
    fault_plan: Optional[FaultPlan] = None,
    run_with_invariants: bool = False,
) -> SimulationSetup:
    """One-way transfer over this scenario's link, any protocol.

    *protocol* is any name from :func:`repro.api.available_protocols`;
    the config is derived from the scenario (plus *overrides*) and the
    endpoints are built through the unified pair-factory registry.  A
    is the sender, B the receiver; the unused halves stay down so
    one-way experiments see no reverse-direction chatter.

    *reverse_iframe_errors* / *reverse_cframe_errors* override the
    receiver->sender direction only (the feedback channel carrying
    checkpoints and NAKs); they default to the scenario's reverse
    fields and, failing that, mirror the forward direction.

    *error_model* is a shorthand :data:`ErrorModelSpec` for the data
    (I-frame) error process — ``"gilbert-elliott"``, ``("bernoulli",
    {"ber": 1e-5})``, an instance — equivalent to passing
    *iframe_errors*.  *fault_plan* schedules a
    :class:`~repro.faults.plan.FaultPlan` on the link via a
    :class:`~repro.faults.injector.FaultInjector` and attaches
    :class:`~repro.faults.metrics.RecoveryMetrics` to the tracer; both
    land on the returned setup.

    *run_with_invariants* arms the full
    :mod:`repro.invariants` monitor suite on the tracer (LAMS-family
    protocols only); the armed suite lands on ``setup.monitors`` and
    ``setup.finalize_monitors()`` runs its end-of-run checks.
    """
    if error_model is not None and iframe_errors is not None:
        raise ValueError("pass error_model or iframe_errors, not both")
    # Lazy import: the topology package sits above workloads in the
    # layering (it consumes LinkScenario); only the spec module is
    # needed here, and only at call time.
    from ..topology.spec import EndpointSpec, LinkSpec
    from ..topology.spec import build_link as _spec_build_link
    from ..topology.spec import instantiate_pair as _spec_instantiate_pair

    sim = Simulator()
    tracer = tracer or Tracer()
    delivered = DeliveredList()
    # The whole one-way setup as a single declarative spec.  The fault
    # plan deliberately stays OFF the spec: the injector must be
    # created after the endpoints start (below) to preserve the event
    # sequence ordering this function has always had.
    spec = LinkSpec(
        name=scenario.name,
        protocol=protocol,
        scenario=scenario,
        overrides=overrides,
        seed=seed,
        iframe_errors=iframe_errors,
        cframe_errors=cframe_errors,
        reverse_iframe_errors=reverse_iframe_errors,
        reverse_cframe_errors=reverse_cframe_errors,
        error_model=error_model,
        endpoint_a=EndpointSpec(receive=False),
        endpoint_b=EndpointSpec(deliver=delivered.append, send=False),
    )
    link = _spec_build_link(spec, sim, tracer=tracer)
    a, b = _spec_instantiate_pair(spec, sim, link, tracer=tracer)
    a.start(send=True, receive=False)
    b.start(send=False, receive=True)
    injector = recovery = None
    if fault_plan is not None and len(fault_plan):
        recovery = RecoveryMetrics(tracer)
        injector = FaultInjector(sim, link, fault_plan, tracer=tracer)
    setup = SimulationSetup(
        sim, link, a, b, delivered, tracer,
        fault_injector=injector, recovery=recovery,
    )
    if run_with_invariants:
        # Lazy import: the invariants package sits above workloads in
        # the layering and is only needed when monitoring is requested.
        from ..invariants.harness import attach_monitors

        setup.monitors = attach_monitors(
            setup, scenario, fault_plan=fault_plan,
            context={"scenario": scenario.name, "protocol": protocol, "seed": seed},
        )
    return setup


def build_lams_simulation(
    scenario: LinkScenario,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    lams_overrides: Optional[dict] = None,
    iframe_errors: Optional[ErrorModel] = None,
    cframe_errors: Optional[ErrorModel] = None,
) -> SimulationSetup:
    """One-way LAMS-DLC transfer (shim over :func:`build_simulation`)."""
    return build_simulation(
        scenario, "lams", seed=seed, tracer=tracer, overrides=lams_overrides,
        iframe_errors=iframe_errors, cframe_errors=cframe_errors,
    )


def build_nbdt_simulation(
    scenario: LinkScenario,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    nbdt_overrides: Optional[dict] = None,
    iframe_errors: Optional[ErrorModel] = None,
    cframe_errors: Optional[ErrorModel] = None,
) -> SimulationSetup:
    """One-way NBDT transfer (shim over :func:`build_simulation`)."""
    return build_simulation(
        scenario, "nbdt", seed=seed, tracer=tracer, overrides=nbdt_overrides,
        iframe_errors=iframe_errors, cframe_errors=cframe_errors,
    )


def build_hdlc_simulation(
    scenario: LinkScenario,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    hdlc_overrides: Optional[dict] = None,
    iframe_errors: Optional[ErrorModel] = None,
    cframe_errors: Optional[ErrorModel] = None,
) -> SimulationSetup:
    """One-way SR-HDLC/GBN transfer (shim over :func:`build_simulation`)."""
    return build_simulation(
        scenario, "hdlc", seed=seed, tracer=tracer, overrides=hdlc_overrides,
        iframe_errors=iframe_errors, cframe_errors=cframe_errors,
    )


PRESETS: dict[str, LinkScenario] = {
    "short_hop": LinkScenario(
        name="short_hop", bit_rate=300e6, distance_km=2000.0,
        iframe_ber=1e-7, cframe_ber=1e-9,
    ),
    "nominal": LinkScenario(name="nominal"),
    # A 1 Gbps DCE must process a frame faster than it serialises
    # (t_proc < t_f = 8.3 us), or the receiver, not the link, becomes
    # the bottleneck and Stop-Go throttles the sender.
    "long_haul": LinkScenario(
        name="long_haul", bit_rate=1e9, distance_km=10_000.0,
        iframe_ber=1e-6, cframe_ber=1e-8, checkpoint_interval=0.010,
        processing_time=2e-6,
    ),
    "noisy": LinkScenario(
        name="noisy", bit_rate=300e6, distance_km=5000.0,
        iframe_ber=1e-5, cframe_ber=1e-7,
    ),
}


def preset(name: str) -> LinkScenario:
    """Look up a named preset scenario."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None

"""The LAMS-DLC sending buffer, with holding-time accounting.

Section 3.4 distinguishes *flow control* (protects the receiver) from
*buffer control* (bounds the sender's holding time, giving the sending
buffer its finite "transparent size" ``B_LAMS``).  This module is the
data structure under both: a FIFO of packets awaiting first
transmission plus a map of outstanding (transmitted, unresolved)
frames, instrumented so experiments can measure exactly the quantities
Section 4 derives — mean holding time ``H_frame`` and buffer occupancy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["OutstandingFrame", "SendBuffer"]


@dataclass(slots=True)
class OutstandingFrame:
    """Bookkeeping for one transmitted-but-unresolved I-frame."""

    seq: int
    payload: Any
    enqueue_time: float
    send_time: float
    expected_arrival: float
    transmit_index: int
    retransmit_count: int = 0
    first_send_time: float = field(default=-1.0)
    origin: int = field(default=-1)
    """Transmit index of the frame's first incarnation (stable identity
    across renumbering; -1 means this IS the first incarnation)."""

    def __post_init__(self) -> None:
        if self.first_send_time < 0:
            self.first_send_time = self.send_time
        if self.origin < 0:
            self.origin = self.transmit_index


class SendBuffer:
    """Pending queue + outstanding map with occupancy/holding statistics.

    *Occupancy* counts both pending and outstanding frames — a frame
    occupies sender memory from enqueue until resolution (release) —
    matching the paper's definition of the sending-buffer requirement.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self._pending: deque[tuple[Any, float]] = deque()
        self._outstanding: dict[int, OutstandingFrame] = {}
        # LAMS issues transmit indices in send order, so the outstanding
        # dict is normally already insertion-ordered by transmit_index;
        # track that so outstanding_frames() can skip the sort.
        self._last_recorded_index = -1
        self._insertion_ordered = True
        # Statistics.
        self.enqueued_total = 0
        self.refused_total = 0
        self.released_total = 0
        self.holding_time_sum = 0.0
        self.holding_samples = 0
        self.peak_occupancy = 0

    # -- occupancy ---------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding)

    @property
    def occupancy(self) -> int:
        """Total frames held (pending + outstanding)."""
        return len(self._pending) + len(self._outstanding)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and self.occupancy >= self.capacity

    @property
    def mean_holding_time(self) -> float:
        """Mean time from first transmission to resolution, over releases."""
        if self.holding_samples == 0:
            return 0.0
        return self.holding_time_sum / self.holding_samples

    # -- pending queue -------------------------------------------------------

    def enqueue(self, packet: Any, now: float) -> bool:
        """Add a packet from the network layer; False if buffer is full."""
        occ = len(self._pending) + len(self._outstanding)
        if self.capacity is not None and occ >= self.capacity:
            self.refused_total += 1
            return False
        self._pending.append((packet, now))
        self.enqueued_total += 1
        occ += 1
        if occ > self.peak_occupancy:
            self.peak_occupancy = occ
        return True

    def has_pending(self) -> bool:
        return bool(self._pending)

    def pop_pending(self) -> tuple[Any, float]:
        """Next (packet, enqueue_time) awaiting first transmission."""
        return self._pending.popleft()

    # -- outstanding map -------------------------------------------------------

    def record_outstanding(self, frame: OutstandingFrame) -> None:
        """Track a just-transmitted frame until it resolves."""
        if frame.seq in self._outstanding:
            raise ValueError(f"sequence {frame.seq} already outstanding")
        self._outstanding[frame.seq] = frame
        if frame.transmit_index >= self._last_recorded_index:
            self._last_recorded_index = frame.transmit_index
        else:
            self._insertion_ordered = False
        occ = len(self._pending) + len(self._outstanding)
        if occ > self.peak_occupancy:
            self.peak_occupancy = occ

    def find(self, seq: int) -> Optional[OutstandingFrame]:
        """The outstanding record for *seq*, or None if already resolved."""
        return self._outstanding.get(seq)

    def remove(self, seq: int) -> OutstandingFrame:
        """Detach *seq* (for renumbering at retransmission) without stats."""
        return self._outstanding.pop(seq)

    def release(self, seq: int, now: float) -> OutstandingFrame:
        """Resolve *seq* as successfully delivered; records holding time.

        Holding time is measured from the frame's *first* transmission,
        matching the paper's ``H_frame`` (the recursion over
        retransmissions is realised by the renumbered record carrying
        ``first_send_time`` forward).
        """
        frame = self._outstanding.pop(seq)
        self.released_total += 1
        self.holding_time_sum += now - frame.first_send_time
        self.holding_samples += 1
        return frame

    def pending_payloads(self) -> list[Any]:
        """Payloads still awaiting first transmission (snapshot)."""
        return [packet for packet, _ in self._pending]

    def outstanding_frames(self) -> Iterator[OutstandingFrame]:
        """Snapshot iteration over outstanding records (sorted by transmit order)."""
        if self._insertion_ordered:
            return iter(list(self._outstanding.values()))
        return iter(sorted(self._outstanding.values(), key=lambda f: f.transmit_index))

    def clear(self) -> None:
        """Drop everything (link teardown)."""
        self._pending.clear()
        self._outstanding.clear()
        self._last_recorded_index = -1
        self._insertion_ordered = True

    def __len__(self) -> int:
        return self.occupancy

    def __repr__(self) -> str:
        return (
            f"SendBuffer(pending={self.pending_count}, "
            f"outstanding={self.outstanding_count}, capacity={self.capacity})"
        )

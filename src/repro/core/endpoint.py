"""Structural endpoint contracts and the unified pair-factory registry.

Every protocol implemented here (LAMS-DLC, SR-HDLC/GBN, NBDT) wires its
link side the same way: an *endpoint* object owning a sender and a
receiver half, built in pairs across a full-duplex link.  This module
captures that shape once:

- :class:`Endpoint` / :class:`EndpointPair` — structural
  ``typing.Protocol`` contracts that every concrete endpoint satisfies,
  so harness code (session manager, experiment runner, workloads) can
  be written against the shape instead of a concrete class.
- a **pair-factory registry** — each protocol family registers one
  builder (``register_pair_factory``); callers construct endpoints
  through :func:`build_endpoint_pair` (or the public facade
  :func:`repro.api.make_endpoint_pair`) instead of protocol-name
  ``if``/``elif`` chains.
- **protocol-name aliases** — the experiment-level names
  (``"gbn"``, ``"nbdt-multiphase"``, ...) resolve to a registered
  family plus the configuration overrides that variant implies.
- a **transport-backend registry** — construction dispatches on the
  ``(protocol, backend)`` pair: the protocol family supplies the state
  machines, the backend supplies the substrate they run on.  ``"des"``
  is the in-process discrete-event simulator; ``"udp"``
  (:mod:`repro.transport`) runs the same state machines over real
  asyncio-UDP sockets.  Backends declare which families they can carry
  (the UDP backend needs a :mod:`repro.core.wire` codec, which only the
  LAMS family has today).

The registry lives here, import-free of the protocol implementations,
so the protocol modules can register themselves without cycles; lookup
lazily imports the built-in families on first use.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Any, Callable, Iterator, Optional, Protocol, runtime_checkable

__all__ = [
    "Endpoint",
    "EndpointPair",
    "PairFactory",
    "TransportBackend",
    "available_backends",
    "available_protocols",
    "build_endpoint_pair",
    "pair_factory",
    "register_backend",
    "register_pair_factory",
    "registered_families",
    "resolve_backend",
    "resolve_protocol",
]


@runtime_checkable
class Endpoint(Protocol):
    """What the harness needs from one side of a protocol link.

    Concrete endpoints (``LamsDlcEndpoint``, ``HdlcEndpoint``,
    ``NbdtEndpoint``) satisfy this structurally; nothing subclasses it.
    """

    name: str

    def start(self, send: bool = True, receive: bool = True) -> None:
        """Bring the endpoint's sender and/or receiver half up."""
        ...

    def stop(self) -> None:
        """Halt both halves (timers cancelled, no further sends)."""
        ...

    def accept(self, packet: Any) -> bool:
        """Queue a packet for transmission; False if the buffer refuses."""
        ...

    def on_frame(self, frame: Any, corrupted: bool) -> None:
        """Dispatch one arriving frame to the proper half."""
        ...


class EndpointPair(Protocol):
    """A wired A/B endpoint pair: tuple-like, unpacks to ``(a, b)``."""

    def __iter__(self) -> Iterator[Endpoint]: ...

    def __getitem__(self, index: int) -> Endpoint: ...

    def __len__(self) -> int: ...


PairFactory = Callable[..., "EndpointPair"]
"""``factory(sim, link, config, *, config_b=None, tracer=None,
deliver_a=None, deliver_b=None, **extras) -> (endpoint_a, endpoint_b)``.

The factory creates *and wires* both endpoints across the link
(endpoint A transmitting on the forward channel, B on the reverse) but
does not start them — the caller decides which halves run.
"""


_FACTORIES: dict[str, PairFactory] = {}

# Built-in families register themselves at import time; lookup imports
# them on demand so the registry has no import-order requirements.
_FAMILY_MODULES = {
    "lams": "repro.core.protocol",
    "hdlc": "repro.hdlc.protocol",
    "nbdt": "repro.nbdt.protocol",
}

# Experiment-level protocol names -> (registered family, config
# overrides the variant implies).  Overrides are applied to the given
# config via dataclasses.replace, so ``make_endpoint_pair("gbn", ...)``
# with a selective-repeat HdlcConfig still builds a Go-Back-N endpoint.
_ALIASES: dict[str, tuple[str, dict[str, Any]]] = {
    "lams": ("lams", {}),
    "lams-dlc": ("lams", {}),
    "hdlc": ("hdlc", {}),
    "sr-hdlc": ("hdlc", {}),
    "gbn": ("hdlc", {"selective": False}),
    "nbdt": ("nbdt", {}),
    "nbdt-continuous": ("nbdt", {"mode": "continuous"}),
    "nbdt-multiphase": ("nbdt", {"mode": "multiphase"}),
}


def register_pair_factory(family: str, factory: Optional[PairFactory] = None):
    """Register *factory* for *family*; usable as a decorator.

    Registering a family name that is not yet an alias also makes the
    bare name resolvable, so third-party protocols plug in with one
    call.
    """

    def _register(fn: PairFactory) -> PairFactory:
        _FACTORIES[family] = fn
        _ALIASES.setdefault(family, (family, {}))
        return fn

    return _register(factory) if factory is not None else _register


def resolve_protocol(protocol: str) -> tuple[str, dict[str, Any]]:
    """Map a protocol name to ``(family, config_overrides)``.

    Raises ``ValueError`` for unknown names (listing the known ones),
    matching the contract of the old per-call-site dispatch.
    """
    try:
        family, overrides = _ALIASES[protocol.lower()]
    except KeyError:
        raise ValueError(
            f"unknown protocol {protocol!r} "
            f"(use one of: {', '.join(sorted(_ALIASES))})"
        ) from None
    return family, dict(overrides)


def pair_factory(family: str) -> PairFactory:
    """The registered factory for *family*, importing built-ins lazily."""
    if family not in _FACTORIES:
        module = _FAMILY_MODULES.get(family)
        if module is not None:
            importlib.import_module(module)
    try:
        return _FACTORIES[family]
    except KeyError:
        raise ValueError(
            f"no pair factory registered for family {family!r} "
            f"(registered: {', '.join(sorted(_FACTORIES)) or 'none'})"
        ) from None


def registered_families() -> list[str]:
    """Families with a factory currently registered (sorted)."""
    return sorted(_FACTORIES)


def available_protocols() -> list[str]:
    """Every resolvable protocol name, aliases included (sorted)."""
    return sorted(_ALIASES)


@dataclasses.dataclass(frozen=True)
class TransportBackend:
    """One substrate endpoint pairs can be built on.

    ``build_pair`` receives the already-resolved family name and its
    registered :data:`PairFactory` plus the standard construction
    arguments; it validates the substrate (clock/link types) and calls
    the factory.  ``families`` restricts which protocol families the
    backend can carry (``None`` means all).
    """

    name: str
    build_pair: Callable[..., "EndpointPair"]
    build_simulation: Optional[Callable[..., Any]] = None
    families: Optional[frozenset[str]] = None
    description: str = ""


_BACKENDS: dict[str, TransportBackend] = {}

# Built-in backends importable on demand (same pattern as the protocol
# families): the UDP backend lives in the transport package and
# registers itself at import time.
_BACKEND_MODULES = {
    "udp": "repro.transport.backend",
}


def register_backend(backend: TransportBackend) -> TransportBackend:
    """Register a :class:`TransportBackend` under its name."""
    _BACKENDS[backend.name.lower()] = backend
    return backend


def resolve_backend(backend: str) -> TransportBackend:
    """Look up *backend*, importing built-in backends lazily."""
    name = backend.lower()
    if name not in _BACKENDS:
        module = _BACKEND_MODULES.get(name)
        if module is not None:
            importlib.import_module(module)
    try:
        return _BACKENDS[name]
    except KeyError:
        known = sorted(set(_BACKENDS) | set(_BACKEND_MODULES))
        raise ValueError(
            f"unknown backend {backend!r} (use one of: {', '.join(known)})"
        ) from None


def available_backends() -> list[str]:
    """Every resolvable backend name (sorted)."""
    return sorted(set(_BACKENDS) | set(_BACKEND_MODULES))


def _des_build_pair(
    family: str,
    factory: PairFactory,
    sim: Any,
    link: Any,
    config: Any,
    **kwargs: Any,
) -> "EndpointPair":
    """The DES backend: the family factory runs on the simulator as-is."""
    return factory(sim, link, config, **kwargs)


register_backend(TransportBackend(
    name="des",
    build_pair=_des_build_pair,
    description="in-process discrete-event simulator (virtual time)",
))


def _apply_overrides(config: Any, overrides: dict[str, Any]) -> Any:
    """Fold alias-implied overrides into a config dataclass, if it has
    the fields (a custom config type without them is left alone)."""
    if not overrides or not dataclasses.is_dataclass(config):
        return config
    names = {f.name for f in dataclasses.fields(config)}
    applicable = {k: v for k, v in overrides.items() if k in names}
    return dataclasses.replace(config, **applicable) if applicable else config


def build_endpoint_pair(
    protocol: str,
    sim: Any,
    link: Any,
    config: Any,
    *,
    backend: str = "des",
    config_b: Any = None,
    tracer: Any = None,
    deliver_a: Optional[Callable[[Any], None]] = None,
    deliver_b: Optional[Callable[[Any], None]] = None,
    **extras: Any,
) -> "EndpointPair":
    """Resolve ``(protocol, backend)`` and build a wired endpoint pair.

    This is the registry-level entry point; the public facade is
    :func:`repro.api.make_endpoint_pair`, which adds documentation and
    re-exports.  ``extras`` pass through to the family factory (e.g.
    LAMS-DLC's ``on_failure_a``/``delivery_interval_b``).

    *backend* selects the substrate: ``"des"`` expects the DES
    :class:`~repro.simulator.engine.Simulator` and a
    :class:`~repro.simulator.link.FullDuplexLink`; ``"udp"`` expects an
    :class:`~repro.transport.clock.AsyncioClock` and a
    :class:`~repro.transport.udp.UdpLink`.  The returned pair is
    created and wired but not started.
    """
    family, overrides = resolve_protocol(protocol)
    impl = resolve_backend(backend)
    if impl.families is not None and family not in impl.families:
        raise ValueError(
            f"protocol family {family!r} is not available on backend "
            f"{impl.name!r} (supported: {', '.join(sorted(impl.families))})"
        )
    factory = pair_factory(family)
    config = _apply_overrides(config, overrides)
    if config_b is not None:
        config_b = _apply_overrides(config_b, overrides)
    return impl.build_pair(
        family, factory, sim, link, config,
        config_b=config_b, tracer=tracer,
        deliver_a=deliver_a, deliver_b=deliver_b,
        **extras,
    )

"""LAMS-DLC frame formats (paper Section 3.1).

Two frame classes exist on the wire:

- **I-frames** carry user data and a sequence number ``N(S)``.
- **C-frames** carry control.  LAMS-DLC defines three commands:

  * *Check-Point-NAK* (check-point command) — periodic; carries the
    cumulative NAK list, the Stop-Go flow-control bit, and (in this
    implementation) the index/issue-time metadata the sender uses for
    release decisions under the paper's deterministic-link assumption.
  * *Enforced-NAK* (resolving command) — a check-point with the
    Enforced bit set, emitted in response to a Request-NAK.
  * *Request-NAK* — sent by the *sender* to probe a suspected link
    failure.

Piggybacking of acknowledgements is deliberately impossible: there is
no N(R) field on I-frames (link-model assumption 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["IFrame", "CheckpointFrame", "RequestNakFrame", "LamsFrame"]


@dataclass(slots=True, eq=False)
class IFrame:
    """An information frame: one sequence number, one payload.

    ``transmit_index`` is the sender's monotonically increasing count of
    I-frame transmissions; because LAMS-DLC renumbers retransmissions,
    sequence numbers are issued in transmit order and the index gives a
    total order usable for trailing-loss detection.

    I-frames are constructed once per transmission on the simulation's
    hottest path, so unlike the (rare) control frames below the class is
    not ``frozen`` — a frozen dataclass pays an ``object.__setattr__``
    call per field on every construction.  Treat instances as immutable
    once on the wire regardless.
    """

    seq: int
    payload: Any
    size_bits: int
    transmit_index: int = 0
    origin: int = -1
    """Transmit index of this frame's *first* incarnation.

    Renumbered retransmissions keep the original incarnation's index
    here, giving the receiver a stable identity for link-level
    duplicate suppression — the paper's "more recent version of
    LAMS-DLC [that] guarantees zero duplication as well as zero loss"
    (Section 3.2).  ``-1`` (the default) means "this is the first
    incarnation": readers should use :attr:`effective_origin`.
    """

    stop_go: bool = False
    """Piggybacked flow-control bit (Section 3.1: LAMS-DLC "does not
    permit the use of piggybacking for acknowledgement, although it
    does use piggybacking for flow control").  Set from the sending
    endpoint's *receiver half* queue state; lets a congested node slow
    its peer every frame instead of every checkpoint interval when
    traffic is bidirectional."""

    is_control = False

    @property
    def effective_origin(self) -> int:
        """The stable incarnation identity (own index for first sends)."""
        return self.transmit_index if self.origin < 0 else self.origin

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError("sequence number cannot be negative")
        if self.size_bits <= 0:
            raise ValueError("I-frame must have positive size")


@dataclass(frozen=True, slots=True)
class CheckpointFrame:
    """Check-Point command / Check-Point-NAK / Enforced-NAK.

    Attributes
    ----------
    cp_index:
        The receiver's checkpoint counter — consecutive commands carry
        consecutive indices, letting the sender notice skipped ones.
    issue_time:
        Receiver clock when issued.  Under the paper's deterministic
        link model (assumption 8 and Section 3.2: "the subnet nodes
        know the precise distances") the clocks are common, and the
        sender compares ``issue_time`` against each outstanding frame's
        expected arrival to decide coverage.
    naks:
        Sequence numbers of erroneous I-frames detected during the last
        ``C_depth`` checkpoint intervals (the cumulative NAK).
    frontier:
        Highest *transmit index* the receiver has observed — its
        reception frontier.  ``None`` until any I-frame header arrives.
        Enables the sender to detect trailing losses: frames that should
        have arrived by ``issue_time`` but lie beyond the frontier were
        lost and no later arrival exists to reveal the gap.  (On the
        wire this would be the absolute frame counter in the style of
        NBDT's 32-bit absolute numbering, reference [7]; since LAMS-DLC
        issues sequence numbers in transmit order the two encodings are
        equivalent, and the index form avoids cyclic-wraparound
        bookkeeping in the implementation.)
    enforced:
        The Enforced bit: True makes this an Enforced-NAK / Resolving
        command (Section 3.2).
    stop_go:
        The Stop-Go flow-control bit (Section 3.4): True = stop/slow.
    """

    cp_index: int
    issue_time: float
    naks: tuple[int, ...] = ()
    frontier: Optional[int] = None
    enforced: bool = False
    stop_go: bool = False
    size_bits: int = 96

    is_control = True

    def __post_init__(self) -> None:
        if self.cp_index < 0:
            raise ValueError("checkpoint index cannot be negative")
        if self.size_bits <= 0:
            raise ValueError("C-frame must have positive size")
        if len(set(self.naks)) != len(self.naks):
            raise ValueError("duplicate sequence numbers in NAK list")

    @property
    def is_resolving_command(self) -> bool:
        """An Enforced-NAK carrying no errors is a pure resynchronisation."""
        return self.enforced and not self.naks


@dataclass(frozen=True, slots=True)
class RequestNakFrame:
    """Sender's probe of a suspected link failure (Section 3.2).

    Acts like the P/F-bit checkpoint of HDLC: the receiver must answer
    immediately with an Enforced-NAK.
    """

    request_time: float
    size_bits: int = 64

    is_control = True

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError("Request-NAK must have positive size")


LamsFrame = IFrame | CheckpointFrame | RequestNakFrame

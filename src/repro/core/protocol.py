"""LAMS-DLC endpoint: sender + receiver halves wired to one link side.

A full-duplex LAMS-DLC association is two endpoints, each containing a
*sender half* (I-frames out, checkpoint commands in) and a *receiver
half* (I-frames in, checkpoint commands out).  All of an endpoint's
outgoing traffic — I-frames, Request-NAKs, and its receiver half's
checkpoint commands — shares its outgoing simplex channel, which is
what makes the paper's "no piggybacking" rule (assumption 4) a real
design decision rather than a formality: control frames compete with
data for the channel and are separately FEC-protected.

Incoming frame dispatch:

====================  ==========================================
frame type            handled by
====================  ==========================================
``IFrame``            receiver half (deliver / log error)
``CheckpointFrame``   sender half (recovery / release / flow)
``RequestNakFrame``   receiver half (answer with Enforced-NAK)
====================  ==========================================
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..simulator.engine import Simulator
from ..simulator.link import FullDuplexLink, SimplexChannel
from ..simulator.trace import Tracer
from .config import LamsDlcConfig
from .endpoint import register_pair_factory
from .frames import CheckpointFrame, IFrame, RequestNakFrame
from .receiver import LamsReceiver
from .sender import LamsSender

__all__ = ["LamsDlcEndpoint", "lams_dlc_pair"]


class LamsDlcEndpoint:
    """One side of a LAMS-DLC link."""

    def __init__(
        self,
        sim: Simulator,
        config: LamsDlcConfig,
        outgoing: SimplexChannel,
        expected_rtt: float,
        name: str = "lams",
        tracer: Optional[Tracer] = None,
        deliver: Optional[Callable[[Any], None]] = None,
        on_failure: Optional[Callable[[], None]] = None,
        delivery_interval: Optional[float] = None,
        link_start_time: float = 0.0,
    ) -> None:
        self.sim = sim
        self.config = config
        self.name = name
        self.tracer = tracer or Tracer()
        self.sender = LamsSender(
            sim,
            config,
            data_channel=outgoing,
            expected_rtt=expected_rtt,
            name=f"{name}.tx",
            tracer=self.tracer,
            on_failure=on_failure,
            link_start_time=link_start_time,
        )
        self.receiver = LamsReceiver(
            sim,
            config,
            control_channel=outgoing,
            expected_rtt=expected_rtt,
            name=f"{name}.rx",
            tracer=self.tracer,
            deliver=deliver,
            delivery_interval=delivery_interval,
        )
        # Section 3.1 piggybacking: outgoing I-frames carry the local
        # receive queue's Stop-Go state.
        self.sender.stop_go_provider = self.receiver.stop_indicated
        # Hoisted per-frame dispatch constants.
        self._piggyback = config.piggyback_flow_control
        self._header_protected = config.header_protected
        # Per-packet fast path: bind accept straight to the sender half
        # unless a subclass overrides it.
        if type(self).accept is LamsDlcEndpoint.accept:
            self.accept = self.sender.accept

    # -- lifecycle --------------------------------------------------------

    def start(self, send: bool = True, receive: bool = True) -> None:
        """Bring the endpoint up.

        One-way experiments disable the unused halves: a pure data
        source runs only its sender half (``receive=False`` silences its
        checkpoint chatter), a pure sink only its receiver half.
        """
        if send:
            self.sender.start()
        if receive:
            self.receiver.start()

    def stop(self) -> None:
        self.sender.stop()
        self.receiver.stop()

    # -- node-facing interface ------------------------------------------------

    def accept(self, packet: Any) -> bool:
        """Queue a packet for transmission (node/network-layer entry point).

        Bound to the sender half's ``accept`` in ``__init__`` so the
        per-packet hot path skips this wrapper; kept as the documented
        interface (and for subclasses that override it).
        """
        return self.sender.accept(packet)

    # -- link-facing interface ---------------------------------------------------

    def on_frame(self, frame: Any, corrupted: bool) -> None:
        """Dispatch one arriving frame to the proper half."""
        # Exact-type check first: I-frames dominate the arrival stream
        # and `type(...) is` beats isinstance on the hot path; the
        # isinstance fallbacks keep subclasses working.
        if type(frame) is IFrame or isinstance(frame, IFrame):
            self.receiver.on_iframe(frame, corrupted)
            # The piggybacked Stop-Go bit rides in the (FEC-protected)
            # header, so it is readable whenever the header is.
            if self._piggyback and (not corrupted or self._header_protected):
                self.sender.note_piggyback_stop_go(frame.stop_go)
        elif isinstance(frame, CheckpointFrame):
            self.sender.on_checkpoint(frame, corrupted)
        elif isinstance(frame, RequestNakFrame):
            self.receiver.on_request_nak(frame, corrupted)
        else:
            raise TypeError(f"unknown frame type: {type(frame).__name__}")

    def __repr__(self) -> str:
        return f"<LamsDlcEndpoint {self.name}>"


@register_pair_factory("lams")
def _make_lams_pair(
    sim: Simulator,
    link: FullDuplexLink,
    config: LamsDlcConfig,
    *,
    config_b: Optional[LamsDlcConfig] = None,
    tracer: Optional[Tracer] = None,
    deliver_a: Optional[Callable[[Any], None]] = None,
    deliver_b: Optional[Callable[[Any], None]] = None,
    on_failure_a: Optional[Callable[[], None]] = None,
    on_failure_b: Optional[Callable[[], None]] = None,
    delivery_interval_b: Optional[float] = None,
) -> tuple[LamsDlcEndpoint, LamsDlcEndpoint]:
    """The registered ``"lams"`` pair factory (see ``repro.api``).

    Endpoint A transmits on the link's forward channel, B on the
    reverse.  Both endpoints share the link's expected RTT, evaluated at
    the link-establishment instant (the paper's deterministic-distance
    assumption lets both ends know it).
    """
    rtt = link.round_trip_time(sim.now)
    endpoint_a = LamsDlcEndpoint(
        sim, config, outgoing=link.forward, expected_rtt=rtt,
        name=f"{link.name}.A", tracer=tracer, deliver=deliver_a,
        on_failure=on_failure_a, link_start_time=sim.now,
    )
    endpoint_b = LamsDlcEndpoint(
        sim, config_b or config, outgoing=link.reverse, expected_rtt=rtt,
        name=f"{link.name}.B", tracer=tracer, deliver=deliver_b,
        on_failure=on_failure_b, delivery_interval=delivery_interval_b,
        link_start_time=sim.now,
    )
    link.attach(endpoint_a.on_frame, endpoint_b.on_frame)
    return endpoint_a, endpoint_b


def lams_dlc_pair(
    sim: Simulator,
    link: FullDuplexLink,
    config: LamsDlcConfig,
    config_b: Optional[LamsDlcConfig] = None,
    tracer: Optional[Tracer] = None,
    deliver_a: Optional[Callable[[Any], None]] = None,
    deliver_b: Optional[Callable[[Any], None]] = None,
    on_failure_a: Optional[Callable[[], None]] = None,
    on_failure_b: Optional[Callable[[], None]] = None,
    delivery_interval_b: Optional[float] = None,
) -> tuple[LamsDlcEndpoint, LamsDlcEndpoint]:
    """Create and wire a pair of endpoints across *link*.

    .. deprecated:: transport backend PR
       Thin shim over the unified factory registry — use
       ``repro.api.make_endpoint_pair("lams", ...)`` instead, which
       also accepts ``backend="udp"``.  Scheduled for removal in the
       1.0 release (see docs/API.md "Backends").
    """
    import warnings

    warnings.warn(
        "lams_dlc_pair is deprecated; use "
        "repro.api.make_endpoint_pair('lams', ...) (removal target: 1.0)",
        DeprecationWarning, stacklevel=2,
    )
    return _make_lams_pair(
        sim, link, config,
        config_b=config_b, tracer=tracer,
        deliver_a=deliver_a, deliver_b=deliver_b,
        on_failure_a=on_failure_a, on_failure_b=on_failure_b,
        delivery_interval_b=delivery_interval_b,
    )

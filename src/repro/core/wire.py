"""Bit-level wire format for LAMS-DLC frames.

The simulator proper carries frame *objects* (their ``size_bits`` drive
timing; corruption is a channel-level coin flip per assumption 9), but a
deployable protocol needs real octets.  This module provides the
serialisation layer: every LAMS-DLC frame type encodes to bytes with a
CRC trailer and decodes back, so the detectable-error assumption is
implementable exactly as stated — a corrupted frame fails its CRC.

Layout (big-endian throughout):

I-frame::

    +------+---------+--------+----------------+--------+--------------+---------+
    | 0x01 | flags:1 | seq:2  | transmit_idx:4 | orig:4 | payload_len:2| payload |
    +------+---------+--------+----------------+--------+--------------+---------+
    | crc32 of everything above                                                  |
    +----------------------------------------------------------------------------+

    flags bit1 = piggybacked stop_go (Section 3.1 flow-control piggybacking).

Check-Point / Enforced-NAK::

    +------+----------+--------------+------------+-------+------------+
    | 0x02 | flags:1  | cp_index:4   | issue_t:8  | fr:5  | nak_count:2|
    +------+----------+--------------+------------+-------+------------+
    | nak seqs: 2 bytes each ... | crc16                               |
    +---------------------------------------------------------------- -+

    flags bit0 = enforced, bit1 = stop_go, bit2 = frontier-present.
    fr = frontier:4 present only when bit2 set (encoded as 4 bytes).

Request-NAK::

    +------+------------+-------+
    | 0x03 | req_time:8 | crc16 |
    +------+------------+-------+

Control frames use CRC-16 (they are short and separately FEC-protected,
assumption 4); I-frames use CRC-32.
"""

from __future__ import annotations

import struct
from typing import Optional, Union

from ..fec.crc import append_crc16, append_crc32, verify_crc16, verify_crc32
from .frames import CheckpointFrame, IFrame, RequestNakFrame

__all__ = [
    "WireFormatError",
    "encode_iframe",
    "decode_iframe",
    "encode_checkpoint",
    "decode_checkpoint",
    "encode_request_nak",
    "decode_request_nak",
    "encode_frame",
    "decode_frame",
    "FRAME_TYPE_IFRAME",
    "FRAME_TYPE_CHECKPOINT",
    "FRAME_TYPE_REQUEST_NAK",
]

FRAME_TYPE_IFRAME = 0x01
FRAME_TYPE_CHECKPOINT = 0x02
FRAME_TYPE_REQUEST_NAK = 0x03

_FLAG_ENFORCED = 0x01
_FLAG_STOP_GO = 0x02
_FLAG_FRONTIER = 0x04


class WireFormatError(ValueError):
    """Malformed or CRC-failing wire data."""


def encode_iframe(frame: IFrame, payload: bytes, origin: Optional[int] = None) -> bytes:
    """Serialise an I-frame around *payload* octets.

    *origin* overrides the transmit index of the frame's first
    incarnation (zero-duplication support); by default the frame's own
    :attr:`~repro.core.frames.IFrame.effective_origin` is used.
    """
    if frame.seq >= 1 << 16:
        raise WireFormatError("sequence number exceeds the 16-bit wire field")
    if len(payload) >= 1 << 16:
        raise WireFormatError("payload exceeds the 16-bit length field")
    origin_value = frame.effective_origin if origin is None else origin
    flags = _FLAG_STOP_GO if frame.stop_go else 0
    header = struct.pack(
        ">BBHIIH",
        FRAME_TYPE_IFRAME,
        flags,
        frame.seq,
        frame.transmit_index & 0xFFFFFFFF,
        origin_value & 0xFFFFFFFF,
        len(payload),
    )
    return append_crc32(header + payload)


def decode_iframe(data: bytes, *, verify: bool = True) -> tuple[IFrame, bytes, int]:
    """Decode an I-frame; returns ``(frame, payload, origin)``.

    Raises :class:`WireFormatError` on truncation, CRC failure, or a
    wrong frame type — all "detectable errors" in the paper's sense.
    ``verify=False`` skips the CRC check (the trailer is still
    stripped): the transport backend's salvage path uses it to recover
    the header of a corrupted-on-the-wire frame, mirroring the DES
    channel's delivery of corrupted frames with readable headers.
    """
    if verify and not verify_crc32(data):
        raise WireFormatError("I-frame CRC check failed")
    if len(data) < 4:
        raise WireFormatError("I-frame too short")
    body = data[:-4]
    if len(body) < 14:
        raise WireFormatError("I-frame too short")
    frame_type, flags, seq, transmit_index, origin, payload_len = struct.unpack(
        ">BBHIIH", body[:14]
    )
    if frame_type != FRAME_TYPE_IFRAME:
        raise WireFormatError(f"not an I-frame (type 0x{frame_type:02x})")
    payload = body[14:]
    if len(payload) != payload_len:
        raise WireFormatError("payload length mismatch")
    try:
        frame = IFrame(
            seq=seq,
            payload=payload,
            size_bits=8 * len(data),
            transmit_index=transmit_index,
            origin=origin,
            stop_go=bool(flags & _FLAG_STOP_GO),
        )
    except ValueError as error:
        raise WireFormatError(f"I-frame rejected: {error}") from error
    return frame, payload, origin


def encode_checkpoint(frame: CheckpointFrame) -> bytes:
    """Serialise a Check-Point / Enforced-NAK command."""
    if len(frame.naks) >= 1 << 16:
        raise WireFormatError("too many NAK entries for the wire format")
    flags = 0
    if frame.enforced:
        flags |= _FLAG_ENFORCED
    if frame.stop_go:
        flags |= _FLAG_STOP_GO
    frontier = frame.frontier
    if frontier is not None:
        flags |= _FLAG_FRONTIER
    parts = [
        struct.pack(
            ">BBId", FRAME_TYPE_CHECKPOINT, flags, frame.cp_index & 0xFFFFFFFF,
            frame.issue_time,
        )
    ]
    if frontier is not None:
        parts.append(struct.pack(">I", frontier & 0xFFFFFFFF))
    parts.append(struct.pack(">H", len(frame.naks)))
    for seq in frame.naks:
        if seq >= 1 << 16:
            raise WireFormatError("NAK sequence number exceeds 16 bits")
        parts.append(struct.pack(">H", seq))
    return append_crc16(b"".join(parts))


def decode_checkpoint(data: bytes, *, verify: bool = True) -> CheckpointFrame:
    """Decode a Check-Point command (``verify=False`` skips the CRC)."""
    if verify and not verify_crc16(data):
        raise WireFormatError("checkpoint CRC check failed")
    if len(data) < 2:
        raise WireFormatError("checkpoint too short")
    body = data[:-2]
    if len(body) < 14:
        raise WireFormatError("checkpoint too short")
    frame_type, flags, cp_index, issue_time = struct.unpack(">BBId", body[:14])
    if frame_type != FRAME_TYPE_CHECKPOINT:
        raise WireFormatError(f"not a checkpoint (type 0x{frame_type:02x})")
    cursor = 14
    frontier: Optional[int] = None
    if flags & _FLAG_FRONTIER:
        if len(body) < cursor + 4:
            raise WireFormatError("checkpoint truncated at frontier")
        (frontier,) = struct.unpack(">I", body[cursor:cursor + 4])
        cursor += 4
    if len(body) < cursor + 2:
        raise WireFormatError("checkpoint truncated at NAK count")
    (nak_count,) = struct.unpack(">H", body[cursor:cursor + 2])
    cursor += 2
    if len(body) != cursor + 2 * nak_count:
        raise WireFormatError("checkpoint NAK list length mismatch")
    naks = struct.unpack(f">{nak_count}H", body[cursor:]) if nak_count else ()
    try:
        return CheckpointFrame(
            cp_index=cp_index,
            issue_time=issue_time,
            naks=tuple(naks),
            frontier=frontier,
            enforced=bool(flags & _FLAG_ENFORCED),
            stop_go=bool(flags & _FLAG_STOP_GO),
            size_bits=8 * len(data),
        )
    except ValueError as error:
        # A CRC-valid body can still be semantically invalid (e.g. a
        # duplicate NAK entry); the frame constructor's plain ValueError
        # must not escape a wire decoder.
        raise WireFormatError(f"checkpoint rejected: {error}") from error


def encode_request_nak(frame: RequestNakFrame) -> bytes:
    """Serialise a Request-NAK probe."""
    return append_crc16(struct.pack(">Bd", FRAME_TYPE_REQUEST_NAK, frame.request_time))


def decode_request_nak(data: bytes, *, verify: bool = True) -> RequestNakFrame:
    """Decode a Request-NAK probe (``verify=False`` skips the CRC)."""
    if verify and not verify_crc16(data):
        raise WireFormatError("Request-NAK CRC check failed")
    if len(data) < 2:
        raise WireFormatError("Request-NAK too short")
    body = data[:-2]
    if len(body) != 9:
        raise WireFormatError("Request-NAK length mismatch")
    frame_type, request_time = struct.unpack(">Bd", body)
    if frame_type != FRAME_TYPE_REQUEST_NAK:
        raise WireFormatError(f"not a Request-NAK (type 0x{frame_type:02x})")
    try:
        return RequestNakFrame(request_time=request_time, size_bits=8 * len(data))
    except ValueError as error:
        raise WireFormatError(f"Request-NAK rejected: {error}") from error


WireDecodable = Union[IFrame, CheckpointFrame, RequestNakFrame]


def encode_frame(frame: WireDecodable, payload: bytes = b"") -> bytes:
    """Serialise any LAMS-DLC frame (dispatch on type)."""
    if isinstance(frame, IFrame):
        return encode_iframe(frame, payload)
    if isinstance(frame, CheckpointFrame):
        return encode_checkpoint(frame)
    if isinstance(frame, RequestNakFrame):
        return encode_request_nak(frame)
    raise TypeError(f"cannot encode {type(frame).__name__}")


def decode_frame(data: bytes, *, verify: bool = True) -> WireDecodable:
    """Decode any LAMS-DLC frame by its leading type octet.

    Accepts arbitrary octets: anything that is not a well-formed,
    CRC-passing LAMS-DLC frame raises :class:`WireFormatError` (and
    nothing else) — the paper's "detectable error" contract at the
    byte level.  ``verify=False`` skips the CRC checks so a known-bad
    frame's structure can still be salvaged when it parses.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise WireFormatError(
            f"wire data must be bytes-like, not {type(data).__name__}"
        )
    data = bytes(data)
    if not data:
        raise WireFormatError("empty frame")
    frame_type = data[0]
    if frame_type == FRAME_TYPE_IFRAME:
        frame, _, _ = decode_iframe(data, verify=verify)
        return frame
    if frame_type == FRAME_TYPE_CHECKPOINT:
        return decode_checkpoint(data, verify=verify)
    if frame_type == FRAME_TYPE_REQUEST_NAK:
        return decode_request_nak(data, verify=verify)
    raise WireFormatError(f"unknown frame type 0x{frame_type:02x}")

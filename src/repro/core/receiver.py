"""The LAMS-DLC receiver half (paper Sections 3.1–3.2).

Responsibilities, straight from the protocol description:

1. Deliver valid I-frames upward *immediately* — out of order is fine
   (the relaxed in-sequence constraint); the destination resequences.
2. Detect erroneous I-frames (corrupted payloads, and losses revealed
   by sequence-number gaps) and log them.
3. Every ``W_cp`` seconds, emit a Check-Point command carrying the
   cumulative NAK list: each error entry is repeated in ``C_depth``
   consecutive checkpoints, then expires.
4. Answer a Request-NAK immediately with an Enforced-NAK listing every
   error logged within the resolving period.
5. Drive flow control: set the Stop-Go bit while the receive queue is
   above its watermark, and — if truly overflowing — discard I-frames
   *but log them as erroneous* so the cumulative NAK recovers them
   (keeping the zero-loss guarantee even under congestion).

The receiver sends checkpoint commands for as long as it is running,
"so long as the link is active" — even during a suspected failure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappush
from typing import Any, Callable, Optional

from ..simulator.engine import Simulator
from ..simulator.link import SimplexChannel
from ..simulator.trace import Tracer
from .config import LamsDlcConfig
from .frames import CheckpointFrame, IFrame, RequestNakFrame
from .seqspace import forward_distance

__all__ = ["LamsReceiver", "ErrorEntry"]


@dataclass(slots=True)
class ErrorEntry:
    """One erroneous I-frame awaiting recovery via cumulative NAKs."""

    seq: int
    detect_time: float
    reports: int = 0


class LamsReceiver:
    """Receiver state machine for one direction of a LAMS-DLC link."""

    def __init__(
        self,
        sim: Simulator,
        config: LamsDlcConfig,
        control_channel: SimplexChannel,
        expected_rtt: float,
        name: str = "lams.rx",
        tracer: Optional[Tracer] = None,
        deliver: Optional[Callable[[Any], None]] = None,
        delivery_interval: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.control_channel = control_channel
        self.expected_rtt = expected_rtt
        self.name = name
        self.tracer = tracer or Tracer()
        # Explicit None check: callables with __len__ (e.g. DeliveryLog)
        # are falsy when empty and must not be replaced.
        self.deliver = deliver if deliver is not None else (lambda packet: None)
        self.delivery_interval = delivery_interval

        self.cp_index = 0
        self.frontier: Optional[int] = None
        self._next_expected_seq: Optional[int] = None
        self._error_log: dict[int, ErrorEntry] = {}
        # Errors kept past cumulative expiry, for Enforced-NAK responses.
        self._resolving_log: deque[ErrorEntry] = deque()
        self._running = False
        self._checkpoint_timer = sim.timer(self._emit_periodic_checkpoint)

        # Receive queue: frames waiting for per-frame processing. With no
        # delivery_interval the queue drains at one frame per t_proc.
        self._receive_queue: deque[Any] = deque()
        self._draining = False
        # Per-frame constants hoisted out of the hot path (all fixed for
        # the lifetime of the endpoint).
        self._header_protected = config.header_protected
        self._numbering_size = config.numbering_size
        self._zero_duplication = config.zero_duplication
        self._rx_capacity = config.receive_queue_capacity
        self._drain_delay_value = (
            delivery_interval if delivery_interval is not None
            else config.processing_time
        )
        self._origin_retention_value = 4.0 * config.resolving_period(expected_rtt)
        # Cached occupancy stat for the per-frame enqueue/drain path
        # (created lazily so its start time matches first use).
        self._rxqueue_stat = None
        self._rxqueue_stat_name = f"{self.name}.rxqueue"

        # Zero-duplication extension: stable incarnation identities of
        # recently delivered frames.  Duplicates only arise within the
        # enforced-recovery horizon, so entries expire after a small
        # multiple of the resolving period — bounded memory.
        self._delivered_origins: dict[int, float] = {}
        self._origin_prune_queue: deque[tuple[float, int]] = deque()

        # Statistics.
        self.iframes_received = 0
        self.iframes_corrupted = 0
        self.gap_losses_detected = 0
        self.delivered = 0
        self.discards = 0
        self.duplicates_suppressed = 0
        self.checkpoints_sent = 0
        self.enforced_sent = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin periodic checkpoint emission."""
        if self._running:
            raise RuntimeError("receiver already started")
        self._running = True
        self._checkpoint_timer.start(self.config.checkpoint_interval)

    def stop(self) -> None:
        """Halt checkpoint emission (link teardown)."""
        self._running = False
        self._checkpoint_timer.cancel()

    @property
    def running(self) -> bool:
        return self._running

    @property
    def resolving_retention(self) -> float:
        """How long error entries stay available for Enforced-NAKs.

        The resolving period bound of Section 3.3 — any error older than
        this has either been recovered or the link has already failed.
        """
        return self.config.resolving_period(self.expected_rtt)

    # -- frame input ----------------------------------------------------------

    def on_iframe(self, frame: IFrame, corrupted: bool) -> None:
        """Handle an arriving I-frame (possibly corrupted)."""
        self.iframes_received += 1
        if corrupted and not self._header_protected:
            # Header unreadable: an effective loss. A later frame's gap
            # or the sender's trailing-loss check will recover it.
            self.iframes_corrupted += 1
            if self.tracer.active:
                self.tracer.emit(self.sim.now, self.name, "iframe_header_lost")
            return

        seq = frame.seq
        # In-order arrival (the overwhelmingly common case) has no gap;
        # only jumps take the full modular-distance path.
        if seq != self._next_expected_seq:
            self._detect_gap(seq)
        self._next_expected_seq = (seq + 1) % self._numbering_size
        frontier = self.frontier
        if frontier is None or frame.transmit_index > frontier:
            self.frontier = frame.transmit_index

        if corrupted:
            self.iframes_corrupted += 1
            self._log_error(seq)
            if self.tracer.active:
                self.tracer.emit(
                    self.sim.now, self.name, "iframe_corrupted", seq=seq
                )
            return

        if self._zero_duplication and self._is_duplicate_incarnation(frame):
            self.duplicates_suppressed += 1
            if self.tracer.active:
                self.tracer.emit(
                    self.sim.now, self.name, "duplicate_suppressed",
                    origin=frame.effective_origin,
                )
            return

        self._enqueue_for_delivery(frame)

    # -- zero-duplication extension -----------------------------------------------

    @property
    def _origin_retention(self) -> float:
        """How long delivered incarnation ids are remembered.

        Duplicates are produced only by enforced recovery, whose
        retransmissions land within roughly one resolving period plus
        one failure budget of the original delivery; 4x the resolving
        period covers that with margin.
        """
        return 4.0 * self.resolving_retention

    def _is_duplicate_incarnation(self, frame: IFrame) -> bool:
        """Record-and-test the frame's stable incarnation identity."""
        now = self.sim.now
        horizon = now - self._origin_retention_value
        while self._origin_prune_queue and self._origin_prune_queue[0][0] < horizon:
            _, stale = self._origin_prune_queue.popleft()
            self._delivered_origins.pop(stale, None)
        # Inlined IFrame.effective_origin (property call per frame).
        origin = frame.origin
        if origin < 0:
            origin = frame.transmit_index
        if origin in self._delivered_origins:
            return True
        self._delivered_origins[origin] = now
        self._origin_prune_queue.append((now, origin))
        return False

    def on_request_nak(self, frame: RequestNakFrame, corrupted: bool) -> None:
        """Answer a (valid) Request-NAK immediately with an Enforced-NAK."""
        if not self._running:
            return  # a dead receiver answers nothing
        if corrupted:
            # An unreadable probe; the sender's failure timer covers this.
            self.tracer.emit(self.sim.now, self.name, "request_nak_corrupted")
            return
        naks = self._resolving_period_errors()
        self._send_checkpoint(naks=naks, enforced=True)
        self.enforced_sent += 1
        self.tracer.emit(self.sim.now, self.name, "enforced_nak", naks=len(naks))

    # -- gap / error logging -----------------------------------------------------

    def _detect_gap(self, seq: int) -> None:
        """Log losses revealed by a jump in the (sequential) numbering.

        LAMS-DLC issues sequence numbers in transmit order (including
        renumbered retransmissions) and the channel is FIFO, so arriving
        headers carry consecutive numbers; any jump means the skipped
        frames were lost in transit.
        """
        if self._next_expected_seq is None:
            # First frame of the conversation: by link-model assumption 1
            # both ends start from sequence number zero, so a nonzero
            # first arrival reveals the loss of everything before it.
            gap = seq
        else:
            gap = forward_distance(self._next_expected_seq, seq, self._numbering_size)
        if gap == 0:
            return
        start = 0 if self._next_expected_seq is None else self._next_expected_seq
        for offset in range(gap):
            lost = (start + offset) % self._numbering_size
            self._log_error(lost)
        self.gap_losses_detected += gap
        if self.tracer.active:
            self.tracer.emit(
                self.sim.now, self.name, "gap_detected", count=gap, upto=seq
            )

    def _log_error(self, seq: int) -> None:
        if seq in self._error_log:
            return
        entry = ErrorEntry(seq=seq, detect_time=self.sim.now)
        self._error_log[seq] = entry
        self._resolving_log.append(entry)
        if self.tracer.active:
            self.tracer.emit(self.sim.now, self.name, "error_logged", seq=seq)

    def _resolving_period_errors(self) -> tuple[int, ...]:
        """All distinct error seqs logged within the resolving period."""
        horizon = self.sim.now - self.resolving_retention
        while self._resolving_log and self._resolving_log[0].detect_time < horizon:
            self._resolving_log.popleft()
        return tuple(dict.fromkeys(entry.seq for entry in self._resolving_log))

    # -- checkpoint emission ---------------------------------------------------------

    def _emit_periodic_checkpoint(self) -> None:
        if not self._running:
            return
        naks = self._cumulative_naks()
        self._send_checkpoint(naks=naks, enforced=False)
        self._checkpoint_timer.start(self.config.checkpoint_interval)

    def _cumulative_naks(self) -> tuple[int, ...]:
        """NAK list for a periodic checkpoint; ages out reported entries."""
        naks = []
        expired = []
        for seq, entry in self._error_log.items():
            naks.append(seq)
            entry.reports += 1
            if entry.reports >= self.config.cumulation_depth:
                expired.append(seq)
        for seq in expired:
            del self._error_log[seq]
        return tuple(naks)

    def _send_checkpoint(self, naks: tuple[int, ...], enforced: bool) -> None:
        stop_go = self._stop_indicated()
        frame = CheckpointFrame(
            cp_index=self.cp_index,
            issue_time=self.sim.now,
            naks=naks,
            frontier=self.frontier,
            enforced=enforced,
            stop_go=stop_go,
            size_bits=self.config.cframe_bits(len(naks)),
        )
        self.cp_index += 1
        self.checkpoints_sent += 1
        self.control_channel.send(frame)
        self.tracer.emit(
            self.sim.now, self.name, "checkpoint_sent",
            index=frame.cp_index, naks=len(naks), enforced=enforced, stop_go=stop_go,
            seqs=naks,
        )

    # -- delivery / flow control --------------------------------------------------------

    def stop_indicated(self) -> bool:
        """Current Stop-Go state of this receiver's queue.

        Public because the co-located sender half piggybacks it onto
        outgoing I-frames (Section 3.1's flow-control piggybacking).
        """
        if not self.config.flow_control_enabled:
            return False
        return len(self._receive_queue) >= self.config.receive_high_watermark

    # Backwards-compatible private alias used by checkpoint emission.
    _stop_indicated = stop_indicated

    def _enqueue_for_delivery(self, frame: IFrame) -> None:
        capacity = self._rx_capacity
        if capacity is not None and len(self._receive_queue) >= capacity:
            # Overflow: discard, but log as erroneous so the cumulative
            # NAK triggers a retransmission — zero loss is preserved.
            self.discards += 1
            self._log_error(frame.seq)
            if self.tracer.active:
                self.tracer.emit(
                    self.sim.now, self.name, "overflow_discard", seq=frame.seq
                )
            return
        self._receive_queue.append(frame.payload)
        depth = len(self._receive_queue)
        now = self.sim.now
        # Inlined _record_queue_depth (once per queued frame).
        stat = self._rxqueue_stat
        if stat is None:
            stat = self._rxqueue_stat = self.tracer.level_stat(
                self._rxqueue_stat_name, start_time=now
            )
        stat.update(now, depth)
        if self.tracer.active:
            self.tracer.emit(now, self.name, "rxqueue_level", depth=depth)
        if not self._draining:
            self._draining = True
            # Inlined sim.schedule (hot: once per queued frame).
            sim = self.sim
            sim._sequence = sequence = sim._sequence + 1
            heappush(sim._heap, (now + self._drain_delay_value, sequence,
                                 self._drain_one, ()))

    def _record_queue_depth(self, depth: int) -> None:
        stat = self._rxqueue_stat
        if stat is None:
            stat = self._rxqueue_stat = self.tracer.level_stat(
                self._rxqueue_stat_name, start_time=self.sim.now
            )
        stat.update(self.sim.now, depth)

    def _drain_delay(self) -> float:
        return self._drain_delay_value

    def _drain_one(self) -> None:
        queue = self._receive_queue
        if not queue:
            self._draining = False
            return
        packet = queue.popleft()
        now = self.sim.now
        # Inlined _record_queue_depth (once per delivered frame).
        stat = self._rxqueue_stat
        if stat is None:
            stat = self._rxqueue_stat = self.tracer.level_stat(
                self._rxqueue_stat_name, start_time=now
            )
        stat.update(now, len(queue))
        self.delivered += 1
        if self.tracer.active:
            self.tracer.emit(
                now, self.name, "payload_delivered", payload=packet
            )
        self.deliver(packet)
        if queue:
            # Inlined sim.schedule (hot: once per delivered frame).
            sim = self.sim
            sim._sequence = sequence = sim._sequence + 1
            heappush(sim._heap, (sim.now + self._drain_delay_value, sequence,
                                 self._drain_one, ()))
        else:
            self._draining = False

    @property
    def receive_queue_length(self) -> int:
        return len(self._receive_queue)

    def queued_payloads(self) -> list[Any]:
        """Payloads accepted but not yet drained upward (zero-loss ledger:
        these count as held, not lost, at end of run)."""
        return list(self._receive_queue)

    def flush(self) -> int:
        """Deliver every queued payload upward immediately; returns count.

        Checkpoint-acknowledged payloads sitting in the receive queue
        have already been released by the sender's ledger, so a teardown
        that discards this receiver without draining them loses them.
        Graceful-teardown paths (session supervisor recycling an
        endpoint generation) call this before dropping the receiver.
        """
        count = 0
        while self._receive_queue:
            self._drain_one()
            count += 1
        return count

    def __repr__(self) -> str:
        return (
            f"<LamsReceiver {self.name} cp={self.cp_index} "
            f"errors={len(self._error_log)} delivered={self.delivered}>"
        )

"""LAMS-DLC: the paper's NAK-based ARQ data-link protocol.

Public surface: :class:`LamsDlcConfig` (all protocol knobs),
:class:`LamsDlcEndpoint` / :func:`lams_dlc_pair` (executable protocol),
and the building blocks (frames, sequence space, send buffer, Stop-Go
flow control) for anyone composing a custom stack.
"""

from .config import LamsDlcConfig
from .endpoint import (
    Endpoint,
    EndpointPair,
    available_protocols,
    register_pair_factory,
    resolve_protocol,
)
from .flowcontrol import StopGoRateController
from .frames import CheckpointFrame, IFrame, LamsFrame, RequestNakFrame
from .protocol import LamsDlcEndpoint, lams_dlc_pair
from .receiver import ErrorEntry, LamsReceiver
from .sendbuf import OutstandingFrame, SendBuffer
from .sender import LamsSender, PendingRetransmission
from .seqspace import (
    SequenceExhausted,
    SequenceSpace,
    cyclic_less_equal,
    forward_distance,
)

__all__ = [
    "CheckpointFrame",
    "Endpoint",
    "EndpointPair",
    "ErrorEntry",
    "IFrame",
    "LamsDlcConfig",
    "LamsDlcEndpoint",
    "LamsFrame",
    "LamsReceiver",
    "LamsSender",
    "OutstandingFrame",
    "PendingRetransmission",
    "RequestNakFrame",
    "SendBuffer",
    "SequenceExhausted",
    "SequenceSpace",
    "StopGoRateController",
    "available_protocols",
    "cyclic_less_equal",
    "forward_distance",
    "lams_dlc_pair",
    "register_pair_factory",
    "resolve_protocol",
]

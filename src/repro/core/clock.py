"""The scheduling contract protocol halves are written against.

The LAMS-DLC sender and receiver halves were historically annotated
with the concrete DES :class:`~repro.simulator.engine.Simulator`.  With
the :mod:`repro.transport` backend the same state machines also run on
an asyncio event loop, so the seam they actually depend on is captured
here as a structural :class:`typing.Protocol`: any object satisfying
:class:`Clock` can drive the protocol halves, whether its notion of
"now" is a simulated clock or wall time.

The contract has two tiers:

**Public surface** — what :class:`Clock` declares: a monotone ``now``,
``schedule``/``schedule_at`` for one-shot callbacks, and ``timer()``
returning a restartable :class:`~repro.simulator.engine.Timer`-shaped
object (``start``/``restart``/``cancel``/``running``/``deadline``).

**Engine heap ABI** — the hot paths in
:mod:`repro.core.receiver` and :mod:`repro.simulator.link` inline
``heappush(clock._heap, (when, clock._sequence, callback, args))``
instead of calling ``schedule``; the heap list, the ``_sequence``
counter, and the :class:`~repro.simulator.engine.Timer` generation
protocol are therefore part of the scheduling ABI, not private detail.
Implementations that are not the DES engine must share that ABI by
subclassing :class:`~repro.simulator.engine.Simulator` (as
:class:`repro.transport.clock.AsyncioClock` does) rather than
re-implementing the surface methods.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable

__all__ = ["Clock", "TimerLike"]


class TimerLike(Protocol):
    """Restartable one-shot timer (the :class:`Timer` shape)."""

    callback: Callable[[], None]

    @property
    def running(self) -> bool: ...

    @property
    def deadline(self) -> Optional[float]: ...

    def start(self, delay: float) -> None: ...

    def restart(self, delay: float) -> None: ...

    def cancel(self) -> None: ...


@runtime_checkable
class Clock(Protocol):
    """What a protocol half needs from its event source.

    Satisfied by the DES :class:`~repro.simulator.engine.Simulator`
    (virtual time, ``run()`` drains the heap) and by
    :class:`repro.transport.clock.AsyncioClock` (wall time, the asyncio
    loop drains the heap).  See the module docstring for the heap ABI
    that implementations must share.
    """

    now: float
    event_count: int

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at ``now + delay``."""
        ...

    def schedule_at(self, when: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at absolute time *when* (>= now)."""
        ...

    def timer(self, callback: Callable[[], None]) -> TimerLike:
        """A restartable one-shot timer invoking *callback* on expiry."""
        ...

"""Configuration for a LAMS-DLC endpoint.

Collects every protocol knob named in the paper — the checkpoint
interval ``W_cp``, the cumulation depth ``C_depth``, frame formats,
processing time — plus the flow-control parameters of Section 3.4 and
engineering limits (buffer capacity, numbering bits) whose required
sizes Section 3.3 bounds.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["LamsDlcConfig"]


def _default_batch_window() -> int:
    """Default transmission-window batch size.

    ``REPRO_BATCH_WINDOW`` overrides it per process (``0`` or ``1``
    disables batching — every frame takes the scalar path), which is how
    the differential tests pin both sides of the batched-vs-scalar
    comparison without threading a parameter through every harness.
    """
    value = os.environ.get("REPRO_BATCH_WINDOW")
    if value is None:
        return 64
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_BATCH_WINDOW must be an integer, got {value!r}"
        ) from None


@dataclass
class LamsDlcConfig:
    """All tunables of one LAMS-DLC endpoint.

    Parameters mirror the paper's notation where one exists:

    - ``checkpoint_interval`` is ``W_cp`` / ``I_cp`` (seconds).
    - ``cumulation_depth`` is ``C_depth`` (checkpoints covering a frame).
    - ``processing_time`` is ``t_proc``.
    - ``numbering_bits`` sizes the cyclic sequence space ``2**bits``;
      Section 3.3 shows the required size is bounded by the resolving
      period over the frame time — :meth:`required_numbering_size`
      computes that bound so configurations can be validated.
    """

    # -- error control (Section 3.2) -------------------------------------
    checkpoint_interval: float = 0.010
    cumulation_depth: int = 3

    # -- frame formats (Section 3.1) --------------------------------------
    iframe_payload_bits: int = 8192
    iframe_overhead_bits: int = 80
    cframe_base_bits: int = 96
    cframe_per_nak_bits: int = 16

    # -- node characteristics (Section 2.2 link model) ---------------------
    processing_time: float = 10e-6
    header_protected: bool = True
    """If True a corrupted I-frame's header (sequence number) is still
    readable — the header shares the control-frame FEC.  If False,
    corrupted frames are effectively lost and only gap / trailing-loss
    detection finds them."""

    # -- sequencing (Section 3.3) ------------------------------------------
    numbering_bits: int = 16

    # -- zero-duplication extension (Section 3.2) ----------------------------
    zero_duplication: bool = False
    """Enable the paper's "more recent version" guarantee: the receiver
    suppresses link-level duplicate deliveries by tracking the stable
    incarnation identity of recently delivered frames.  Duplicates can
    only arise from enforced recovery's conservative retransmissions,
    so the tracking window is a small multiple of the resolving
    period — memory stays bounded."""

    # -- buffers -------------------------------------------------------------
    send_buffer_capacity: Optional[int] = None
    receive_queue_capacity: Optional[int] = None

    # -- transmission batching (performance, not protocol) ---------------------
    batch_window: int = field(default_factory=_default_batch_window)
    """Maximum frames the sender commits to the channel as one batched
    window when the backlog allows (``send_burst``).  Purely a hot-path
    optimisation: corruption verdicts are pre-drawn bulk but remain
    bit-identical to scalar draws, and the window only engages at line
    rate with no retransmissions queued.  ``0`` or ``1`` disables
    batching (see also the ``REPRO_BATCH_WINDOW`` environment
    variable, which sets the default)."""

    # -- flow control (Section 3.4) -------------------------------------------
    flow_control_enabled: bool = True
    piggyback_flow_control: bool = True
    """Section 3.1: acknowledgements are never piggybacked, but flow
    control is.  When traffic is bidirectional, outgoing I-frames carry
    the local receive-queue's Stop-Go bit, and incoming I-frames' bits
    adjust the rate (rate-limited to once per checkpoint interval so
    the AIMD constants keep their per-checkpoint meaning)."""
    rate_decrease_factor: float = 0.5
    rate_increase_step: float = 0.1
    """Fraction of the line rate added back per go indication."""
    min_rate_fraction: float = 0.05
    receive_high_watermark: int = 64
    receive_low_watermark: int = 16

    # -- link lifetime / failure handling (Sections 2.1, 3.2) -----------------
    link_lifetime: Optional[float] = None
    """Seconds the link is expected to remain active (None = unbounded).
    Enforced recovery is only attempted while the expected response fits
    in the remaining lifetime ("recoverable link failure")."""

    def __post_init__(self) -> None:
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.cumulation_depth < 1:
            raise ValueError("cumulation_depth must be >= 1")
        if self.iframe_payload_bits <= 0 or self.iframe_overhead_bits < 0:
            raise ValueError("I-frame sizes must be positive")
        if self.cframe_base_bits <= 0 or self.cframe_per_nak_bits < 0:
            raise ValueError("C-frame sizes must be positive")
        if self.processing_time < 0:
            raise ValueError("processing_time cannot be negative")
        if not 1 <= self.numbering_bits <= 32:
            raise ValueError("numbering_bits must be in [1, 32]")
        if not 0 < self.rate_decrease_factor < 1:
            raise ValueError("rate_decrease_factor must be in (0, 1)")
        if not 0 < self.min_rate_fraction <= 1:
            raise ValueError("min_rate_fraction must be in (0, 1]")
        if self.receive_low_watermark > self.receive_high_watermark:
            raise ValueError("low watermark must not exceed high watermark")
        if self.batch_window < 0:
            raise ValueError("batch_window cannot be negative")

    # -- derived quantities ---------------------------------------------------

    @property
    def iframe_bits(self) -> int:
        """Total I-frame size on the wire."""
        return self.iframe_payload_bits + self.iframe_overhead_bits

    @property
    def numbering_size(self) -> int:
        """Number of distinct sequence numbers, ``2**numbering_bits``."""
        return 1 << self.numbering_bits

    @property
    def checkpoint_timeout(self) -> float:
        """Checkpoint-timer timeout ``C_depth * W_cp`` (Section 3.2)."""
        return self.cumulation_depth * self.checkpoint_interval

    def cframe_bits(self, nak_count: int) -> int:
        """Wire size of a checkpoint carrying *nak_count* sequence numbers.

        Section 3.1: control-frame length "varies according to the
        number of the erroneous I-frames communicated".
        """
        if nak_count < 0:
            raise ValueError("nak_count cannot be negative")
        return self.cframe_base_bits + self.cframe_per_nak_bits * nak_count

    def resolving_period(self, round_trip_time: float) -> float:
        """Upper bound on a frame's holding time (Section 3.3).

        ``R + W_cp/2 + C_depth * W_cp`` — the paper's bound on how long
        the first transmission of an I-frame can remain unresolved.
        """
        return (
            round_trip_time
            + 0.5 * self.checkpoint_interval
            + self.cumulation_depth * self.checkpoint_interval
        )

    def required_numbering_size(self, round_trip_time: float, frame_time: float) -> int:
        """Minimum sequence-number count for continuous operation.

        Section 2.3/3.3: numbering size >= ``H_frame / L̄_frame``, with
        ``H_frame`` bounded by the resolving period in LAMS-DLC.
        """
        if frame_time <= 0:
            raise ValueError("frame_time must be positive")
        return math.ceil(self.resolving_period(round_trip_time) / frame_time)

    def validate_for_link(self, round_trip_time: float, bit_rate: float) -> None:
        """Raise if the numbering space is too small for this link.

        Guards the paper's unique-identification requirement: every
        unacknowledged I-frame must be uniquely numbered.
        """
        frame_time = self.iframe_bits / bit_rate
        needed = self.required_numbering_size(round_trip_time, frame_time)
        if self.numbering_size < needed:
            raise ValueError(
                f"numbering size {self.numbering_size} is below the "
                f"required {needed} for RTT={round_trip_time:g}s at "
                f"{bit_rate:g} bps; increase numbering_bits"
            )

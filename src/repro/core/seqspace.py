"""Cyclic sequence-number space with the unique-identification invariant.

Section 2.3 of the paper: "All ARQ schemes require a numbering
mechanism ... This mechanism must satisfy the condition that at an
arbitrary time, all unacknowledged I-frames may be uniquely identified.
In fact unique numbering is accomplished by cyclically reusing sequence
numbers."

LAMS-DLC's contribution here (Section 3.3) is that renumbering
retransmissions bounds the required space to
``resolving_period / frame_time``.  This class enforces the invariant
mechanically: a number cannot be reissued while still outstanding, and
allocation fails loudly if the space is exhausted — which, per the
paper's bound, cannot happen in a correctly sized configuration.
"""

from __future__ import annotations

__all__ = ["SequenceSpace", "SequenceExhausted", "forward_distance", "cyclic_less_equal"]


class SequenceExhausted(RuntimeError):
    """Every sequence number is currently assigned to an unresolved frame."""


def forward_distance(start: int, end: int, modulus: int) -> int:
    """Steps from *start* forward (cyclically) to *end* in ``Z_modulus``."""
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    return (end - start) % modulus


def cyclic_less_equal(a: int, b: int, reference: int, modulus: int) -> bool:
    """True if *a* is at or before *b*, measured forward from *reference*.

    Orders sequence numbers on the circle by their distance from a known
    trailing point (e.g. the oldest outstanding number), which is the
    standard way to linearise cyclic comparisons.
    """
    return forward_distance(reference, a, modulus) <= forward_distance(reference, b, modulus)


class SequenceSpace:
    """Allocator for cyclically reused sequence numbers.

    >>> space = SequenceSpace(modulus=4)
    >>> [space.allocate() for _ in range(3)]
    [0, 1, 2]
    >>> space.release(1)
    >>> space.allocate()
    3
    >>> space.allocate()   # 0 and 2 still outstanding; next is 0 -> skip...
    Traceback (most recent call last):
        ...
    repro.core.seqspace.SequenceExhausted: ...

    Allocation is strictly sequential (``next`` advances by one per
    allocation) because LAMS-DLC transmits frames in allocation order
    and the receiver relies on sequential numbering for gap detection.
    A sequential allocator can only reuse number ``n`` once ``n`` has
    been released *and* the cursor has wrapped around to it; if the
    cursor reaches a still-outstanding number, the space is exhausted
    for the purposes of in-order numbering and we raise.
    """

    def __init__(self, modulus: int) -> None:
        if modulus < 2:
            raise ValueError("modulus must be at least 2")
        self.modulus = modulus
        self._next = 0
        self._outstanding: set[int] = set()
        self.total_allocated = 0

    @property
    def outstanding_count(self) -> int:
        """Numbers currently assigned to unresolved frames."""
        return len(self._outstanding)

    @property
    def next_value(self) -> int:
        """The number the next :meth:`allocate` will return (if free)."""
        return self._next

    def is_outstanding(self, seq: int) -> bool:
        return seq in self._outstanding

    def allocate(self) -> int:
        """Issue the next sequence number.

        Raises
        ------
        SequenceExhausted
            If the next in-order number is still outstanding — the
            unique-identification invariant would be violated.
        """
        candidate = self._next
        if candidate in self._outstanding:
            raise SequenceExhausted(
                f"sequence number {candidate} is still outstanding "
                f"({len(self._outstanding)}/{self.modulus} numbers in use); "
                "the numbering space is undersized for this link"
            )
        self._outstanding.add(candidate)
        self._next = (candidate + 1) % self.modulus
        self.total_allocated += 1
        return candidate

    def allocate_run(self, max_count: int) -> list[int]:
        """Issue up to *max_count* consecutive numbers in one call.

        Equivalent to repeated :meth:`allocate`, but stops short (no
        exception) when the cursor meets a still-outstanding number —
        the batched transmission window sends what it got and lets the
        next scalar allocation raise :class:`SequenceExhausted`.
        Returns the allocated numbers in issue order.
        """
        if max_count < 0:
            raise ValueError("max_count cannot be negative")
        outstanding = self._outstanding
        candidate = self._next
        modulus = self.modulus
        run: list[int] = []
        for _ in range(max_count):
            if candidate in outstanding:
                break
            outstanding.add(candidate)
            run.append(candidate)
            candidate = (candidate + 1) % modulus
        self._next = candidate
        self.total_allocated += len(run)
        return run

    def release(self, seq: int) -> None:
        """Return *seq* to the pool (frame resolved: acked or renumbered)."""
        try:
            self._outstanding.remove(seq)
        except KeyError:
            raise KeyError(f"sequence number {seq} is not outstanding") from None

    def release_all(self) -> None:
        """Drop all outstanding numbers (link teardown)."""
        self._outstanding.clear()

    def __contains__(self, seq: int) -> bool:
        return seq in self._outstanding

    def __repr__(self) -> str:
        return (
            f"SequenceSpace(modulus={self.modulus}, next={self._next}, "
            f"outstanding={len(self._outstanding)})"
        )

"""The LAMS-DLC sender half (paper Sections 3.2–3.4).

The sender transmits I-frames continuously while the link is available
(buffer control never gates the sending rate — only the receiver's
Stop-Go flow control does), and reacts to the receiver's periodic
Check-Point commands:

- **Checkpoint recovery** — every sequence number NAK'd by a checkpoint
  that is still outstanding is retransmitted *once*, under a brand-new
  sequence number (the renumbering that bounds the numbering space).
  NAKs for numbers no longer outstanding mean "already retransmitted"
  and are ignored, exactly as Section 3.2 specifies.
- **Release** — a valid checkpoint implicitly positively-acknowledges
  every covered outstanding frame it does not NAK.  A frame is covered
  once its (deterministically known) arrival time precedes the
  checkpoint's issue time.  Frames covered but beyond the receiver's
  reception frontier were trailing losses — no later arrival existed to
  reveal the gap — and are retransmitted rather than released.
- **Enforced recovery** — no valid checkpoint for ``C_depth * W_cp``
  trips the checkpoint timer: the sender stops sending *new* I-frames,
  probes with a Request-NAK (if the expected response still fits in the
  remaining link lifetime), and starts the failure timer.  A valid
  Enforced-NAK resumes normal operation and retransmits everything it
  lists; failure-timer expiry declares the link failed and informs the
  network layer.

During a suspected failure, plain (non-enforced) checkpoints still
drive checkpoint recovery but do not resume new-frame transmission —
mirroring the paper's "may do Check-Point Recovery but can not send new
I-frames".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..simulator.engine import Simulator
from ..simulator.link import SimplexChannel
from ..simulator.trace import Tracer
from .config import LamsDlcConfig
from .flowcontrol import StopGoRateController
from .frames import CheckpointFrame, IFrame, RequestNakFrame
from .sendbuf import OutstandingFrame, SendBuffer
from .seqspace import SequenceSpace

__all__ = ["LamsSender", "PendingRetransmission"]


@dataclass(slots=True)
class PendingRetransmission:
    """A frame detached from the outstanding map, awaiting renumbering."""

    payload: Any
    enqueue_time: float
    first_send_time: float
    retransmit_count: int
    cause: str  # "nak" | "trailing" | "enforced"
    origin: int = -1
    """Transmit index of the first incarnation (stable identity)."""


class LamsSender:
    """Sender state machine for one direction of a LAMS-DLC link."""

    def __init__(
        self,
        sim: Simulator,
        config: LamsDlcConfig,
        data_channel: SimplexChannel,
        expected_rtt: float,
        name: str = "lams.tx",
        tracer: Optional[Tracer] = None,
        on_failure: Optional[Callable[[], None]] = None,
        link_start_time: float = 0.0,
    ) -> None:
        self.sim = sim
        self.config = config
        self.data_channel = data_channel
        self.expected_rtt = expected_rtt
        self.name = name
        self.tracer = tracer or Tracer()
        self.on_failure = on_failure or (lambda: None)
        self.link_start_time = link_start_time

        self.buffer = SendBuffer(capacity=config.send_buffer_capacity)
        self.seqspace = SequenceSpace(config.numbering_size)
        self.flow = StopGoRateController(
            decrease_factor=config.rate_decrease_factor,
            increase_step=config.rate_increase_step,
            min_fraction=config.min_rate_fraction,
            enabled=config.flow_control_enabled,
        )
        self._retransmit_queue: deque[PendingRetransmission] = deque()
        self._transmit_index = 0
        self._next_allowed_send = 0.0
        self._pacing_armed = False
        self._started = False

        # Piggybacked flow control (Section 3.1): outgoing I-frames are
        # stamped with the co-located receiver half's Stop-Go state, and
        # incoming piggybacked bits are applied at most once per
        # checkpoint interval (so AIMD constants keep their meaning).
        self.stop_go_provider: Callable[[], bool] = lambda: False
        self._last_piggyback_applied = -float("inf")

        # Failure handling state.
        self.suspended = False  # suspected failure: no new I-frames
        self.failed = False
        self._awaiting_enforced = False
        self._last_probe_time = -float("inf")
        self._checkpoint_timer = sim.timer(self._on_checkpoint_timeout)
        self._failure_timer = sim.timer(self._on_failure_timeout)
        self._seen_any_checkpoint = False

        self.data_channel.on_idle(self._maybe_send)

        # Cached stat objects for the per-frame paths (created lazily so
        # their start times match first use, exactly like Tracer.level).
        self._sendbuf_stat = None
        self._sendbuf_stat_name = f"{self.name}.sendbuf"
        self._holding_stat = None

        # Per-frame constants hoisted out of _transmit (the I-frame size
        # and line rate are fixed for the lifetime of the endpoint).
        self._iframe_bits = config.iframe_bits
        self._iframe_tx_time = config.iframe_bits / data_channel.bit_rate
        self._piggyback = config.piggyback_flow_control
        # Batched transmission window: engaged only when the channel
        # supports send_burst and the configured window allows > 1.
        self._burst_send = (
            getattr(data_channel, "send_burst", None)
            if config.batch_window > 1
            else None
        )
        self._batch_window = config.batch_window

        # Statistics.
        self.iframes_sent = 0
        self.retransmissions = 0
        self.retransmissions_by_cause = {"nak": 0, "trailing": 0, "enforced": 0}
        self.releases = 0
        self.checkpoints_received = 0
        self.checkpoints_corrupted = 0
        self.request_naks_sent = 0
        self.failures_declared = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Arm the initial watchdog and begin transmitting.

        The paper starts the checkpoint timer at the first received
        checkpoint; we additionally arm a startup watchdog of one RTT
        plus the normal timeout so a receiver that never comes up at all
        is also detected (a strict superset of the paper's behaviour).
        """
        if self._started:
            raise RuntimeError("sender already started")
        self._started = True
        self._checkpoint_timer.start(self.expected_rtt + self.config.checkpoint_timeout)
        self._maybe_send()

    def stop(self) -> None:
        """Halt all activity (link teardown)."""
        self._checkpoint_timer.cancel()
        self._failure_timer.cancel()
        self.failed = True

    # -- network-layer interface ----------------------------------------------------

    def accept(self, packet: Any) -> bool:
        """Offer a packet for transmission; False if the buffer refuses."""
        if self.failed:
            return False
        now = self.sim.now
        buffer = self.buffer
        accepted = buffer.enqueue(packet, now)
        if accepted:
            if self.tracer.active:
                self.tracer.emit(
                    now, self.name, "payload_accepted", payload=packet,
                )
            # Inlined _record_occupancy (once per accepted packet).
            stat = self._sendbuf_stat
            if stat is None:
                stat = self._sendbuf_stat = self.tracer.level_stat(
                    self._sendbuf_stat_name, start_time=now
                )
            stat.update(now, len(buffer._pending) + len(buffer._outstanding))
            # Inlined busy-channel early-exit of _maybe_send: saturated
            # sources accept in bursts while a frame is serializing.
            # (try/except is free when no exception fires; the fallback
            # keeps duck-typed channels without the private fields working.)
            channel = self.data_channel
            try:
                busy = channel._transmitting or channel._queue
            except AttributeError:
                busy = not channel.is_idle
            if not busy:
                self._maybe_send()
        return accepted

    @property
    def unresolved_count(self) -> int:
        """Frames not yet known delivered (pending + outstanding + requeued)."""
        return self.buffer.occupancy + len(self._retransmit_queue)

    @property
    def pending_count(self) -> int:
        """Frames awaiting *first* transmission (the drainable backlog)."""
        return self.buffer.pending_count

    @property
    def occupancy(self) -> int:
        """Sending-buffer occupancy (pending + outstanding)."""
        return self.buffer.occupancy

    def held_payloads(self) -> list[Any]:
        """Every payload not yet known delivered (zero-loss accounting).

        Union of pending, outstanding, and requeued-for-retransmission
        frames — on a declared link failure these are exactly the frames
        the network layer can still recover.
        """
        payloads = self.buffer.pending_payloads()
        payloads.extend(record.payload for record in self.buffer.outstanding_frames())
        payloads.extend(job.payload for job in self._retransmit_queue)
        return payloads

    # -- transmission loop ------------------------------------------------------------

    def _maybe_send(self) -> None:
        """Transmit the next frame if pacing, channel, and state allow."""
        if self.failed or not self._started:
            return
        # Inlined SimplexChannel.is_idle (hot: runs once per idle event
        # and once per accepted packet); falls back to the public
        # property for duck-typed channels without the private fields.
        channel = self.data_channel
        try:
            busy = channel._transmitting or channel._queue
        except AttributeError:
            busy = not channel.is_idle
        if busy:
            return  # the channel's idle callback re-enters here
        has_retransmission = bool(self._retransmit_queue)
        # Inlined SendBuffer.has_pending (hot: same call rate as above).
        has_new = bool(self.buffer._pending) and not self.suspended
        if not has_retransmission and not has_new:
            return
        now = self.sim.now
        if now < self._next_allowed_send:
            if not self._pacing_armed:
                self._pacing_armed = True
                self.sim.schedule_at(self._next_allowed_send, self._pacing_expired)
            return
        if has_retransmission:
            job = self._retransmit_queue.popleft()
            self._transmit(
                payload=job.payload,
                enqueue_time=job.enqueue_time,
                first_send_time=job.first_send_time,
                retransmit_count=job.retransmit_count,
                origin=job.origin,
            )
            self.retransmissions += 1
            self.retransmissions_by_cause[job.cause] += 1
        else:
            # Batched window fast path: with a deep backlog, no
            # retransmissions, and pacing at line rate, commit a whole
            # window in one operation (see _send_window for the exact-
            # equivalence argument).
            flow = self.flow
            if (
                self._burst_send is not None
                and len(self.buffer._pending) > 1
                and (not flow.enabled or flow.rate_fraction >= 1.0)
                and getattr(channel, "_is_up", True)
            ):
                self._send_window()
                return
            packet, enqueue_time = self.buffer.pop_pending()
            self._transmit(payload=packet, enqueue_time=enqueue_time)

    def _pacing_expired(self) -> None:
        self._pacing_armed = False
        self._maybe_send()

    def _transmit(
        self,
        payload: Any,
        enqueue_time: float,
        first_send_time: Optional[float] = None,
        retransmit_count: int = 0,
        origin: int = -1,
    ) -> None:
        now = self.sim.now
        seq = self.seqspace.allocate()
        frame = IFrame(
            seq=seq,
            payload=payload,
            size_bits=self._iframe_bits,
            transmit_index=self._transmit_index,
            origin=origin,
            stop_go=self.stop_go_provider() if self._piggyback else False,
        )
        self._transmit_index += 1
        tx_time = self._iframe_tx_time
        channel = self.data_channel
        delay = getattr(channel, "_fixed_delay", None)
        if delay is None:
            delay = channel.propagation_delay(now)
        expected_arrival = now + tx_time + delay
        record = OutstandingFrame(
            seq=seq,
            payload=payload,
            enqueue_time=enqueue_time,
            send_time=now,
            expected_arrival=expected_arrival,
            transmit_index=frame.transmit_index,
            retransmit_count=retransmit_count,
            first_send_time=first_send_time if first_send_time is not None else now,
            origin=origin if origin >= 0 else frame.transmit_index,
        )
        self.buffer.record_outstanding(record)
        # Inlined _record_occupancy (once per frame).
        stat = self._sendbuf_stat
        if stat is None:
            stat = self._sendbuf_stat = self.tracer.level_stat(
                self._sendbuf_stat_name, start_time=now
            )
        buffer = self.buffer
        stat.update(now, len(buffer._pending) + len(buffer._outstanding))
        channel.send(frame)
        self.iframes_sent += 1
        # Inlined StopGoRateController.inter_frame_gap (hot: once per frame).
        flow = self.flow
        self._next_allowed_send = now + (
            tx_time / flow.rate_fraction if flow.enabled else tx_time
        )
        if self.tracer.active:
            self.tracer.emit(
                now, self.name, "iframe_sent",
                seq=seq, index=frame.transmit_index, retx=retransmit_count,
            )
        # Try to queue the next frame right behind this one only when
        # pacing is at line rate; otherwise the pacing timer drives it.

    def _send_window(self) -> None:
        """Commit up to ``batch_window`` new frames as one channel burst.

        Per-frame state matches what ``k`` successive scalar
        ``_transmit`` calls at the frames' departure instants would
        record: sequence numbers allocate in the same order, each
        outstanding record carries its own ``send_time`` and
        ``expected_arrival``, and ``iframe_sent`` is emitted with the
        per-frame departure stamp.  The single occupancy sample is
        exact, not approximate — a first transmission moves one packet
        from pending to outstanding, so the level never changes inside
        the window (releases and accepts sample the stat at their own
        event times in both modes).  Only the piggybacked Stop-Go bits
        are evaluated at commit time rather than per departure — a
        bounded divergence that exists only under bidirectional
        traffic.
        """
        now = self.sim.now
        buffer = self.buffer
        pending = buffer._pending
        channel = self.data_channel
        tx_time = self._iframe_tx_time
        bits = self._iframe_bits
        fixed_delay = getattr(channel, "_fixed_delay", None)
        piggyback = self._piggyback
        provider = self.stop_go_provider
        record_outstanding = buffer.record_outstanding
        pop_pending = buffer.pop_pending
        propagation_delay = channel.propagation_delay
        trace_active = self.tracer.active
        emit = self.tracer.emit
        name = self.name
        index = self._transmit_index
        departure = now
        seqs = self.seqspace.allocate_run(min(self._batch_window, len(pending)))
        if not seqs:
            # The next in-order number is still outstanding; raise the
            # scalar path's SequenceExhausted (allocate fails loudly).
            self.seqspace.allocate()
            raise AssertionError("allocate() must raise after an empty run")
        frames: list[IFrame] = []
        for seq in seqs:
            packet, enqueue_time = pop_pending()
            frame = IFrame(
                seq=seq,
                payload=packet,
                size_bits=bits,
                transmit_index=index,
                origin=-1,
                stop_go=provider() if piggyback else False,
            )
            delay = fixed_delay
            if delay is None:
                delay = propagation_delay(departure)
            record_outstanding(OutstandingFrame(
                seq=seq,
                payload=packet,
                enqueue_time=enqueue_time,
                send_time=departure,
                expected_arrival=departure + tx_time + delay,
                transmit_index=index,
                retransmit_count=0,
                first_send_time=departure,
                origin=index,
            ))
            frames.append(frame)
            if trace_active:
                emit(departure, name, "iframe_sent", seq=seq, index=index, retx=0)
            index += 1
            departure += tx_time
        self._transmit_index = index
        k = len(frames)
        stat = self._sendbuf_stat
        if stat is None:
            stat = self._sendbuf_stat = self.tracer.level_stat(
                self._sendbuf_stat_name, start_time=now
            )
        stat.update(now, len(pending) + len(buffer._outstanding))
        channel.send_burst(frames)
        self.iframes_sent += k
        flow = self.flow
        self._next_allowed_send = (
            now + k * tx_time / flow.rate_fraction if flow.enabled
            else departure
        )

    # -- piggybacked flow control -------------------------------------------------------

    def note_piggyback_stop_go(self, stop: bool) -> None:
        """Apply a Stop-Go bit piggybacked on an incoming I-frame.

        Rate-limited to one application per checkpoint interval;
        frame-rate application would re-scale the AIMD constants.
        """
        if not self._piggyback or self.failed:
            return
        if self.sim.now - self._last_piggyback_applied < self.config.checkpoint_interval:
            return
        self._last_piggyback_applied = self.sim.now
        self.flow.on_stop_go(stop)

    # -- checkpoint handling -----------------------------------------------------------

    def on_checkpoint(self, cp: CheckpointFrame, corrupted: bool) -> None:
        """Process an arriving Check-Point / Enforced-NAK command."""
        if self.failed:
            return
        if corrupted:
            self.checkpoints_corrupted += 1
            self.tracer.emit(self.sim.now, self.name, "checkpoint_corrupted")
            return
        self.checkpoints_received += 1
        self._seen_any_checkpoint = True
        self._checkpoint_timer.start(self.config.checkpoint_timeout)
        self.flow.on_stop_go(cp.stop_go)

        if cp.enforced and self._awaiting_enforced:
            self._failure_timer.cancel()
            self._awaiting_enforced = False
            self.suspended = False
            self.tracer.emit(self.sim.now, self.name, "enforced_recovery_complete")
        elif self._awaiting_enforced:
            # A plain checkpoint while we await the Enforced-NAK means the
            # link is alive but our Request-NAK was lost (e.g. swallowed
            # by the tail of an outage).  Re-probe — each Request-NAK
            # "triggers the failure timer" (Section 3.2), so the failure
            # budget restarts per probe; total failure-detection latency
            # stays bounded because probes only repeat while checkpoints
            # keep arriving, i.e. while the receiver is demonstrably up.
            if self.sim.now - self._last_probe_time >= self.expected_response_time:
                self._send_request_nak()

        cause = "enforced" if cp.enforced else "nak"
        nak_set = set(cp.naks)
        for seq in cp.naks:
            record = self.buffer.find(seq)
            if record is None:
                continue  # already retransmitted under a new number
            self._requeue(record, cause=cause)

        # While a failure check is in progress, plain checkpoints drive
        # retransmission only — never release.  A checkpoint issued after
        # a NAK entry expired could otherwise release a frame whose
        # NAK reports were all lost; the Enforced-NAK's resolving-period
        # list is the authoritative resync point (Section 3.2), and the
        # resolving-period retention is sized so that list still carries
        # the frame.  This is the paper's "may do Check-Point Recovery
        # but can not send new I-frames" state.
        if not self._awaiting_enforced:
            self._release_covered(cp, nak_set)
        self._maybe_send()

    def _requeue(self, record: OutstandingFrame, cause: str) -> None:
        """Detach an outstanding frame for renumbered retransmission."""
        self.buffer.remove(record.seq)
        self.seqspace.release(record.seq)
        self._retransmit_queue.append(
            PendingRetransmission(
                payload=record.payload,
                enqueue_time=record.enqueue_time,
                first_send_time=record.first_send_time,
                retransmit_count=record.retransmit_count + 1,
                cause=cause,
                origin=record.origin,
            )
        )
        if self.tracer.active:
            self.tracer.emit(
                self.sim.now, self.name, "requeue", seq=record.seq, cause=cause,
            )

    def _release_covered(self, cp: CheckpointFrame, nak_set: set[int]) -> None:
        """Release covered frames the checkpoint implicitly acknowledged.

        A frame is covered when it reached the receiver (deterministic
        arrival time, plus its processing time) before the checkpoint
        was issued.  Covered and not NAK'd and within the frontier ⇒
        delivered; beyond the frontier ⇒ trailing loss ⇒ retransmit.

        An Enforced-NAK additionally bounds how far back its error list
        can vouch: the receiver's resolving log only retains errors for
        one resolving period (Section 3.3).  Covered frames *older* than
        that window are ambiguous — their NAK reports may all have been
        lost and already expired — so enforced recovery conservatively
        retransmits them instead of releasing.  This is the corner where
        the paper admits possible duplication; the destination
        resequencer removes any duplicates, and zero loss is preserved.
        """
        guard = self.config.processing_time
        vouch_horizon = None
        if cp.enforced:
            vouch_horizon = cp.issue_time - self.config.resolving_period(self.expected_rtt)
        # Hoisted loop invariants: this scan walks every outstanding
        # frame once per checkpoint, which makes it the hottest
        # non-per-frame loop in the sender.
        issue_time = cp.issue_time
        frontier = cp.frontier
        to_release: list[int] = []
        to_retransmit: list[tuple[OutstandingFrame, str]] = []
        for record in self.buffer.outstanding_frames():
            if record.expected_arrival + guard > issue_time:
                continue  # not yet covered by this checkpoint
            if record.seq in nak_set:
                continue  # handled by the NAK pass
            if frontier is None or record.transmit_index > frontier:
                to_retransmit.append((record, "trailing"))
            elif vouch_horizon is not None and record.expected_arrival < vouch_horizon:
                to_retransmit.append((record, "enforced"))
            else:
                to_release.append(record.seq)
        for record, cause in to_retransmit:
            self._requeue(record, cause=cause)
        holding_stat = self._holding_stat
        if holding_stat is None and to_release:
            holding_stat = self._holding_stat = self.tracer.sample_stat(
                f"{self.name}.holding_time"
            )
        trace_active = self.tracer.active
        now = self.sim.now
        buffer_release = self.buffer.release
        seqspace_release = self.seqspace.release
        holding_add = holding_stat.add if to_release else None
        for seq in to_release:
            released = buffer_release(seq, now)
            seqspace_release(seq)
            self.releases += 1
            holding = now - released.first_send_time
            holding_add(holding)
            if trace_active:
                self.tracer.emit(
                    now, self.name, "iframe_released",
                    seq=seq, holding=holding, retx=released.retransmit_count,
                )
        if to_release or to_retransmit:
            self._record_occupancy()

    # -- failure handling -------------------------------------------------------------

    @property
    def expected_response_time(self) -> float:
        """Normal Request-NAK → Enforced-NAK turnaround (Section 3.2)."""
        return self.expected_rtt + self.config.processing_time

    def _remaining_lifetime(self) -> Optional[float]:
        if self.config.link_lifetime is None:
            return None
        return self.link_start_time + self.config.link_lifetime - self.sim.now

    def _on_checkpoint_timeout(self) -> None:
        """No valid checkpoint for C_depth * W_cp: suspect link failure."""
        if self.failed:
            return
        self.tracer.emit(self.sim.now, self.name, "checkpoint_timeout")
        remaining = self._remaining_lifetime()
        response_budget = self.expected_response_time + self.config.checkpoint_timeout
        if remaining is not None and remaining < response_budget:
            # Unrecoverable within the link lifetime: fail immediately.
            self._declare_failure()
            return
        self.suspended = True
        self._awaiting_enforced = True
        self._send_request_nak()

    def _send_request_nak(self) -> None:
        probe = RequestNakFrame(request_time=self.sim.now)
        self.data_channel.send(probe)
        self.request_naks_sent += 1
        self._last_probe_time = self.sim.now
        self._failure_timer.start(
            self.expected_response_time + self.config.checkpoint_timeout
        )
        self.tracer.emit(self.sim.now, self.name, "request_nak_sent")

    def _on_failure_timeout(self) -> None:
        """Neither Enforced-NAK nor resolving command arrived: link failed."""
        if self.failed:
            return
        self._declare_failure()

    def _declare_failure(self) -> None:
        self.failed = True
        self.failures_declared += 1
        self._checkpoint_timer.cancel()
        self._failure_timer.cancel()
        self.tracer.emit(self.sim.now, self.name, "link_failure_declared")
        self.on_failure()

    # -- instrumentation ----------------------------------------------------------------

    def _record_occupancy(self) -> None:
        stat = self._sendbuf_stat
        if stat is None:
            stat = self._sendbuf_stat = self.tracer.level_stat(
                self._sendbuf_stat_name, start_time=self.sim.now
            )
        stat.update(self.sim.now, self.buffer.occupancy)

    @property
    def mean_holding_time(self) -> float:
        return self.buffer.mean_holding_time

    def __repr__(self) -> str:
        return (
            f"<LamsSender {self.name} sent={self.iframes_sent} "
            f"retx={self.retransmissions} released={self.releases} "
            f"suspended={self.suspended} failed={self.failed}>"
        )

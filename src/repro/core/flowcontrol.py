"""Stop-Go flow control (paper Section 3.4).

The receiver sets the Stop-Go bit of each checkpoint command to 1 when
its receive queue threatens to overflow.  The sender then "decreases
the sending rate of I-frames by some predefined value"; repeated
stop indications keep decreasing it, and a go indication increases it
again.  The paper leaves the adjustment law unspecified — we use
multiplicative decrease / additive increase (the stable choice), with
both constants exposed in :class:`~repro.core.config.LamsDlcConfig`.

Rates are expressed as a *fraction of the line rate*; the controller
converts that into an inter-frame gap for the sender's pacing loop.
"""

from __future__ import annotations

__all__ = ["StopGoRateController"]


class StopGoRateController:
    """Multiplicative-decrease / additive-increase sending-rate control."""

    def __init__(
        self,
        decrease_factor: float = 0.5,
        increase_step: float = 0.1,
        min_fraction: float = 0.05,
        enabled: bool = True,
    ) -> None:
        if not 0 < decrease_factor < 1:
            raise ValueError("decrease_factor must be in (0, 1)")
        if increase_step <= 0:
            raise ValueError("increase_step must be positive")
        if not 0 < min_fraction <= 1:
            raise ValueError("min_fraction must be in (0, 1]")
        self.decrease_factor = decrease_factor
        self.increase_step = increase_step
        self.min_fraction = min_fraction
        self.enabled = enabled
        self.rate_fraction = 1.0
        self.min_fraction_seen = 1.0
        self.stop_indications = 0
        self.go_indications = 0

    def on_stop_go(self, stop: bool) -> None:
        """Apply one checkpoint's Stop-Go bit."""
        if not self.enabled:
            return
        if stop:
            self.stop_indications += 1
            self.rate_fraction = max(
                self.min_fraction, self.rate_fraction * self.decrease_factor
            )
            if self.rate_fraction < self.min_fraction_seen:
                self.min_fraction_seen = self.rate_fraction
        else:
            self.go_indications += 1
            self.rate_fraction = min(1.0, self.rate_fraction + self.increase_step)

    def inter_frame_gap(self, transmission_time: float) -> float:
        """Seconds between the *starts* of consecutive I-frames.

        At full rate this is just the serialization time (back-to-back
        frames); at reduced rate the gap stretches proportionally.
        """
        if transmission_time < 0:
            raise ValueError("transmission_time cannot be negative")
        if not self.enabled:
            return transmission_time
        return transmission_time / self.rate_fraction

    def reset(self) -> None:
        """Return to full rate (link re-initialisation)."""
        self.rate_fraction = 1.0

    def __repr__(self) -> str:
        return f"StopGoRateController(rate={self.rate_fraction:.3f})"

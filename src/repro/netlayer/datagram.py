"""User-facing datagram service.

The service the paper's abstract promises — "a datagram service at the
link level ... with zero packet loss capability" — surfaced as a small
API: a source-side sender assigning per-flow end-to-end sequence
numbers, and a destination-side measurement sink recording exactly-once
in-order delivery and end-to-end delay.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

from ..simulator.engine import Simulator
from .forwarding import ForwardingNetworkLayer
from .packet import Datagram

__all__ = ["DatagramService", "DeliveryLog"]


class DeliveryLog:
    """Destination-side record of delivered datagrams."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.datagrams: list[Datagram] = []
        self.delivery_times: list[float] = []

    def __call__(self, datagram: Datagram) -> None:
        self.datagrams.append(datagram)
        self.delivery_times.append(self.sim.now)

    def __len__(self) -> int:
        return len(self.datagrams)

    @property
    def delays(self) -> list[float]:
        """Per-datagram end-to-end delay."""
        return [
            when - dg.created_at
            for dg, when in zip(self.datagrams, self.delivery_times)
        ]

    def mean_delay(self) -> float:
        delays = self.delays
        return sum(delays) / len(delays) if delays else 0.0

    def in_order(self, source: Hashable) -> bool:
        """True if this source's datagrams arrived in sequence order."""
        seqs = [dg.sequence for dg in self.datagrams if dg.source == source]
        return seqs == sorted(seqs)

    def exactly_once(self, source: Hashable, expected: int) -> bool:
        """True if sequences 0..expected-1 each arrived exactly once."""
        seqs = sorted(dg.sequence for dg in self.datagrams if dg.source == source)
        return seqs == list(range(expected))


class DatagramService:
    """Per-node datagram API on top of a forwarding network layer."""

    def __init__(
        self,
        sim: Simulator,
        network_layer: ForwardingNetworkLayer,
        default_size_bits: int = 8192,
    ) -> None:
        self.sim = sim
        self.network_layer = network_layer
        self.default_size_bits = default_size_bits
        self._next_sequence: dict[Hashable, int] = {}
        self.sent = 0

    @property
    def address(self) -> Hashable:
        return self.network_layer.address

    def send(
        self,
        destination: Hashable,
        data: Any = None,
        size_bits: Optional[int] = None,
    ) -> Datagram:
        """Send one datagram; returns the datagram for correlation."""
        sequence = self._next_sequence.get(destination, 0)
        self._next_sequence[destination] = sequence + 1
        datagram = Datagram(
            source=self.address,
            destination=destination,
            sequence=sequence,
            created_at=self.sim.now,
            data=data,
            size_bits=size_bits or self.default_size_bits,
        )
        self.network_layer.send(datagram)
        self.sent += 1
        return datagram

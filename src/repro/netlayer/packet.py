"""End-to-end datagrams.

The paper relaxes the DLC's in-sequence constraint and moves the
ordering/duplication obligations to the *destination node* (Section
2.3): "To provide a reliable message delivery for its users the
destination node now has responsibility to provide sequencing."  That
requires datagrams to carry end-to-end identity — source, destination,
and a per-source message sequence — independent of any link-level
sequence numbers (which LAMS-DLC reassigns at every retransmission).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["Datagram"]


@dataclass(frozen=True)
class Datagram:
    """One network-layer packet.

    ``sequence`` is the per-source end-to-end number the destination
    resequencer orders and deduplicates on; it is *not* a link sequence
    number.
    """

    source: Hashable
    destination: Hashable
    sequence: int
    created_at: float
    data: Any = None
    size_bits: int = 8192

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise ValueError("sequence cannot be negative")
        if self.size_bits <= 0:
            raise ValueError("size_bits must be positive")

    @property
    def flow_id(self) -> tuple[Hashable, Hashable]:
        """The (source, destination) pair identifying this flow."""
        return (self.source, self.destination)

    @property
    def key(self) -> tuple[Hashable, int]:
        """Uniqueness key for deduplication: (source, sequence)."""
        return (self.source, self.sequence)

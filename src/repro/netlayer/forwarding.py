"""Store-and-forward routing over a constellation graph.

Each satellite is a store-and-forward DCE (Section 2.1): datagrams
arriving over one link are placed straight into the sending buffer of
the next hop's link — the receiving buffer holds nothing beyond
processing slack, which is exactly the property the relaxed in-sequence
constraint buys (Section 3.3: "After processing the I-frame, the
I-frame is moved to the sending buffer of the next hop").

Routing is static shortest-path over the topology known at setup —
adequate for link-lifetime-scale experiments; routes are recomputed by
the experiment harness when the constellation geometry changes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Optional

from ..simulator.engine import Simulator
from ..simulator.node import Node
from .packet import Datagram
from .resequencer import Resequencer

__all__ = ["shortest_path_routes", "ForwardingNetworkLayer"]


def shortest_path_routes(
    topology: dict[Hashable, dict[Hashable, str]],
    origin: Hashable,
    exclude_links: Optional[set[str]] = None,
) -> dict[Hashable, str]:
    """First-hop routing table for *origin* by breadth-first search.

    *topology* maps ``node -> {neighbor: link_name}``.  Returns
    ``destination -> link_name`` for every reachable destination.
    Links named in *exclude_links* are treated as absent (failed links
    reported by the DLC layer).
    """
    if origin not in topology:
        raise KeyError(f"origin {origin!r} not in topology")
    excluded = exclude_links or set()
    routes: dict[Hashable, str] = {}
    first_hop: dict[Hashable, tuple[Hashable, str]] = {}
    visited = {origin}
    frontier: deque[Hashable] = deque([origin])
    while frontier:
        node = frontier.popleft()
        for neighbor, link_name in topology[node].items():
            if neighbor in visited or link_name in excluded:
                continue
            visited.add(neighbor)
            if node == origin:
                first_hop[neighbor] = (neighbor, link_name)
            else:
                first_hop[neighbor] = first_hop[node]
            frontier.append(neighbor)
    for destination, (_, link_name) in first_hop.items():
        routes[destination] = link_name
    return routes


class ForwardingNetworkLayer:
    """Network layer for one node: local delivery or next-hop forwarding.

    Local traffic goes through a :class:`Resequencer` (ordering + dedup)
    and then the user callback.  Transit traffic is queued on the
    next hop's DLC; if that DLC's sending buffer refuses (finite
    capacity), the datagram waits in a retry queue — store-and-forward
    semantics, nothing is dropped at the network layer.
    """

    def __init__(
        self,
        sim: Simulator,
        address: Hashable,
        routes: Optional[dict[Hashable, str]] = None,
        deliver: Optional[Callable[[Datagram], None]] = None,
        retry_interval: float = 0.001,
        topology: Optional[dict[Hashable, dict[Hashable, str]]] = None,
    ) -> None:
        if retry_interval <= 0:
            raise ValueError("retry_interval must be positive")
        self.sim = sim
        self.address = address
        self.routes = routes or {}
        self.resequencer = Resequencer(deliver=deliver)
        self.retry_interval = retry_interval
        self.topology = topology
        """When given, a declared link failure triggers rerouting: routes
        are recomputed over the topology minus failed links, and the
        failed DLC's retained frames are re-injected over the new paths —
        the network-layer half of the paper's zero-loss story ("once the
        sender determines a link failure has occurred it ... informs the
        network layer")."""
        self.node: Optional[Node] = None
        self._retry_queue: deque[Datagram] = deque()
        self._retry_armed = False
        self.forwarded = 0
        self.rerouted = 0
        self.link_failures: list[str] = []
        self.failed_links: set[str] = set()

    def bind(self, node: Node) -> None:
        """Attach to the node whose links this layer drives."""
        self.node = node

    # -- Node's NetworkLayer protocol ------------------------------------

    def on_packet(self, packet: Datagram, from_link: str) -> None:
        if packet.destination == self.address:
            self.resequencer.push(packet)
        else:
            self._forward(packet)

    def on_link_failure(self, link_name: str) -> None:
        self.link_failures.append(link_name)
        if self.topology is None:
            return  # static routing: record only
        self.failed_links.add(link_name)
        self.routes = shortest_path_routes(
            self.topology, self.address, exclude_links=self.failed_links
        )
        # Reclaim everything the failed DLC still holds and push it over
        # the recomputed routes.  Duplicates are possible (frames the
        # remote end received but never acknowledged before the cut);
        # the destination resequencer removes them — loss is not.
        if self.node is None:
            return
        endpoint = self.node.endpoints.get(link_name)
        sender = getattr(endpoint, "sender", None)
        if sender is None or not hasattr(sender, "held_payloads"):
            return
        for packet in sender.held_payloads():
            if not isinstance(packet, Datagram):
                continue
            self.rerouted += 1
            if packet.destination == self.address:
                self.resequencer.push(packet)
            elif packet.destination in self.routes:
                self._forward(packet)
            else:
                # Currently unreachable: park in the retry queue in case
                # a later topology update restores a path.
                self._retry_queue.append(packet)
                self._arm_retry()

    # -- origination ---------------------------------------------------------

    def send(self, packet: Datagram) -> None:
        """Inject a locally originated datagram."""
        if packet.destination == self.address:
            self.resequencer.push(packet)
        else:
            self._forward(packet)

    # -- forwarding machinery ----------------------------------------------------

    def _forward(self, packet: Datagram) -> None:
        if self.node is None:
            raise RuntimeError("network layer not bound to a node")
        link_name = self.routes.get(packet.destination)
        if link_name is None:
            raise KeyError(
                f"node {self.address!r} has no route to {packet.destination!r}"
            )
        if self.node.send(packet, via_link=link_name):
            self.forwarded += 1
        else:
            self._retry_queue.append(packet)
            self._arm_retry()

    def _arm_retry(self) -> None:
        if not self._retry_armed:
            self._retry_armed = True
            self.sim.schedule(self.retry_interval, self._retry)

    def _retry(self) -> None:
        self._retry_armed = False
        attempts = len(self._retry_queue)
        for _ in range(attempts):
            packet = self._retry_queue.popleft()
            link_name = self.routes.get(packet.destination)
            if link_name is None:
                # Still unreachable after failures; keep parked.
                self._retry_queue.append(packet)
                continue
            assert self.node is not None
            if self.node.send(packet, via_link=link_name):
                self.forwarded += 1
            else:
                self._retry_queue.append(packet)
        if self._retry_queue:
            self._arm_retry()

    @property
    def retry_backlog(self) -> int:
        return len(self._retry_queue)

    def __repr__(self) -> str:
        return f"<ForwardingNetworkLayer {self.address!r} forwarded={self.forwarded}>"

"""Network-layer substrate: datagrams, forwarding, destination resequencing.

Implements the obligations the paper moves *out* of the DLC by relaxing
the in-sequence constraint: per-source ordering and deduplication at the
destination, plus store-and-forward transit over a constellation graph.
"""

from .datagram import DatagramService, DeliveryLog
from .forwarding import ForwardingNetworkLayer, shortest_path_routes
from .packet import Datagram
from .resequencer import FlowState, Resequencer

__all__ = [
    "Datagram",
    "DatagramService",
    "DeliveryLog",
    "FlowState",
    "ForwardingNetworkLayer",
    "Resequencer",
    "shortest_path_routes",
]

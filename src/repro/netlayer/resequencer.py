"""Destination-side resequencing and deduplication.

This is the component that makes the paper's relaxed reliability model
whole: the subnet's DLCs guarantee *no loss* but neither ordering nor
(in the enforced-recovery corner of Section 3.2) uniqueness, so the
destination must (a) drop duplicates and (b) restore per-source order
before handing data to the user.

Because the LAMS DLC layer guarantees zero loss, every per-source
sequence number eventually arrives and in-order release never stalls
forever — the buffering the destination needs is bounded by the
end-to-end delay spread, which Section 2.3 notes is "easily computed"
given the bounded total delay.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

from ..simulator.trace import Tracer
from .packet import Datagram

__all__ = ["Resequencer", "FlowState"]


class FlowState:
    """Per-source ordering state."""

    __slots__ = ("next_expected", "held", "peak_held")

    def __init__(self) -> None:
        self.next_expected = 0
        self.held: dict[int, Datagram] = {}
        self.peak_held = 0

    def __repr__(self) -> str:
        return f"FlowState(next={self.next_expected}, held={len(self.held)})"


class Resequencer:
    """Orders and deduplicates datagrams per source before delivery.

    A datagram with ``sequence < next_expected`` or already held is a
    duplicate and is dropped.  Anything else is held until the in-order
    prefix is complete, then released through *deliver*.
    """

    def __init__(
        self,
        deliver: Optional[Callable[[Datagram], None]] = None,
        tracer: Optional[Tracer] = None,
        clock: Optional[Callable[[], float]] = None,
        name: str = "dest",
    ) -> None:
        # Explicit None check: callables with __len__ (e.g. DeliveryLog)
        # are falsy when empty and must not be replaced.
        self.deliver = deliver if deliver is not None else (lambda dg: None)
        # Optional trace wiring: with a tracer, every in-order release
        # emits ``dest_deliver`` (and drops emit ``duplicate_dropped``),
        # which the destination-ordering invariant monitor consumes.
        self.tracer = tracer
        self.clock = clock or (lambda: 0.0)
        self.name = name
        self.flows: dict[Hashable, FlowState] = {}
        self.delivered = 0
        self.duplicates_dropped = 0
        self.out_of_order_arrivals = 0

    def _flow(self, source: Hashable) -> FlowState:
        state = self.flows.get(source)
        if state is None:
            state = self.flows[source] = FlowState()
        return state

    def push(self, datagram: Datagram) -> list[Datagram]:
        """Accept one datagram; returns the datagrams released in order."""
        flow = self._flow(datagram.source)
        seq = datagram.sequence
        if seq < flow.next_expected or seq in flow.held:
            self.duplicates_dropped += 1
            if self.tracer is not None and self.tracer.active:
                self.tracer.emit(
                    self.clock(), self.name, "duplicate_dropped",
                    flow=datagram.source, seq=seq,
                )
            return []
        if seq != flow.next_expected:
            self.out_of_order_arrivals += 1
        flow.held[seq] = datagram
        if len(flow.held) > flow.peak_held:
            flow.peak_held = len(flow.held)
        released: list[Datagram] = []
        tracer = self.tracer
        trace_active = tracer is not None and tracer.active
        while flow.next_expected in flow.held:
            out = flow.held.pop(flow.next_expected)
            flow.next_expected += 1
            released.append(out)
            self.delivered += 1
            if trace_active:
                tracer.emit(
                    self.clock(), self.name, "dest_deliver",
                    flow=out.source, seq=out.sequence,
                )
            self.deliver(out)
        return released

    def held_count(self, source: Hashable | None = None) -> int:
        """Datagrams currently buffered (for one source or all)."""
        if source is not None:
            flow = self.flows.get(source)
            return len(flow.held) if flow else 0
        return sum(len(flow.held) for flow in self.flows.values())

    def pending_sources(self) -> list[Hashable]:
        """Sources with gaps still open."""
        return [src for src, flow in self.flows.items() if flow.held]

    def __repr__(self) -> str:
        return (
            f"Resequencer(delivered={self.delivered}, "
            f"dups={self.duplicates_dropped}, held={self.held_count()})"
        )

"""Configuration tuning: the paper's design rules as an algorithm.

Sections 2.3–3.4 scatter the rules for choosing LAMS-DLC's knobs; this
module collects them into :func:`recommend_config`:

1. **Checkpoint interval** ``W_cp`` — the buffer-control knob.  Smaller
   means a smaller transparent buffer and shorter holding time, but
   more control-channel overhead.  We pick the largest ``W_cp`` whose
   checkpoint-wait contribution stays below ``wait_budget`` of the RTT
   (the wait term ``(n̄_cp − ½)·W_cp`` is what η loses to checkpointing).
2. **Cumulation depth** ``C_depth`` — robustness vs latency.  Must make
   cumulative NAK loss negligible (``P_C^C_depth < epsilon``) *and*
   cover the channel's burst length (``C_depth·W_cp > L_burst``,
   Section 3.3); failure-detection latency ``C_depth·W_cp`` should not
   exceed ``detection_budget``.
3. **Numbering bits** — the smallest power of two covering the
   Section 3.3 bound with a safety factor of two.
4. **Frame size** — the Section 2.3 goodput optimum
   ``L* ≈ sqrt(h/BER)`` (see :mod:`repro.analysis.framesize`), snapped
   into caller-supplied limits.

The result is a ready :class:`~repro.core.config.LamsDlcConfig`, plus a
rationale dict for reporting.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from ..core.config import LamsDlcConfig
from ..simulator.errormodel import frame_error_probability
from . import framesize

__all__ = ["recommend_config", "recommended_cumulation_depth", "recommended_checkpoint_interval"]


def recommended_checkpoint_interval(
    round_trip_time: float,
    p_c: float,
    wait_budget: float = 0.10,
) -> float:
    """Largest ``W_cp`` keeping the checkpoint wait under *wait_budget*·RTT.

    The per-frame delivery overhead beyond the RTT is
    ``(n̄_cp − ½)·W_cp ≈ W_cp/2`` for small ``P_C``; bounding it by
    ``wait_budget · R`` gives ``W_cp = 2·wait_budget·R/(2·n̄_cp − 1)``.
    """
    if round_trip_time <= 0:
        raise ValueError("round_trip_time must be positive")
    if not 0 < wait_budget < 1:
        raise ValueError("wait_budget must be in (0, 1)")
    n_cp = 1.0 / (1.0 - p_c)
    return 2.0 * wait_budget * round_trip_time / (2.0 * n_cp - 1.0)


def recommended_cumulation_depth(
    w_cp: float,
    p_c: float,
    mean_burst: float = 0.0,
    epsilon: float = 1e-9,
    detection_budget: Optional[float] = None,
) -> int:
    """Smallest ``C_depth`` meeting the loss, burst, and latency rules.

    - NAK-loss negligibility: ``P_C^C_depth < epsilon`` (the paper's
      footnote-1 condition);
    - burst coverage: ``C_depth · W_cp > mean_burst`` (Section 3.3);
    - failure-detection latency: ``C_depth · W_cp <= detection_budget``
      (when given) — raises if the constraints conflict.
    """
    if w_cp <= 0:
        raise ValueError("w_cp must be positive")
    if p_c <= 0:
        from_loss = 1
    else:
        from_loss = max(1, math.ceil(math.log(epsilon) / math.log(p_c)))
    from_burst = max(1, math.ceil(mean_burst / w_cp) + 1) if mean_burst > 0 else 1
    depth = max(from_loss, from_burst, 2)  # depth 1 leaves no slack at all
    if detection_budget is not None and depth * w_cp > detection_budget:
        raise ValueError(
            f"C_depth={depth} needs {depth * w_cp:.4f}s to detect failures, "
            f"over the {detection_budget:.4f}s budget; shrink W_cp or relax "
            "the burst/epsilon requirements"
        )
    return depth


def recommend_config(
    bit_rate: float,
    distance_km: float,
    iframe_ber: float = 1e-6,
    cframe_ber: float = 1e-8,
    overhead_bits: int = 80,
    cframe_bits: int = 96,
    mean_burst: float = 0.0,
    wait_budget: float = 0.10,
    detection_budget: Optional[float] = None,
    min_payload_bits: int = 512,
    max_payload_bits: int = 65_536,
    **config_overrides: Any,
) -> tuple[LamsDlcConfig, dict[str, Any]]:
    """A tuned :class:`LamsDlcConfig` for the given physical link.

    Returns ``(config, rationale)`` where *rationale* records each
    chosen value and the rule that produced it.
    """
    if bit_rate <= 0 or distance_km <= 0:
        raise ValueError("bit_rate and distance must be positive")

    from ..simulator.link import LIGHT_SPEED_KM_S

    round_trip = 2.0 * distance_km / LIGHT_SPEED_KM_S

    # Frame size: the Section-2.3 goodput optimum, clamped.
    optimum = framesize.optimal_frame_size(overhead_bits, iframe_ber,
                                           low=min_payload_bits,
                                           high=max_payload_bits)
    payload_bits = min(max(optimum, min_payload_bits), max_payload_bits)

    p_c = frame_error_probability(cframe_ber, cframe_bits)
    w_cp = recommended_checkpoint_interval(round_trip, p_c, wait_budget)
    c_depth = recommended_cumulation_depth(
        w_cp, p_c, mean_burst=mean_burst, detection_budget=detection_budget
    )

    frame_time = (payload_bits + overhead_bits) / bit_rate
    resolving = round_trip + (0.5 + c_depth) * w_cp
    required_numbers = math.ceil(resolving / frame_time)
    numbering_bits = max(4, math.ceil(math.log2(2 * required_numbers)))

    config = LamsDlcConfig(
        checkpoint_interval=w_cp,
        cumulation_depth=c_depth,
        iframe_payload_bits=payload_bits,
        iframe_overhead_bits=overhead_bits,
        cframe_base_bits=cframe_bits,
        numbering_bits=min(numbering_bits, 32),
        **config_overrides,
    )
    config.validate_for_link(round_trip, bit_rate)
    rationale = {
        "round_trip_time": round_trip,
        "payload_bits": payload_bits,
        "payload_rule": "goodput optimum sqrt(h/BER), clamped",
        "checkpoint_interval": w_cp,
        "checkpoint_rule": f"wait <= {wait_budget:.0%} of RTT",
        "cumulation_depth": c_depth,
        "cumulation_rule": "max(NAK-loss epsilon, burst coverage, 2)",
        "numbering_bits": config.numbering_bits,
        "numbering_rule": f"2x the resolving-period bound ({required_numbers} frames)",
        "failure_detection_latency": c_depth * w_cp,
    }
    return config, rationale

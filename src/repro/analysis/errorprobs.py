"""Retransmission probabilities (paper Section 2 and Section 4).

The paper's core probabilistic argument: with positive-acknowledgement
ARQ a frame is retransmitted when *either* the frame or its
acknowledgement is corrupted, so

    ``P_R >= P_F + P_C - P_F * P_C``

(and with piggybacked acks, where ``P_C = P_F``, ``P_R = 2P_F - P_F²``),
whereas a NAK-only scheme retransmits only on actual frame error:

    ``P_R = P_F``.

From ``P_R`` the geometric retransmission count gives the mean number
of periods ``s̄ = 1/(1-P_R)``, and from ``P_C`` the mean number of
checkpoint commands needed to acknowledge a frame,
``n̄_cp = 1/(1-P_C)``.
"""

from __future__ import annotations

from ..simulator.errormodel import frame_error_probability

__all__ = [
    "frame_error_probability",
    "retransmission_probability_lams",
    "retransmission_probability_posack",
    "retransmission_probability_piggyback",
    "mean_transmissions",
    "mean_checkpoints_needed",
    "geometric_period_pmf",
]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def retransmission_probability_lams(p_f: float) -> float:
    """``P_R`` for the NAK-only LAMS-DLC scheme: just ``P_F``.

    Valid because the probability that all ``C_depth`` checkpoint
    commands covering a frame are lost is negligible (the paper's
    footnote: ``P_C^C_depth < epsilon``).
    """
    _check_probability("p_f", p_f)
    return p_f


def retransmission_probability_posack(p_f: float, p_c: float) -> float:
    """``P_R`` for a positive-ack scheme: ``P_F + P_C - P_F P_C``.

    A frame is resent when the frame itself is corrupted or when its
    acknowledgement is lost/corrupted (Section 2; re-derived for both
    HDLC period types in Section 4, which reach the same expression).
    """
    _check_probability("p_f", p_f)
    _check_probability("p_c", p_c)
    return p_f + p_c - p_f * p_c


def retransmission_probability_piggyback(p_f: float) -> float:
    """``P_R`` with piggybacked acks (``P_C = P_F``): ``2P_F - P_F²``."""
    _check_probability("p_f", p_f)
    return 2.0 * p_f - p_f * p_f


def mean_transmissions(p_r: float) -> float:
    """``s̄ = E[S] = 1/(1-P_R)``: mean periods to deliver one frame.

    ``S`` is geometric: ``Prob[S = k] = (1-P_R) P_R^(k-1)``.
    """
    if not 0.0 <= p_r < 1.0:
        raise ValueError(f"p_r must be in [0, 1), got {p_r!r}")
    return 1.0 / (1.0 - p_r)


def mean_checkpoints_needed(p_c: float) -> float:
    """``n̄_cp = 1/(1-P_C)``: mean checkpoint commands to ack a frame."""
    if not 0.0 <= p_c < 1.0:
        raise ValueError(f"p_c must be in [0, 1), got {p_c!r}")
    return 1.0 / (1.0 - p_c)


def geometric_period_pmf(p_r: float, k: int) -> float:
    """``Prob[S = k] = (1-P_R) P_R^(k-1)`` — the paper's density of S."""
    if not 0.0 <= p_r < 1.0:
        raise ValueError(f"p_r must be in [0, 1), got {p_r!r}")
    if k < 1:
        raise ValueError("k must be >= 1")
    return (1.0 - p_r) * p_r ** (k - 1)

"""Structural bounds: numbering size, resolving period, inconsistency gap.

Sections 2.3 and 3.3 argue three qualitative results that don't appear
in the throughput algebra but are the protocol's *correctness* selling
points; this module makes each quantitative:

1. **Numbering size.**  LAMS-DLC's renumbering bounds a frame's holding
   time by the resolving period ``R + W_cp/2 + C_depth·W_cp``, so the
   sequence space need only cover that many frame-times.  HDLC keeps
   one number per frame for an *unbounded* holding time (geometric
   retransmissions), so its required numbering size has no bound — we
   expose the distribution's quantiles instead.

2. **Inconsistency gap.**  The time the two ends' state variables may
   disagree: bounded for LAMS-DLC (periodic responses), unbounded for
   a pos-ack scheme on a noisy link (a frame can be repeatedly
   corrupted with the sender none the wiser).

3. **GBN discard waste** — the link-frame-length's worth of good frames
   Go-Back-N throws away per error (Section 2.3).
"""

from __future__ import annotations

import math

from .errorprobs import retransmission_probability_posack
from .params import ModelParameters

__all__ = [
    "link_frame_length",
    "lams_resolving_period",
    "lams_required_numbering_size",
    "lams_inconsistency_gap",
    "hdlc_holding_time_quantile",
    "hdlc_required_numbering_size_quantile",
    "hdlc_inconsistency_gap_expected",
    "gbn_discards_per_error",
]


def link_frame_length(round_trip_time: float, iframe_time: float) -> float:
    """Maximum in-transit frames: ``(D_link · T_data)/(V · L_frame)``.

    Expressed in timing terms, one-way propagation over the frame
    transmission time.
    """
    if iframe_time <= 0:
        raise ValueError("iframe_time must be positive")
    return (round_trip_time / 2.0) / iframe_time


def lams_resolving_period(params: ModelParameters) -> float:
    """``R + ½ W_cp + C_depth W_cp`` — LAMS-DLC's bounded holding time."""
    return (
        params.round_trip_time
        + 0.5 * params.checkpoint_interval
        + params.cumulation_depth * params.checkpoint_interval
    )


def lams_required_numbering_size(params: ModelParameters) -> int:
    """``⌈resolving_period / t_f⌉`` — the bounded numbering requirement."""
    return math.ceil(lams_resolving_period(params) / params.iframe_time)


def lams_inconsistency_gap(params: ModelParameters) -> float:
    """Bound on the ends' state disagreement (Section 2.3).

    "the periodic responses in LAMS-DLC guarantee that the
    inconsistency gap will not exceed the expected normal response time
    plus ``C_depth · I_cp``".
    """
    normal_response = params.round_trip_time + params.cframe_time + params.processing_time
    return normal_response + params.cumulation_depth * params.checkpoint_interval


def hdlc_holding_time_quantile(params: ModelParameters, quantile: float) -> float:
    """Holding-time quantile for SR-HDLC — the *unbounded* side.

    A frame needs ``k`` periods with probability
    ``(1-P_R) P_R^(k-1)``; each extra period costs at least ``t_out``.
    The q-quantile of the geometric count times the timeout gives the
    holding time not exceeded with probability *q* — which grows
    without bound as ``q → 1``, which is precisely why HDLC's
    ``H_frame`` (and hence its numbering requirement) is unbounded.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    p_r = retransmission_probability_posack(params.p_f, params.p_c)
    if p_r == 0.0:
        k = 1
    else:
        # Smallest k with P[S <= k] = 1 - P_R^k >= quantile.
        k = max(1, math.ceil(math.log(1.0 - quantile) / math.log(p_r)))
    return params.round_trip_time + (k - 1) * params.timeout


def hdlc_required_numbering_size_quantile(params: ModelParameters, quantile: float) -> int:
    """Numbering size covering the q-quantile holding time for SR-HDLC."""
    return math.ceil(hdlc_holding_time_quantile(params, quantile) / params.iframe_time)


def hdlc_inconsistency_gap_expected(params: ModelParameters) -> float:
    """Expected inconsistency gap for SR-HDLC's SREJ recovery.

    If a SREJ is lost the sender resends after the timeout; repeated
    losses extend the gap geometrically (Section 2.3: "Should such an
    event occur repeatedly, the inconsistency gap of SR-HDLC would be
    unbounded").  The expectation is finite —
    ``t_out · P_R / (1 - P_R)`` beyond the base response — but the
    distribution has unbounded support, unlike LAMS-DLC's hard bound.
    """
    p_r = retransmission_probability_posack(params.p_f, params.p_c)
    base = params.round_trip_time + params.cframe_time + params.processing_time
    return base + params.timeout * p_r / (1.0 - p_r)


def gbn_discards_per_error(params: ModelParameters) -> float:
    """Good frames Go-Back-N discards per frame error (Section 2.3).

    Everything in flight behind the erroneous frame — one link frame
    length, both directions of the feedback loop — is retransmitted:
    approximately ``R / t_f`` frames.
    """
    return params.round_trip_time / params.iframe_time

"""Type-I hybrid ARQ/FEC analysis (paper Section 1, references [13–15]).

"The combination of ARQ and FEC have been proposed to offer high
reliability and improved performance in environments with high error
rate … In Type-I, both the error detecting code and the information are
encapsulated by an FEC code to lower the probability of retransmission."

This module evaluates that combination on top of the LAMS-DLC model:
wrapping every I-frame in a codec of rate ``r`` stretches the frame
time by ``1/r`` but replaces the channel BER with the codec's residual
BER, shrinking ``P_F`` and hence ``s̄``.  The interesting question —
which the paper raises but does not answer — is where the optimum lies:
too little coding wastes time on retransmissions, too much wastes it on
parity bits.

All functions parameterise from the *channel* BER (pre-FEC) so
different codecs are compared at the same physical operating point.
"""

from __future__ import annotations

from typing import Sequence

from ..fec.codec import (
    CodecModel,
    ConcatenatedCodecModel,
    HammingCodecModel,
    IdentityCodec,
    RepetitionCodecModel,
)
from ..simulator.errormodel import frame_error_probability
from . import lams as lams_model
from .params import ModelParameters

__all__ = [
    "STANDARD_LADDER",
    "type1_parameters",
    "type1_goodput_efficiency",
    "codec_sweep",
    "best_codec",
]

#: A strength-ordered ladder of candidate codecs for sweeps.
STANDARD_LADDER: tuple[tuple[str, CodecModel], ...] = (
    ("none", IdentityCodec()),
    ("hamming74", HammingCodecModel()),
    ("rep3", RepetitionCodecModel(n=3)),
    ("hamming74+rep3", ConcatenatedCodecModel(
        inner=HammingCodecModel(), outer=RepetitionCodecModel(n=3))),
    ("rep5", RepetitionCodecModel(n=5)),
)


def type1_parameters(
    base: ModelParameters,
    iframe_bits: int,
    channel_ber: float,
    codec: CodecModel,
) -> ModelParameters:
    """Model parameters for LAMS-DLC under a Type-I codec.

    The frame carries the same ``iframe_bits`` of information but
    occupies ``iframe_bits / rate`` channel bits (longer ``t_f``); its
    error probability derives from the codec's residual BER over the
    information bits.
    """
    if iframe_bits <= 0:
        raise ValueError("iframe_bits must be positive")
    if not 0.0 <= channel_ber < 1.0:
        raise ValueError("channel_ber must be in [0, 1)")
    stretched_time = base.iframe_time / codec.rate
    residual = codec.residual_ber(channel_ber)
    p_f = frame_error_probability(residual, iframe_bits)
    return base.with_(iframe_time=stretched_time, p_f=p_f)


def type1_goodput_efficiency(
    base: ModelParameters,
    iframe_bits: int,
    channel_ber: float,
    codec: CodecModel,
    n_frames: int = 100_000,
) -> float:
    """Information goodput efficiency under a Type-I codec.

    ``η`` from the LAMS-DLC model, computed with the stretched frame
    time, then expressed against the *uncoded* frame time so different
    rates are comparable: delivered information bits per channel
    bit-time.  Equivalently ``η_model · rate``.
    """
    coded = type1_parameters(base, iframe_bits, channel_ber, codec)
    eta = lams_model.throughput_efficiency(coded, n_frames)
    return eta * codec.rate


def codec_sweep(
    base: ModelParameters,
    iframe_bits: int,
    channel_ber: float,
    ladder: Sequence[tuple[str, CodecModel]] = STANDARD_LADDER,
    n_frames: int = 100_000,
) -> list[dict]:
    """Goodput of each candidate codec at one channel operating point."""
    rows = []
    for name, codec in ladder:
        residual = codec.residual_ber(channel_ber)
        rows.append(
            {
                "codec": name,
                "rate": codec.rate,
                "residual_ber": residual,
                "p_f": frame_error_probability(residual, iframe_bits),
                "goodput": type1_goodput_efficiency(
                    base, iframe_bits, channel_ber, codec, n_frames
                ),
            }
        )
    return rows


def best_codec(
    base: ModelParameters,
    iframe_bits: int,
    channel_ber: float,
    ladder: Sequence[tuple[str, CodecModel]] = STANDARD_LADDER,
    n_frames: int = 100_000,
) -> tuple[str, float]:
    """The ladder's goodput-optimal codec at this operating point."""
    rows = codec_sweep(base, iframe_bits, channel_ber, ladder, n_frames)
    winner = max(rows, key=lambda row: row["goodput"])
    return str(winner["codec"]), float(winner["goodput"])

"""Model-level comparisons and sweeps: LAMS-DLC vs SR-HDLC.

The benchmark harness calls these to regenerate the paper's comparison
series; they are also usable directly for exploration::

    >>> from repro.analysis import ModelParameters, compare
    >>> p = ModelParameters.from_link(bit_rate=300e6, distance_km=5000)
    >>> row = compare.comparison_row(p, n_frames=10_000)
    >>> row["winner"]
    'LAMS-DLC'
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from . import hdlc as hdlc_model
from . import lams as lams_model
from .params import ModelParameters

__all__ = [
    "comparison_row",
    "sweep",
    "efficiency_ratio",
    "find_crossover",
]


def comparison_row(
    params: ModelParameters, n_frames: int, variant: str = "derived"
) -> dict[str, float | str]:
    """One table row comparing the two protocols at a parameter point."""
    eta_lams = lams_model.throughput_efficiency(params, n_frames)
    eta_hdlc = hdlc_model.throughput_efficiency(params, n_frames, variant)
    return {
        "p_f": params.p_f,
        "p_c": params.p_c,
        "n_frames": n_frames,
        "s_bar_lams": lams_model.s_bar(params),
        "s_bar_hdlc": hdlc_model.s_bar(params),
        "d_low_lams": lams_model.total_delivery_time_low(params, min(n_frames, params.window_size)),
        "d_low_hdlc": hdlc_model.total_delivery_time_low(
            params, min(n_frames, params.window_size), variant
        ),
        "eta_lams": eta_lams,
        "eta_hdlc": eta_hdlc,
        "ratio": eta_lams / eta_hdlc if eta_hdlc > 0 else float("inf"),
        "buffer_lams": lams_model.transparent_buffer_size(params),
        "winner": "LAMS-DLC" if eta_lams >= eta_hdlc else "SR-HDLC",
    }


def sweep(
    base: ModelParameters,
    field: str,
    values: Sequence,
    n_frames: int,
    variant: str = "derived",
) -> list[dict[str, float | str]]:
    """Comparison rows while varying one :class:`ModelParameters` field."""
    rows = []
    for value in values:
        params = base.with_(**{field: value})
        row = comparison_row(params, n_frames, variant)
        row[field] = value
        rows.append(row)
    return rows


def efficiency_ratio(
    params: ModelParameters, n_frames: int, variant: str = "derived"
) -> float:
    """``η_LAMS / η_HDLC`` — >1 where LAMS-DLC wins."""
    return lams_model.throughput_efficiency(params, n_frames) / hdlc_model.throughput_efficiency(
        params, n_frames, variant
    )


def find_crossover(
    make_params: Callable[[float], ModelParameters],
    low: float,
    high: float,
    n_frames: int,
    variant: str = "derived",
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> Optional[float]:
    """Bisect for the parameter value where the two protocols tie.

    ``make_params(x)`` builds the parameter point for sweep value *x*.
    Returns the crossover location, or None if the advantage has the
    same sign at both ends (no crossover in ``[low, high]``).
    """
    def advantage(x: float) -> float:
        return efficiency_ratio(make_params(x), n_frames, variant) - 1.0

    f_low, f_high = advantage(low), advantage(high)
    if f_low == 0.0:
        return low
    if f_high == 0.0:
        return high
    if (f_low > 0) == (f_high > 0):
        return None
    for _ in range(max_iterations):
        mid = 0.5 * (low + high)
        f_mid = advantage(mid)
        if abs(f_mid) < tolerance or (high - low) < tolerance * max(1.0, abs(mid)):
            return mid
        if (f_mid > 0) == (f_low > 0):
            low, f_low = mid, f_mid
        else:
            high, f_high = mid, f_mid
    return 0.5 * (low + high)

"""Per-frame delay distributions.

Section 4 derives only *mean* quantities; this module extends the
analysis to full distributions, which the paper's architecture needs in
two places it leaves quantitative but unevaluated:

- Section 2.3: "Given that the expected total delay of an I-frame
  between the source and the destination is bounded, the overheads due
  to the buffer requirement and the additional processing power, is
  easily computed" — computing it requires the delay *distribution*,
  because the destination's resequencing buffer is sized by the delay
  *spread*, not the mean.
- The geometric retransmission count makes every per-frame delay a
  geometric mixture: a frame delivered on its k-th attempt waits
  ``(k-1)`` recovery periods plus one final transit.

All quantities derive from the same :class:`ModelParameters` the rest
of the analysis uses.
"""

from __future__ import annotations

import math

from . import hdlc as hdlc_model
from . import lams as lams_model
from .errorprobs import (
    geometric_period_pmf,
    retransmission_probability_lams,
    retransmission_probability_posack,
)
from .params import ModelParameters

__all__ = [
    "attempts_for_quantile",
    "lams_delay_for_attempts",
    "lams_delay_quantile",
    "lams_mean_delay",
    "hdlc_delay_for_attempts",
    "hdlc_delay_quantile",
    "resequencing_buffer_bound",
]


def attempts_for_quantile(p_r: float, quantile: float) -> int:
    """Smallest k with ``P[S <= k] >= quantile`` for geometric S."""
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    if not 0.0 <= p_r < 1.0:
        raise ValueError("p_r must be in [0, 1)")
    if p_r == 0.0:
        return 1
    # 1 - p_r**k >= q  <=>  k >= log(1-q)/log(p_r)
    return max(1, math.ceil(math.log(1.0 - quantile) / math.log(p_r)))


def lams_delay_for_attempts(params: ModelParameters, attempts: int) -> float:
    """Link delay of a frame delivered on its *attempts*-th try.

    Each failed attempt costs one recovery turnaround — the frame waits
    for the covering checkpoint's NAK and is then re-sent — i.e. one
    ``D_retrn``-shaped period; the final attempt costs transmission plus
    one-way propagation.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    final_transit = params.iframe_time + params.round_trip_time / 2.0
    recovery = lams_model.retransmission_period(params)
    return (attempts - 1) * recovery + final_transit


def lams_delay_quantile(params: ModelParameters, quantile: float) -> float:
    """q-quantile of the LAMS-DLC per-frame link delay."""
    p_r = retransmission_probability_lams(params.p_f)
    return lams_delay_for_attempts(params, attempts_for_quantile(p_r, quantile))


def lams_mean_delay(params: ModelParameters) -> float:
    """Mean per-frame link delay: geometric mixture expectation.

    ``E[delay] = (s̄ - 1) · D_retrn + t_f + R/2`` — the expected number
    of failed attempts is ``s̄ - 1``.
    """
    sbar = lams_model.s_bar(params)
    return (sbar - 1.0) * lams_model.retransmission_period(params) + (
        params.iframe_time + params.round_trip_time / 2.0
    )


def hdlc_delay_for_attempts(params: ModelParameters, attempts: int) -> float:
    """SR-HDLC link delay on the *attempts*-th try (timeout recovery)."""
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    final_transit = params.iframe_time + params.round_trip_time / 2.0
    return (attempts - 1) * params.timeout + final_transit


def hdlc_delay_quantile(params: ModelParameters, quantile: float) -> float:
    """q-quantile of the SR-HDLC per-frame link delay."""
    p_r = retransmission_probability_posack(params.p_f, params.p_c)
    return hdlc_delay_for_attempts(params, attempts_for_quantile(p_r, quantile))


def resequencing_buffer_bound(params: ModelParameters, quantile: float = 0.999999) -> float:
    """Destination resequencing-buffer bound, in frames (Section 2.3).

    A datagram can overtake another by at most the *delay spread*
    (q-quantile minus minimum); frames arriving during that spread must
    be buffered for ordering.  At full rate one frame arrives per
    ``t_f``, so the bound is ``spread / t_f``.
    """
    spread = lams_delay_quantile(params, quantile) - lams_delay_for_attempts(params, 1)
    return spread / params.iframe_time

"""Closed-form performance model: every equation of the paper's Section 4.

Submodules: :mod:`params` (the symbol bundle), :mod:`errorprobs`
(retransmission probabilities), :mod:`lams` and :mod:`hdlc` (the two
protocols' period/throughput/buffer expressions), :mod:`bounds`
(numbering/inconsistency-gap bounds of Sections 2.3 and 3.3), and
:mod:`compare` (sweeps and crossover finding).
"""

from . import bounds, compare, delay, errorprobs, framesize, gbn, hybrid
from . import nbdt as nbdt_model
from . import tuning
from . import hdlc as hdlc_model
from . import lams as lams_model
from .params import ModelParameters

__all__ = [
    "ModelParameters",
    "bounds",
    "compare",
    "delay",
    "errorprobs",
    "framesize",
    "gbn",
    "hybrid",
    "hdlc_model",
    "lams_model",
    "nbdt_model",
    "tuning",
]

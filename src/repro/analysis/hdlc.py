"""SR-HDLC closed-form performance model (paper Section 4).

Implements the baseline side of every comparison:

- ``s̄_HDLC = 1/(1-(P_F + P_C - P_F P_C))``             → :func:`s_bar`
- ``d_trans = P_C t_out + (1-P_C)(R + 2t_proc + t_c)``   → :func:`transmission_delay`
- ``d_retrn = t_out``; ``d_resol = R + 2t_proc + t_c``   → :func:`retransmission_delay`, :func:`resolve_delay`
- ``D_trans(W) = W t_f + d_trans``                       → :func:`transmission_period`
- ``D_retrn``                                            → :func:`retransmission_period`
- ``D_low(W) = D_trans(W) + (s̄-1) D_retrn``             → :func:`total_delivery_time_low`
- ``D_high(N) = m D_low(N_win) + D_low(r_w)``            → :func:`total_delivery_time_high`
- ``η_HDLC``                                             → :func:`throughput_high`

**A note on the paper's algebra** (recorded here and in
EXPERIMENTS.md): the paper's displayed expansion of ``D_retrn^HDLC``
multiplies ``alpha`` by ``(1 - P_F - P_C + P_F P_C)`` and
``(2t_proc + t_c)`` by ``(P_F + P_C - P_F P_C)``.  That contradicts the
paper's own verbal definitions two lines earlier: the *resolve* outcome
(probability ``q = (1-P_F)(1-P_C)``) ends with an RR after
``d_resol = R + 2t_proc + t_c`` — no timeout — while the *non-resolve*
outcome (probability ``1-q``) ends with the timeout
``d_retrn = t_out = R + alpha``.  The correct expansion therefore
weights ``alpha`` by ``1-q`` and ``2t_proc + t_c`` by ``q``.  All
functions take ``variant="derived"`` (default, follows the verbal
definitions) or ``variant="paper"`` (reproduces the printed algebra);
the qualitative comparisons hold under both.
"""

from __future__ import annotations

import math

from .errorprobs import mean_transmissions, retransmission_probability_posack
from .params import ModelParameters

__all__ = [
    "s_bar",
    "transmission_delay",
    "retransmission_delay",
    "resolve_delay",
    "transmission_period",
    "retransmission_period",
    "total_delivery_time_low",
    "delta",
    "holding_time",
    "n_total_window",
    "total_delivery_time_high",
    "throughput_high",
    "throughput_efficiency",
]

_VARIANTS = ("derived", "paper")


def _check_variant(variant: str) -> None:
    if variant not in _VARIANTS:
        raise ValueError(f"variant must be one of {_VARIANTS}, got {variant!r}")


def s_bar(params: ModelParameters) -> float:
    """``s̄_HDLC = 1/(1 - (P_F + P_C - P_F P_C))``."""
    return mean_transmissions(retransmission_probability_posack(params.p_f, params.p_c))


def resolve_delay(params: ModelParameters) -> float:
    """``d_resol = R + 2 t_proc + t_c`` — the final, successful RR."""
    return params.round_trip_time + 2.0 * params.processing_time + params.cframe_time


def transmission_delay(params: ModelParameters) -> float:
    """``d_trans = P_C t_out + (1-P_C)(R + 2t_proc + t_c)``.

    After the window's last frame: with probability ``P_C`` the
    RR/SREJ response is lost and the sender waits out the full timeout;
    otherwise the normal response round trip.
    """
    return params.p_c * params.timeout + (1.0 - params.p_c) * resolve_delay(params)


def retransmission_delay(params: ModelParameters) -> float:
    """``d_retrn = t_out`` — a retransmission period ends by timeout."""
    return params.timeout


def transmission_period(params: ModelParameters, n_frames: int | float) -> float:
    """``D_trans^HDLC(W) = W t_f + d_trans``."""
    if n_frames < 0:
        raise ValueError("n_frames cannot be negative")
    return n_frames * params.iframe_time + transmission_delay(params)


def retransmission_period(params: ModelParameters, variant: str = "derived") -> float:
    """Mean retransmission-period length ``D_retrn^HDLC``.

    ``derived``:  ``t_f + q·d_resol + (1-q)·t_out``
                  with ``q = (1-P_F)(1-P_C)``  — the verbal definition.
    ``paper``:    the printed expansion with the ``q`` / ``1-q`` weights
                  swapped between the ``alpha`` and ``2t_proc + t_c``
                  terms.
    """
    _check_variant(variant)
    q = (1.0 - params.p_f) * (1.0 - params.p_c)
    overhead = 2.0 * params.processing_time + params.cframe_time
    if variant == "derived":
        return (
            params.iframe_time
            + params.round_trip_time
            + (1.0 - q) * params.alpha
            + q * overhead
        )
    return (
        params.iframe_time
        + params.round_trip_time
        + q * params.alpha
        + (1.0 - q) * overhead
    )


def total_delivery_time_low(
    params: ModelParameters,
    n_frames: int | float,
    variant: str = "derived",
) -> float:
    """``D_low^HDLC(N) = D_trans(N) + (s̄-1) D_retrn`` for ``N <= W``."""
    return transmission_period(params, n_frames) + (s_bar(params) - 1.0) * retransmission_period(
        params, variant
    )


def delta(params: ModelParameters, variant: str = "derived") -> float:
    """``δ_HDLC``: the per-window overhead beyond ``W t_f + s̄ R``.

    ``derived``: ``D_low(W) - W t_f - s̄ R`` evaluated from the period
    expressions (keeps every term).
    ``paper``: the printed
    ``((s̄-1)(1 - P_F - P_C + P_F P_C) - P_C) α``.
    """
    _check_variant(variant)
    if variant == "paper":
        q = (1.0 - params.p_f) * (1.0 - params.p_c)
        return (
            (s_bar(params) - 1.0) * q - params.p_c
        ) * params.alpha
    return (
        total_delivery_time_low(params, params.window_size, variant)
        - params.window_size * params.iframe_time
        - s_bar(params) * params.round_trip_time
    )


def holding_time(params: ModelParameters) -> float:
    """Mean sender holding time for SR-HDLC.

    Not displayed in the paper ("can be calculated the same way as
    LAMS-DLC"); following that recipe: a successful frame is held for
    the normal response turnaround, a failed one adds a timeout wait
    and recurses, so ``H = s̄ · (t_f + d_trans)`` with the timeout
    replacing the response on failures:

    ``H_succ = t_f + (1-P_C)(R + 2t_proc + t_c) + P_C t_out``
    ``H_frame = H_succ / (1 - P_R)``.
    """
    h_succ = params.iframe_time + transmission_delay(params)
    p_r = retransmission_probability_posack(params.p_f, params.p_c)
    return h_succ / (1.0 - p_r)


def n_total_window(params: ModelParameters) -> float:
    """``N_win = N_total(W)``: transmissions to clear one window.

    Each of the window's ``W`` frames needs ``s̄`` transmissions in
    expectation.
    """
    return params.window_size * s_bar(params)


def total_delivery_time_high(
    params: ModelParameters, n_frames: int, variant: str = "derived"
) -> float:
    """``D_high^HDLC(N) = m · D_low(N_win) + D_low(r_w)``.

    SR-HDLC cannot overlap windows: every window pays its own full
    resolution cost, so high-traffic time is ``m = ⌊N/W⌋`` complete
    windows plus the remainder.
    """
    if n_frames < 0:
        raise ValueError("n_frames cannot be negative")
    w = params.window_size
    m, remainder = divmod(n_frames, w)
    total = m * total_delivery_time_low(params, n_total_window(params), variant)
    if remainder:
        total += total_delivery_time_low(params, remainder * s_bar(params), variant)
    return total


def throughput_high(params: ModelParameters, n_frames: int, variant: str = "derived") -> float:
    """``η_HDLC = N / D_high^HDLC(N)`` — frames/second."""
    if n_frames <= 0:
        raise ValueError("n_frames must be positive")
    return n_frames / total_delivery_time_high(params, n_frames, variant)


def throughput_efficiency(
    params: ModelParameters, n_frames: int, variant: str = "derived"
) -> float:
    """Normalised efficiency ``η · t_f ∈ (0, 1]``."""
    return throughput_high(params, n_frames, variant) * params.iframe_time

"""Go-Back-N closed-form model (paper Section 2.3's discard argument).

Section 2.3: "With the former protocol [GBN], an I-frame loss implies
the loss of all I-frames immediately following it … In a network with a
large ``D_link`` and ``T_data``, GBN DLCPs will clearly discard many
uncorrupted I frames."  The discarded pipeline is one *link frame
length* — ``R/t_f`` frames in flight plus the erroneous one.

The standard continuous-operation result follows: each frame error
forces the replay of ``K = R/t_f + 1`` slots, so the expected slots per
delivered frame are

    ``s̄_GBN = 1 + P_R · K / (1 - P_R)``

and the goodput efficiency is its reciprocal.  This quantifies the
background comparison the paper makes qualitatively (and which our
executable GBN variant shows in simulation — see
``tests/test_hdlc_protocol.py::TestGoBackN``).
"""

from __future__ import annotations

from .errorprobs import retransmission_probability_posack
from .params import ModelParameters

__all__ = ["pipeline_frames", "s_bar_gbn", "throughput_efficiency_gbn"]


def pipeline_frames(params: ModelParameters) -> float:
    """``K = R/t_f + 1``: slots wasted per frame error (the go-back)."""
    return params.round_trip_time / params.iframe_time + 1.0


def s_bar_gbn(params: ModelParameters) -> float:
    """Expected channel slots per delivered frame under Go-Back-N.

    Geometric argument: a frame needs ``G`` attempts
    (``P[G = g] = (1-P_R) P_R^(g-1)``); every failed attempt costs the
    full pipeline ``K``, the final success costs one slot:
    ``E[slots] = 1 + (s̄-1)·K`` with ``s̄-1 = P_R/(1-P_R)``.
    """
    p_r = retransmission_probability_posack(params.p_f, params.p_c)
    return 1.0 + p_r * pipeline_frames(params) / (1.0 - p_r)


def throughput_efficiency_gbn(params: ModelParameters) -> float:
    """Continuous-operation goodput efficiency ``1 / s̄_GBN``.

    Assumes an always-open window (``W`` at least the pipeline depth)
    and REJ-based recovery; timeout recovery would only lower this.
    """
    return 1.0 / s_bar_gbn(params)

"""Closed-form throughput model for the NBDT baseline.

The paper describes NBDT qualitatively (Section 1); to place it on the
same axes as the Section-4 models we derive the obvious mean-value
expressions for both modes.

**Continuous mode.**  Like LAMS-DLC, transmission never stalls, so the
channel-slot cost per delivered frame is just the retransmission
factor.  NBDT retransmits on frame error — gap-listed or trailing-
detected — so ``P_R = P_F`` (a lost report delays but does not force a
retransmission; the next report carries the same information, exactly
like the cumulative NAK):

    ``η_cont ≈ (1 - P_F)``

plus a vanishing per-transfer constant; the holding time, however, runs
to the *positive* acknowledgement:

    ``H_cont ≈ s̄ · (R + (n̄_rep − ½)·T_rep + t_f)``

with ``T_rep`` the report period (``report_every · t_f``) and
``n̄_rep = 1/(1-P_C)`` — structurally identical to LAMS-DLC's
``H_frame``.  The difference the paper cares about is not here but in
what the holding *requires*: NBDT cannot release on an absent NAK, so
any report outage extends every frame's residence (and it has no
failure detection to bound the wait).

**Multiphase mode.**  One phase of ``N`` frames costs
``N·t_f + d_report`` with ``d_report = R + t_c + t_proc``, and the
expected number of phases to clear N frames is ``1/(1-P_F)`` per frame
geometric — evaluated phase-wise:

    ``D(N) ≈ Σ_k (N·P_F^k · t_f + d_report)`` until ``N·P_F^k < 1``

which the function below evaluates exactly.
"""

from __future__ import annotations

import math

from .params import ModelParameters

__all__ = [
    "continuous_efficiency",
    "continuous_holding_time",
    "multiphase_transfer_time",
    "multiphase_efficiency",
]


def continuous_efficiency(params: ModelParameters) -> float:
    """Asymptotic goodput efficiency of NBDT continuous mode."""
    return 1.0 - params.p_f


def continuous_holding_time(params: ModelParameters, report_period: float) -> float:
    """Mean sender holding time under continuous mode.

    A frame waits for the report that covers it (``report_period/2`` on
    average, plus ``report_period`` per lost report) and the transit
    back; failures chain geometrically as in the LAMS recursion.
    """
    if report_period <= 0:
        raise ValueError("report_period must be positive")
    n_rep = 1.0 / (1.0 - params.p_c)
    per_attempt = (
        params.round_trip_time
        + params.iframe_time
        + (n_rep - 0.5) * report_period
    )
    return per_attempt / (1.0 - params.p_f)


def multiphase_transfer_time(params: ModelParameters, n_frames: int) -> float:
    """Expected total time to clear *n_frames* in multiphase mode.

    Phase k carries the expected survivors ``N·P_F^k``; each phase pays
    a full report turnaround.  Phases continue until the expected
    remainder drops below one frame.
    """
    if n_frames <= 0:
        raise ValueError("n_frames must be positive")
    d_report = params.round_trip_time + params.cframe_time + params.processing_time
    total = 0.0
    remaining = float(n_frames)
    while remaining >= 1.0:
        total += remaining * params.iframe_time + d_report
        remaining *= params.p_f
    return total


def multiphase_efficiency(params: ModelParameters, n_frames: int) -> float:
    """Normalised goodput efficiency of a multiphase transfer."""
    return n_frames * params.iframe_time / multiphase_transfer_time(params, n_frames)

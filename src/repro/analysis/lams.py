"""LAMS-DLC closed-form performance model (paper Section 4).

Every function implements one displayed equation of the paper, using
:class:`~repro.analysis.params.ModelParameters` for the symbols.  The
exact (not just the paper's ``≈``) forms are used by default; the
approximate forms are available behind ``approximate=True`` so the
benchmark tables can print both.

Equation inventory:

- ``s̄_LAMS = 1/(1-P_F)``                                   → :func:`s_bar`
- ``D_trans(N) = N t_f + t_c + t_proc + R + (n̄_cp - ½) I_cp``  → :func:`transmission_period`
- ``D_retrn   =   t_f + t_c + t_proc + R + (n̄_cp - ½) I_cp``  → :func:`retransmission_period`
- ``D_low(N)  = D_trans(N) + (s̄-1) D_retrn``                → :func:`total_delivery_time_low`
- ``H_frame   = H_succ / (1-P_F)``                           → :func:`holding_time`
- ``B_LAMS    = H_frame/t_f + t_proc/t_f``                   → :func:`transparent_buffer_size`
- subperiod recursion for ``N_total(N)``                     → :func:`subperiod_schedule`, :func:`n_total`
- ``η_LAMS = N / (N_total t_f + s̄ R + δ_LAMS)``             → :func:`throughput_high`
"""

from __future__ import annotations

from dataclasses import dataclass

from .errorprobs import (
    mean_checkpoints_needed,
    mean_transmissions,
    retransmission_probability_lams,
)
from .params import ModelParameters

__all__ = [
    "s_bar",
    "n_cp_bar",
    "transmission_period",
    "retransmission_period",
    "total_delivery_time_low",
    "holding_time",
    "transparent_buffer_size",
    "delta",
    "SubperiodSchedule",
    "subperiod_schedule",
    "n_total",
    "total_delivery_time_high",
    "throughput_high",
    "throughput_efficiency",
]


def s_bar(params: ModelParameters) -> float:
    """``s̄_LAMS = 1/(1-P_F)`` — mean periods per delivered frame."""
    return mean_transmissions(retransmission_probability_lams(params.p_f))


def n_cp_bar(params: ModelParameters) -> float:
    """``n̄_cp = 1/(1-P_C)`` — mean checkpoints to acknowledge a frame."""
    return mean_checkpoints_needed(params.p_c)


def _checkpoint_wait(params: ModelParameters) -> float:
    """``(n̄_cp - ½) I_cp``: mean wait from arrival to an effective checkpoint.

    ``I_cp/2`` for the uniformly distributed arrival phase, plus a full
    ``I_cp`` per lost checkpoint (``(n̄_cp - 1) I_cp``).
    """
    return (n_cp_bar(params) - 0.5) * params.checkpoint_interval


def transmission_period(params: ModelParameters, n_frames: int | float) -> float:
    """``D_trans^LAMS(N) = N t_f + t_c + t_proc + R + (n̄_cp - ½) I_cp``."""
    if n_frames < 0:
        raise ValueError("n_frames cannot be negative")
    return (
        n_frames * params.iframe_time
        + params.cframe_time
        + params.processing_time
        + params.round_trip_time
        + _checkpoint_wait(params)
    )


def retransmission_period(params: ModelParameters) -> float:
    """``D_retrn^LAMS = t_f + t_c + t_proc + R + (n̄_cp - ½) I_cp``.

    Identical to the transmission period with a single frame — the
    paper's assumption that each retransmission period carries on
    average one I-frame.
    """
    return transmission_period(params, 1)


def total_delivery_time_low(
    params: ModelParameters, n_frames: int | float, approximate: bool = False
) -> float:
    """``D_low^LAMS(N) = D_trans(N) + (s̄-1) D_retrn`` (low traffic).

    With ``approximate=True`` returns the paper's trailing
    approximation ``N t_f + s̄ R + s̄ (n̄_cp - ½) I_cp``.
    """
    sbar = s_bar(params)
    if approximate:
        return (
            n_frames * params.iframe_time
            + sbar * params.round_trip_time
            + sbar * _checkpoint_wait(params)
        )
    return transmission_period(params, n_frames) + (sbar - 1.0) * retransmission_period(params)


def holding_time(params: ModelParameters, approximate: bool = False) -> float:
    """Mean sender holding time ``H_frame^LAMS``.

    The paper's recursion
    ``H_frame = (1-P_F) H_succ + P_F (H_succ + H_frame)`` solves to
    ``H_frame = H_succ / (1-P_F)`` with
    ``H_succ = R + t_f + t_c + t_proc + (n̄_cp - ½) I_cp``.

    (The paper's intermediate line for ``H_fail`` prints
    ``(n̄_cp + ½) I_cp``; that contradicts its own definition
    ``H_fail = H_succ + H_frame`` and its final result, so we follow
    the recursion — see EXPERIMENTS.md, "paper typos".)
    """
    h_succ = (
        params.round_trip_time
        + params.iframe_time
        + params.cframe_time
        + params.processing_time
        + _checkpoint_wait(params)
    )
    if approximate:
        return s_bar(params) * (params.round_trip_time + _checkpoint_wait(params))
    return h_succ / (1.0 - params.p_f)


def transparent_buffer_size(params: ModelParameters, approximate: bool = False) -> float:
    """``B_LAMS = H_frame/t_f + t_proc/t_f`` — sending + receiving buffers.

    The finite "transparent" buffer size: frames flowing in at rate
    ``1/t_f`` during one holding time, plus the receiver's
    ``t_proc/t_f`` processing slack.  Its existence (vs
    ``B_HDLC = ∞``) is the paper's headline buffer result.
    """
    if approximate:
        return (
            s_bar(params)
            * (params.round_trip_time + _checkpoint_wait(params))
            / params.iframe_time
        )
    return (
        holding_time(params) / params.iframe_time
        + params.processing_time / params.iframe_time
    )


def delta(params: ModelParameters) -> float:
    """``δ_LAMS = s̄ (n̄_cp - ½) I_cp`` — the checkpoint-wait term of η."""
    return s_bar(params) * _checkpoint_wait(params)


# ---------------------------------------------------------------------------
# High-traffic subperiod recursion
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SubperiodSchedule:
    """Result of the Section-4 subperiod recursion.

    ``new_frames[i]`` is ``N_i`` — new frames admitted in subperiod *i*
    (each subperiod is one mean holding time, ``h = H_frame/t_f`` frame
    slots long); ``retransmission_load[i]`` is the expected slots
    consumed by resurfacing retransmissions ``Σ_j N_j P_R^(i-j)``.
    """

    new_frames: list[float]
    retransmission_load: list[float]
    total_transmissions: float

    @property
    def subperiod_count(self) -> int:
        return len(self.new_frames)


def subperiod_schedule(
    params: ModelParameters,
    n_frames: int,
    tail_epsilon: float = 1e-9,
    max_subperiods: int = 1_000_000,
) -> SubperiodSchedule:
    """Evaluate the paper's ``N_total`` recursion.

    Subperiod capacity is ``h = H_frame / t_f`` frames.  In subperiod
    ``i`` the expected retransmission load from earlier subperiods is
    ``Σ_{j<i} N_j P_R^{i-j}`` (frames that failed every intervening
    attempt resurface after each holding time); new frames fill the
    remaining slots until all ``N`` have been admitted, then the
    retransmission tail drains.
    """
    if n_frames < 0:
        raise ValueError("n_frames cannot be negative")
    p_r = retransmission_probability_lams(params.p_f)
    h = holding_time(params) / params.iframe_time
    if h < 1.0:
        h = 1.0  # a subperiod always fits at least one frame
    new_frames: list[float] = []
    loads: list[float] = []
    remaining = float(n_frames)
    total = 0.0
    # `pending[k]` tracks expected frames that have failed and will
    # resurface k subperiods from now; equivalently we fold the P_R
    # geometric decay into a single "resurfacing mass" per period.
    resurfacing = 0.0
    for _ in range(max_subperiods):
        if remaining <= 0 and resurfacing <= tail_epsilon:
            break
        load = resurfacing
        capacity = max(h - load, 0.0)
        admitted = min(remaining, capacity)
        new_frames.append(admitted)
        loads.append(load)
        remaining -= admitted
        transmissions = admitted + load
        total += transmissions
        # Of everything transmitted this subperiod, a fraction P_R fails
        # and resurfaces one holding time later.
        resurfacing = transmissions * p_r
    else:
        raise RuntimeError("subperiod recursion failed to converge")
    return SubperiodSchedule(
        new_frames=new_frames,
        retransmission_load=loads,
        total_transmissions=total,
    )


def n_total(params: ModelParameters, n_frames: int, recursive: bool = False) -> float:
    """``N_total(N)``: transmissions (incl. retransmissions) for N frames.

    The closed form is ``N s̄`` — each frame is transmitted a geometric
    number of times; ``recursive=True`` evaluates the paper's subperiod
    recursion instead (the two agree in the limit; benchmark E5 shows
    the recursion's transient structure).
    """
    if recursive:
        return subperiod_schedule(params, n_frames).total_transmissions
    return n_frames * s_bar(params)


def total_delivery_time_high(params: ModelParameters, n_frames: int) -> float:
    """``D_high^LAMS(N) = D_low(N_total)``: high-traffic delivery time.

    LAMS-DLC overlaps retransmission with new transmission, so the high
    traffic time is one long transmission period carrying ``N_total``
    frames (paper: ``D_high^LAMS(N) = D_low^LAMS(N_total^LAMS)``).
    """
    total = n_total(params, n_frames)
    sbar = s_bar(params)
    return total * params.iframe_time + sbar * params.round_trip_time + delta(params)


def throughput_high(params: ModelParameters, n_frames: int) -> float:
    """``η_LAMS = N / (N_total t_f + s̄ R + δ_LAMS)`` — frames/second."""
    if n_frames <= 0:
        raise ValueError("n_frames must be positive")
    return n_frames / total_delivery_time_high(params, n_frames)


def throughput_efficiency(params: ModelParameters, n_frames: int) -> float:
    """Normalised efficiency ``η · t_f ∈ (0, 1]``.

    Frames delivered per frame-transmission-time of elapsed time —
    1.0 means the link never idles and never repeats itself.
    """
    return throughput_high(params, n_frames) * params.iframe_time

"""Frame-size optimisation.

Two passages of the paper motivate this analysis:

- Section 1 (on NBDT): "Absolute numbering uses 32 bit sequence number
  field … which allows the frame size to be controlled for the optimal
  size" — frame-size control was valuable enough to motivate a whole
  HDLC variant.
- Section 2.3: "the SR ARQ scheme is likely to require long numbering
  size for optimal frame length.  The overhead in short frames is
  significant, which causes performance degradation."

The trade: long frames amortise the per-frame header but are corrupted
more often (``P_F = 1-(1-BER)^L``); short frames survive but drown in
overhead.  For a goodput objective

    ``G(L) = L / ((L + h) · s̄(L))``          (payload per channel bit)

the optimum is approximately ``L* ≈ sqrt(h / BER)`` for small BER —
derived by maximising ``L · (1-BER)^(L+h) / (L+h)``.

Because LAMS-DLC renumbers retransmissions, it can change frame size
*at any time* without renumbering headaches — operationally realising
NBDT's "controlled for the optimal size" idea; HDLC's per-window
numbering makes mid-stream resizing awkward (a qualitative point,
noted in the experiment).
"""

from __future__ import annotations

import math

from ..simulator.errormodel import frame_error_probability
from .errorprobs import mean_transmissions, retransmission_probability_lams

__all__ = [
    "goodput_per_channel_bit",
    "optimal_frame_size_approx",
    "optimal_frame_size",
    "frame_size_sweep",
]


def goodput_per_channel_bit(payload_bits: int, overhead_bits: int, ber: float) -> float:
    """``G(L) = L / ((L+h) · s̄(L))`` — delivered payload per channel bit.

    Uses the LAMS-DLC retransmission law ``s̄ = 1/(1-P_F)``, so
    ``G(L) = (L/(L+h)) · (1-BER)^(L+h)``.
    """
    if payload_bits <= 0:
        raise ValueError("payload_bits must be positive")
    if overhead_bits < 0:
        raise ValueError("overhead_bits cannot be negative")
    total = payload_bits + overhead_bits
    p_f = frame_error_probability(ber, total)
    if p_f >= 1.0:
        return 0.0  # every frame corrupted: nothing ever gets through
    s_bar = mean_transmissions(retransmission_probability_lams(p_f))
    return payload_bits / (total * s_bar)


def optimal_frame_size_approx(overhead_bits: int, ber: float) -> float:
    """The small-BER closed form ``L* ≈ sqrt(h / BER)``.

    From ``d/dL [ln L - ln(L+h) + (L+h)·ln(1-BER)] = 0``:
    ``h / (L(L+h)) = -ln(1-BER) ≈ BER``, i.e. ``L(L+h) = h/BER``,
    whose positive root is ``L* = (sqrt(h² + 4h/BER) - h)/2 ≈
    sqrt(h/BER)`` for ``L* ≫ h``.
    """
    if ber <= 0:
        return math.inf
    if overhead_bits <= 0:
        raise ValueError("overhead must be positive for a finite optimum")
    h = float(overhead_bits)
    return (math.sqrt(h * h + 4.0 * h / ber) - h) / 2.0


def optimal_frame_size(
    overhead_bits: int,
    ber: float,
    low: int = 8,
    high: int = 10_000_000,
) -> int:
    """Numerically exact integer optimum of :func:`goodput_per_channel_bit`.

    Ternary search over the (unimodal) goodput curve.
    """
    if ber <= 0:
        return high
    lo, hi = low, high
    while hi - lo > 2:
        third = (hi - lo) // 3
        m1, m2 = lo + third, hi - third
        if goodput_per_channel_bit(m1, overhead_bits, ber) < goodput_per_channel_bit(
            m2, overhead_bits, ber
        ):
            lo = m1 + 1
        else:
            hi = m2 - 1
    return max(
        range(lo, hi + 1),
        key=lambda size: goodput_per_channel_bit(size, overhead_bits, ber),
    )


def frame_size_sweep(
    overhead_bits: int,
    ber: float,
    sizes: list[int],
) -> list[dict]:
    """Goodput across candidate payload sizes, with the optimum marked."""
    best = optimal_frame_size(overhead_bits, ber)
    rows = []
    for size in sizes:
        rows.append(
            {
                "payload_bits": size,
                "p_f": frame_error_probability(ber, size + overhead_bits),
                "goodput": goodput_per_channel_bit(size, overhead_bits, ber),
                "is_optimal_region": abs(math.log(size / best)) < math.log(2),
            }
        )
    return rows

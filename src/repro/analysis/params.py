"""Parameter bundle for the Section-4 closed-form model.

One :class:`ModelParameters` instance carries every symbol the paper's
analysis uses:

=============  ======================================================
symbol         field
=============  ======================================================
``R``          ``round_trip_time``
``t_f``        ``iframe_time``
``t_c``        ``cframe_time``
``t_proc``     ``processing_time``
``P_F``        ``p_f`` (I-frame error probability)
``P_C``        ``p_c`` (control-frame error probability)
``I_cp``       ``checkpoint_interval`` (= ``W_cp``)
``C_depth``    ``cumulation_depth``
``W``          ``window_size`` (SR-HDLC)
``alpha``      ``alpha`` (timeout margin, ``t_out = R + alpha``)
=============  ======================================================

The :meth:`from_link` factory derives the timing fields from physical
link parameters (rate, distance, frame sizes) and the error
probabilities from a residual BER — the exact chain the simulator uses,
so model and simulation are parameterised identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..simulator.errormodel import frame_error_probability
from ..simulator.link import LIGHT_SPEED_KM_S

__all__ = ["ModelParameters"]


@dataclass(frozen=True)
class ModelParameters:
    """Inputs to every formula in the Section-4 analysis."""

    round_trip_time: float
    iframe_time: float
    cframe_time: float
    processing_time: float
    p_f: float
    p_c: float
    checkpoint_interval: float
    cumulation_depth: int = 3
    window_size: int = 8
    alpha: float = 0.0

    def __post_init__(self) -> None:
        if self.round_trip_time < 0:
            raise ValueError("round_trip_time cannot be negative")
        if self.iframe_time <= 0:
            raise ValueError("iframe_time must be positive")
        if self.cframe_time < 0 or self.processing_time < 0:
            raise ValueError("times cannot be negative")
        for name, p in (("p_f", self.p_f), ("p_c", self.p_c)):
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {p!r}")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.cumulation_depth < 1:
            raise ValueError("cumulation_depth must be >= 1")
        if self.window_size < 1:
            raise ValueError("window_size must be >= 1")
        if self.alpha < 0:
            raise ValueError("alpha cannot be negative")

    @property
    def timeout(self) -> float:
        """HDLC's ``t_out = R + alpha``."""
        return self.round_trip_time + self.alpha

    @classmethod
    def from_link(
        cls,
        bit_rate: float,
        distance_km: float,
        iframe_bits: int = 8272,
        cframe_bits: int = 96,
        iframe_ber: float = 1e-6,
        cframe_ber: float = 1e-8,
        processing_time: float = 10e-6,
        checkpoint_interval: float = 0.010,
        cumulation_depth: int = 3,
        window_size: int = 8,
        alpha: float = 0.0,
    ) -> "ModelParameters":
        """Build parameters from physical link characteristics.

        ``iframe_ber`` / ``cframe_ber`` are *residual* BERs after FEC
        (assumption 4 gives control frames the stronger codec, hence the
        much lower default).  ``P_F`` and ``P_C`` follow as the per-frame
        error probabilities ``1 - (1-BER)^bits``.
        """
        if bit_rate <= 0:
            raise ValueError("bit_rate must be positive")
        if distance_km < 0:
            raise ValueError("distance cannot be negative")
        one_way = distance_km / LIGHT_SPEED_KM_S
        return cls(
            round_trip_time=2.0 * one_way,
            iframe_time=iframe_bits / bit_rate,
            cframe_time=cframe_bits / bit_rate,
            processing_time=processing_time,
            p_f=frame_error_probability(iframe_ber, iframe_bits),
            p_c=frame_error_probability(cframe_ber, cframe_bits),
            checkpoint_interval=checkpoint_interval,
            cumulation_depth=cumulation_depth,
            window_size=window_size,
            alpha=alpha,
        )

    def with_(self, **changes: Any) -> "ModelParameters":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

"""Standard endpoint factories for the session manager.

Each factory closes over a protocol configuration and builds a fresh,
started, one-way endpoint pair per pass.  The LAMS factory threads the
pass's remaining time into ``link_lifetime`` so enforced recovery can
apply the paper's "recoverable link failure" test against real pass
boundaries.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from ..core.config import LamsDlcConfig
from ..core.protocol import lams_dlc_pair
from ..hdlc.config import HdlcConfig
from ..hdlc.protocol import hdlc_pair
from ..simulator.engine import Simulator
from ..simulator.link import FullDuplexLink

__all__ = ["lams_session_factory", "hdlc_session_factory"]


def lams_session_factory(config: LamsDlcConfig) -> Callable:
    """An EndpointFactory running LAMS-DLC for each pass."""

    def factory(
        sim: Simulator,
        link: FullDuplexLink,
        deliver: Callable[[Any], None],
        pass_remaining: float,
    ):
        session_config = dataclasses.replace(config, link_lifetime=pass_remaining)
        endpoint_a, endpoint_b = lams_dlc_pair(
            sim, link, session_config, deliver_b=deliver
        )
        endpoint_a.start(send=True, receive=False)
        endpoint_b.start(send=False, receive=True)
        return endpoint_a, endpoint_b

    return factory


def hdlc_session_factory(config: HdlcConfig) -> Callable:
    """An EndpointFactory running SR-HDLC (or GBN) for each pass."""

    def factory(
        sim: Simulator,
        link: FullDuplexLink,
        deliver: Callable[[Any], None],
        pass_remaining: float,
    ):
        endpoint_a, endpoint_b = hdlc_pair(sim, link, config, deliver_b=deliver)
        endpoint_a.start()
        return endpoint_a, endpoint_b

    return factory

"""Standard endpoint factories for the session manager.

:func:`session_factory` closes over a protocol name and configuration
and builds a fresh, started, one-way endpoint pair per pass through the
unified factory registry (:func:`repro.api.make_endpoint_pair`).  When
the protocol's config carries a ``link_lifetime`` field (LAMS-DLC), the
pass's remaining time is threaded into it so enforced recovery can
apply the paper's "recoverable link failure" test against real pass
boundaries.

The per-protocol helpers (``lams_session_factory``,
``hdlc_session_factory``) remain as thin shims.
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Any, Callable, Optional

from ..core.config import LamsDlcConfig
from ..core.endpoint import build_endpoint_pair, pair_factory, resolve_protocol
from ..hdlc.config import HdlcConfig
from ..simulator.engine import Simulator
from ..simulator.link import FullDuplexLink

__all__ = ["session_factory", "lams_session_factory", "hdlc_session_factory"]


def session_factory(protocol: str, config: Any) -> Callable:
    """An EndpointFactory running *protocol* for each pass.

    Works for any name in :func:`repro.api.available_protocols`; the
    same configuration object is reused across passes (with
    ``link_lifetime`` refreshed per pass when the config supports it).

    The returned factory accepts the session manager's ``on_failure``
    keyword; when the protocol's pair factory takes an ``on_failure_a``
    extra (LAMS-DLC), the callback is threaded into the sending
    endpoint so a mid-pass declared link failure tears the session down
    instead of going unnoticed.
    """
    has_lifetime = dataclasses.is_dataclass(config) and any(
        f.name == "link_lifetime" for f in dataclasses.fields(config)
    )
    family, _ = resolve_protocol(protocol)
    try:
        takes_failure = "on_failure_a" in inspect.signature(
            pair_factory(family)
        ).parameters
    except (TypeError, ValueError):
        takes_failure = False

    def factory(
        sim: Simulator,
        link: FullDuplexLink,
        deliver: Callable[[Any], None],
        pass_remaining: float,
        on_failure: Optional[Callable[[], None]] = None,
    ):
        session_config = (
            dataclasses.replace(config, link_lifetime=pass_remaining)
            if has_lifetime else config
        )
        extras = (
            {"on_failure_a": on_failure}
            if on_failure is not None and takes_failure else {}
        )
        endpoint_a, endpoint_b = build_endpoint_pair(
            protocol, sim, link, session_config, deliver_b=deliver, **extras
        )
        endpoint_a.start(send=True, receive=False)
        endpoint_b.start(send=False, receive=True)
        return endpoint_a, endpoint_b

    return factory


def lams_session_factory(config: LamsDlcConfig) -> Callable:
    """An EndpointFactory running LAMS-DLC for each pass (shim)."""
    return session_factory("lams", config)


def hdlc_session_factory(config: HdlcConfig) -> Callable:
    """An EndpointFactory running SR-HDLC (or GBN) for each pass (shim)."""
    return session_factory("hdlc", config)

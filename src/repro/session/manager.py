"""Link-session management across visibility passes.

The paper's environment gives every inter-satellite link a *short
lifetime* (minutes) separated by gaps, with a "large retargeting
overhead which occupies a significant portion of the link lifetime"
(Section 1).  Its design goal follows: "LAMS-DLC should be designed to
minimize the impact of idle time due to link initialization and link
(re)synchronization".

This module supplies the session layer that turns those passes into a
continuous service:

- a :class:`PassSchedule` of ``[start, end)`` windows (hand-built or
  straight from :func:`repro.simulator.orbit.visibility_windows`);
- a :class:`LinkSessionManager` that, for each pass: waits out the
  retargeting/initialisation overhead, stands up a *fresh* protocol
  endpoint pair over the link, replays every datagram left unresolved
  by the previous pass, feeds queued traffic, and tears down at pass
  end, carrying the unresolved remainder forward.

Carrying frames across passes can re-send data the receiver already
delivered (the sender cannot know about frames acknowledged by
checkpoints that never arrived before cutoff) — the destination
resequencer or the zero-duplication receiver removes those duplicates;
*loss* never occurs, which is the property the paper's network layer
relies on.

The manager is protocol-agnostic: an ``endpoint_factory`` builds the
pair, so LAMS-DLC and SR-HDLC sessions are directly comparable
(benchmark E13).
"""

from __future__ import annotations

import inspect
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol, Sequence

from ..core.endpoint import Endpoint
from ..simulator.engine import Simulator
from ..simulator.link import FullDuplexLink
from ..simulator.orbit import VisibilityWindow
from ..simulator.trace import Tracer

__all__ = ["LinkPass", "PassSchedule", "SessionEndpoint", "LinkSessionManager"]


@dataclass(frozen=True)
class LinkPass:
    """One visibility window during which the link can operate."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("pass must have positive duration")

    @property
    def duration(self) -> float:
        return self.end - self.start


class PassSchedule:
    """An ordered sequence of non-overlapping link passes."""

    def __init__(self, passes: Sequence[LinkPass]) -> None:
        ordered = sorted(passes, key=lambda p: p.start)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start < earlier.end:
                raise ValueError("passes overlap")
        self.passes = list(ordered)

    @classmethod
    def from_windows(cls, windows: Sequence[VisibilityWindow]) -> "PassSchedule":
        """Build from orbit-model visibility windows."""
        return cls([LinkPass(w.start, w.end) for w in windows])

    @classmethod
    def periodic(cls, first_start: float, duration: float, gap: float, count: int) -> "PassSchedule":
        """``count`` equal passes separated by ``gap`` seconds."""
        if count < 1:
            raise ValueError("need at least one pass")
        if duration <= 0:
            raise ValueError(f"pass duration must be positive, got {duration!r}")
        if gap < 0:
            raise ValueError(f"pass gap cannot be negative, got {gap!r}")
        passes = []
        start = first_start
        for _ in range(count):
            passes.append(LinkPass(start, start + duration))
            start += duration + gap
        return cls(passes)

    @property
    def total_link_time(self) -> float:
        return sum(p.duration for p in self.passes)

    def __len__(self) -> int:
        return len(self.passes)

    def __iter__(self):
        return iter(self.passes)


class SessionEndpoint(Endpoint, Protocol):
    """What the manager needs from a protocol endpoint pair's sender side.

    A narrowing re-statement of the structural
    :class:`repro.core.endpoint.Endpoint` contract — every endpoint
    built by :func:`repro.api.make_endpoint_pair` satisfies it.
    """


EndpointFactory = Callable[[Simulator, FullDuplexLink, Callable[[Any], None], float], tuple[Any, Any]]
"""``factory(sim, link, deliver, pass_remaining) -> (endpoint_a, endpoint_b)``.

The factory creates and *starts* both endpoints; ``deliver`` receives
payloads at the B side; ``pass_remaining`` is the usable time left in
the current pass (for protocols that take a link-lifetime hint).

A factory may additionally accept an ``on_failure`` keyword: the
manager then passes a callback the protocol should invoke when it
declares the link failed (LAMS-DLC's enforced-recovery outcome), and
the manager tears the session down early, carrying the backlog to the
next pass.  Factories built by :func:`repro.session.factories.session_factory`
support this automatically.
"""


class LinkSessionManager:
    """Drives one traffic flow across a schedule of link passes."""

    def __init__(
        self,
        sim: Simulator,
        link: FullDuplexLink,
        schedule: PassSchedule,
        endpoint_factory: EndpointFactory,
        init_time: float = 0.0,
        deliver: Optional[Callable[[Any], None]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if init_time < 0:
            raise ValueError("init_time cannot be negative")
        self.sim = sim
        self.link = link
        self.schedule = schedule
        self.endpoint_factory = endpoint_factory
        self.init_time = init_time
        self.deliver = deliver if deliver is not None else (lambda payload: None)
        self.tracer = tracer or Tracer()

        self._queue: deque[Any] = deque()
        self._endpoint_a: Optional[Any] = None
        self._endpoint_b: Optional[Any] = None
        self._session_up = False
        self._current_pass: Optional[LinkPass] = None
        self.passes_run = 0
        self.delivered_count = 0
        self.carried_over = 0
        self.failures = 0
        self.session_history: list[dict[str, Any]] = []
        try:
            parameters = inspect.signature(endpoint_factory).parameters
            self._factory_takes_failure = "on_failure" in parameters
        except (TypeError, ValueError):
            self._factory_takes_failure = False

        self.link.down()  # no pass active until the schedule says so
        for link_pass in self.schedule:
            sim.schedule_at(link_pass.start, self._begin_pass, link_pass)
            sim.schedule_at(link_pass.end, self._end_pass, link_pass)

    # -- traffic input --------------------------------------------------------

    def send(self, payload: Any) -> None:
        """Queue a payload; transmitted in the current or a later pass."""
        self._queue.append(payload)
        self._feed()

    @property
    def backlog(self) -> int:
        """Payloads waiting for link time."""
        return len(self._queue)

    @property
    def session_active(self) -> bool:
        return self._session_up

    # -- pass lifecycle -----------------------------------------------------------

    def _begin_pass(self, link_pass: LinkPass) -> None:
        self.tracer.emit(self.sim.now, "session", "pass_start", at=link_pass.start)
        # Retargeting / initialisation overhead burns link time first.
        self.sim.schedule(self.init_time, self._activate, link_pass)

    def _activate(self, link_pass: LinkPass) -> None:
        if self.sim.now >= link_pass.end:
            return  # the whole pass fit inside the overhead
        self.link.up()
        remaining = link_pass.end - self.sim.now
        kwargs = (
            {"on_failure": self._on_link_failure}
            if self._factory_takes_failure else {}
        )
        self._endpoint_a, self._endpoint_b = self.endpoint_factory(
            self.sim, self.link, self._on_deliver, remaining, **kwargs
        )
        self._session_up = True
        self._current_pass = link_pass
        self.passes_run += 1
        self.tracer.emit(self.sim.now, "session", "session_up", remaining=remaining)
        self._feed()

    def _end_pass(self, link_pass: LinkPass) -> None:
        if not self._session_up:
            self.link.down()
            return
        self._teardown(link_pass, reason="pass_end")

    def _on_link_failure(self) -> None:
        """The protocol declared the link failed mid-pass.

        Invoked from inside the sender's failure path, so the sender has
        already marked itself failed; tearing down here is re-entrancy
        safe.  The backlog — queued payloads plus everything reclaimed
        from the dying sender — survives for the next pass, preserving
        the zero-loss property across declared failures.
        """
        if not self._session_up or self._current_pass is None:
            return
        self.failures += 1
        self.tracer.emit(self.sim.now, "session", "session_failure")
        self._teardown(self._current_pass, reason="link_failure")

    def _teardown(self, link_pass: LinkPass, reason: str) -> None:
        self._session_up = False
        self.link.down()
        # Reclaim everything the sender could not resolve in time; it is
        # replayed on the next pass (duplicates possible, loss not).
        sender = getattr(self._endpoint_a, "sender", None)
        reclaimed = 0
        if sender is not None and hasattr(sender, "held_payloads"):
            held = sender.held_payloads()
            reclaimed = len(held)
            self._queue.extendleft(reversed(held))
            if reclaimed:
                # Invariant hook: the zero-loss ledger treats reclaimed
                # payloads as held, and tests assert the replay order.
                self.tracer.emit(
                    self.sim.now, "session", "backlog_reclaimed",
                    count=reclaimed, backlog=len(self._queue),
                )
        for endpoint in (self._endpoint_a, self._endpoint_b):
            if endpoint is not None:
                endpoint.stop()
        self._endpoint_a = self._endpoint_b = None
        self._current_pass = None
        self.carried_over += reclaimed
        self.session_history.append(
            {
                "pass_start": link_pass.start,
                "pass_end": link_pass.end,
                "reclaimed": reclaimed,
                "delivered_so_far": self.delivered_count,
                "reason": reason,
            }
        )
        self.tracer.emit(
            self.sim.now, "session", "session_down",
            reclaimed=reclaimed, reason=reason,
        )

    # -- plumbing --------------------------------------------------------------------

    def _on_deliver(self, payload: Any) -> None:
        self.delivered_count += 1
        self.deliver(payload)

    def _feed(self) -> None:
        if not self._session_up or self._endpoint_a is None:
            return
        while self._queue:
            if not self._endpoint_a.accept(self._queue[0]):
                break
            self._queue.popleft()

    def __repr__(self) -> str:
        return (
            f"<LinkSessionManager passes={self.passes_run} "
            f"delivered={self.delivered_count} backlog={self.backlog}>"
        )

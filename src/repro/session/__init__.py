"""Session layer: continuous service over short-lived link passes.

Implements the paper's link-lifetime story (Section 1): visibility
windows, retargeting/initialisation overhead, per-pass protocol
sessions, and zero-loss carry-over of unresolved traffic between
passes.
"""

from .factories import hdlc_session_factory, lams_session_factory, session_factory
from .manager import LinkPass, LinkSessionManager, PassSchedule

__all__ = [
    "LinkPass",
    "LinkSessionManager",
    "PassSchedule",
    "hdlc_session_factory",
    "lams_session_factory",
    "session_factory",
]

"""Block interleaving: the burst-to-random error transform.

Paul et al. (paper reference [10]) proposed interleaving so that a burst
of channel errors — caused by laser-beam mispointing — lands on bits
that are *scattered* across many codewords after de-interleaving,
turning one long burst into many short, correctable random errors.
Section 2.1 of the paper adopts this as the reason a simple codec plus
ARQ suffices.

A block interleaver writes symbols into a ``rows x cols`` matrix
row-by-row and reads them out column-by-column.  A channel burst of
length ``b <= rows`` then touches at most one symbol per row, i.e. at
most one symbol per de-interleaved codeword of length ``cols``.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

__all__ = ["BlockInterleaver", "burst_spread"]

T = TypeVar("T")


class BlockInterleaver:
    """A classic ``rows x cols`` block interleaver over arbitrary symbols.

    >>> il = BlockInterleaver(rows=3, cols=4)
    >>> il.interleave(list(range(12)))
    [0, 4, 8, 1, 5, 9, 2, 6, 10, 3, 7, 11]
    >>> il.deinterleave(il.interleave(list(range(12)))) == list(range(12))
    True
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be >= 1")
        self.rows = rows
        self.cols = cols
        size = rows * cols
        # Permutation: output position -> input position.
        matrix = np.arange(size).reshape(rows, cols)
        self._perm = matrix.T.reshape(size)
        self._inv = np.empty(size, dtype=int)
        self._inv[self._perm] = np.arange(size)

    @property
    def block_size(self) -> int:
        """Symbols per interleaving block."""
        return self.rows * self.cols

    def interleave(self, block: Sequence[T]) -> list[T]:
        """Permute one block of exactly :attr:`block_size` symbols."""
        if len(block) != self.block_size:
            raise ValueError(
                f"block must have exactly {self.block_size} symbols, got {len(block)}"
            )
        return [block[i] for i in self._perm]

    def deinterleave(self, block: Sequence[T]) -> list[T]:
        """Inverse of :meth:`interleave`."""
        if len(block) != self.block_size:
            raise ValueError(
                f"block must have exactly {self.block_size} symbols, got {len(block)}"
            )
        return [block[i] for i in self._inv]

    def interleave_array(self, block: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`interleave` for numpy arrays."""
        if block.shape[0] != self.block_size:
            raise ValueError("array length must equal block_size")
        return block[self._perm]

    def deinterleave_array(self, block: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`deinterleave`."""
        if block.shape[0] != self.block_size:
            raise ValueError("array length must equal block_size")
        return block[self._inv]

    def __repr__(self) -> str:
        return f"BlockInterleaver(rows={self.rows}, cols={self.cols})"


def burst_spread(interleaver: BlockInterleaver, burst_start: int, burst_length: int) -> int:
    """Maximum errors per de-interleaved codeword for a given channel burst.

    The figure of merit for an interleaver: with ``burst_length <=
    rows``, this is 1 — every codeword sees at most one error, which a
    single-error-correcting code fixes.  Used by the FEC tests and the
    burst-error benchmark (E8) to justify the residual-BER abstraction.
    """
    size = interleaver.block_size
    if not 0 <= burst_start < size:
        raise ValueError("burst_start out of range")
    if burst_length < 0 or burst_length > size:
        raise ValueError("burst_length out of range")
    # Channel positions hit by the burst -> original positions -> codeword rows.
    hit_channel = (np.arange(burst_start, burst_start + burst_length)) % size
    original = interleaver._perm[hit_channel]
    codeword_index = original // interleaver.cols
    if len(codeword_index) == 0:
        return 0
    _, counts = np.unique(codeword_index, return_counts=True)
    return int(counts.max())

"""Forward-error-correction codecs and residual-BER models.

Section 2.1 concludes that FEC is "an integral component" of any LAMS
DLC, but that no practical codec removes all errors — hence the residual
BER of 1e-5–1e-7 that the ARQ layer must clean up, and hence LAMS-DLC
itself.  Assumption 4 of the link model uses *two* codecs: a standard
one for I-frames and a more powerful one for control frames (which is
why control frames cannot be piggybacked onto I-frames).

Two layers are provided:

1. **Bit-accurate codes** (:class:`HammingCode74`,
   :class:`RepetitionCode`) that really encode/decode numpy bit arrays.
   They exist to *demonstrate* the abstraction is sound (tests inject
   bursts through the interleaver + Hamming pipeline and verify
   correction), not to run at simulated Gbps.
2. **Residual-BER models** (:class:`CodecModel` and friends) mapping a
   raw channel BER to the post-decoding BER the ARQ layer sees.  The
   simulator's channels are parameterized with residual BERs from these
   models, exactly mirroring the paper's abstraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "HammingCode74",
    "RepetitionCode",
    "CodecModel",
    "IdentityCodec",
    "RepetitionCodecModel",
    "HammingCodecModel",
    "ConcatenatedCodecModel",
    "DEFAULT_IFRAME_CODEC",
    "DEFAULT_CFRAME_CODEC",
]


def _bits_required(values: np.ndarray) -> None:
    if values.ndim != 1 or not np.isin(values, (0, 1)).all():
        raise ValueError("expected a 1-D array of 0/1 bits")


class HammingCode74:
    """The (7,4) Hamming code: corrects any single bit error per codeword.

    Encoding uses the systematic generator; decoding computes the
    syndrome and flips the indicated bit.  Input lengths must be
    multiples of 4 (pad upstream if needed).
    """

    #: generator matrix G (4x7), systematic in the first 4 positions
    GENERATOR = np.array(
        [
            [1, 0, 0, 0, 1, 1, 0],
            [0, 1, 0, 0, 1, 0, 1],
            [0, 0, 1, 0, 0, 1, 1],
            [0, 0, 0, 1, 1, 1, 1],
        ],
        dtype=np.uint8,
    )
    #: parity-check matrix H (3x7)
    PARITY_CHECK = np.array(
        [
            [1, 1, 0, 1, 1, 0, 0],
            [1, 0, 1, 1, 0, 1, 0],
            [0, 1, 1, 1, 0, 0, 1],
        ],
        dtype=np.uint8,
    )

    rate = 4 / 7

    def __init__(self) -> None:
        # Map syndrome (as integer) -> erroneous bit position, or -1.
        self._syndrome_to_position = np.full(8, -1, dtype=int)
        for position in range(7):
            error = np.zeros(7, dtype=np.uint8)
            error[position] = 1
            syndrome = (self.PARITY_CHECK @ error) % 2
            key = int(syndrome[0]) * 4 + int(syndrome[1]) * 2 + int(syndrome[2])
            self._syndrome_to_position[key] = position

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode a bit array (length divisible by 4) to codewords."""
        _bits_required(bits)
        if len(bits) % 4 != 0:
            raise ValueError("input length must be a multiple of 4")
        data = bits.reshape(-1, 4).astype(np.uint8)
        return ((data @ self.GENERATOR) % 2).reshape(-1)

    def decode(self, bits: np.ndarray) -> np.ndarray:
        """Decode codewords (length divisible by 7), correcting 1 error each."""
        _bits_required(bits)
        if len(bits) % 7 != 0:
            raise ValueError("input length must be a multiple of 7")
        words = bits.reshape(-1, 7).astype(np.uint8).copy()
        syndromes = (words @ self.PARITY_CHECK.T) % 2
        keys = syndromes[:, 0] * 4 + syndromes[:, 1] * 2 + syndromes[:, 2]
        positions = self._syndrome_to_position[keys]
        rows = np.nonzero(positions >= 0)[0]
        words[rows, positions[rows]] ^= 1
        return words[:, :4].reshape(-1)


class RepetitionCode:
    """The n-fold repetition code with majority-vote decoding (n odd)."""

    def __init__(self, n: int = 3) -> None:
        if n < 1 or n % 2 == 0:
            raise ValueError("repetition factor must be odd and >= 1")
        self.n = n
        self.rate = 1.0 / n

    def encode(self, bits: np.ndarray) -> np.ndarray:
        _bits_required(bits)
        return np.repeat(bits.astype(np.uint8), self.n)

    def decode(self, bits: np.ndarray) -> np.ndarray:
        _bits_required(bits)
        if len(bits) % self.n != 0:
            raise ValueError(f"input length must be a multiple of {self.n}")
        groups = bits.reshape(-1, self.n)
        return (groups.sum(axis=1) > self.n // 2).astype(np.uint8)


# ---------------------------------------------------------------------------
# Residual-BER models
# ---------------------------------------------------------------------------


class CodecModel:
    """Maps a raw channel BER to the residual BER after decoding."""

    rate: float = 1.0

    def residual_ber(self, channel_ber: float) -> float:
        raise NotImplementedError

    def channel_bits(self, payload_bits: int) -> int:
        """Channel bits needed to carry *payload_bits* of information."""
        return math.ceil(payload_bits / self.rate)


@dataclass(frozen=True)
class IdentityCodec(CodecModel):
    """No coding: residual BER equals channel BER."""

    rate: float = 1.0

    def residual_ber(self, channel_ber: float) -> float:
        return channel_ber


@dataclass(frozen=True)
class RepetitionCodecModel(CodecModel):
    """Exact residual BER of the n-fold repetition code.

    A decoded bit is wrong when more than half of the n copies flip:
    ``sum_{k>n/2} C(n,k) p^k (1-p)^(n-k)``.
    """

    n: int = 3

    def __post_init__(self) -> None:
        if self.n < 1 or self.n % 2 == 0:
            raise ValueError("repetition factor must be odd and >= 1")

    @property
    def rate(self) -> float:  # type: ignore[override]
        return 1.0 / self.n

    def residual_ber(self, channel_ber: float) -> float:
        p = channel_ber
        half = self.n // 2
        return float(
            sum(
                math.comb(self.n, k) * p**k * (1 - p) ** (self.n - k)
                for k in range(half + 1, self.n + 1)
            )
        )


@dataclass(frozen=True)
class HammingCodecModel(CodecModel):
    """Residual BER of Hamming(7,4) under i.i.d. channel errors.

    A codeword decodes wrongly when it suffers >= 2 channel errors; a
    miscorrected word has at most 3 of its 4 data bits wrong.  We use
    the standard approximation: word error probability
    ``P_w = 1 - (1-p)^7 - 7 p (1-p)^6`` with ~2 wrong data bits per bad
    word, so residual ≈ ``P_w / 2``.
    """

    @property
    def rate(self) -> float:  # type: ignore[override]
        return 4.0 / 7.0

    def residual_ber(self, channel_ber: float) -> float:
        p = channel_ber
        word_ok = (1 - p) ** 7 + 7 * p * (1 - p) ** 6
        return min(1.0, max(0.0, (1 - word_ok) / 2))


@dataclass(frozen=True)
class ConcatenatedCodecModel(CodecModel):
    """Two codecs in series: outer(inner(channel)).

    Models the paper's "more powerful FEC" for control frames as an
    inner convolutional-like stage plus an outer stage; residual BERs
    compose, rates multiply.
    """

    inner: CodecModel = IdentityCodec()
    outer: CodecModel = IdentityCodec()

    @property
    def rate(self) -> float:  # type: ignore[override]
        return self.inner.rate * self.outer.rate

    def residual_ber(self, channel_ber: float) -> float:
        return self.outer.residual_ber(self.inner.residual_ber(channel_ber))


#: Default I-frame codec: single Hamming stage (residual 1e-5–1e-7 band
#: for raw BERs around 1e-3–1e-4, the paper's laser-channel regime).
DEFAULT_IFRAME_CODEC: CodecModel = HammingCodecModel()

#: Default control-frame codec: concatenated — "another more powerful
#: FEC is used to transmit control frames" (assumption 4).
DEFAULT_CFRAME_CODEC: CodecModel = ConcatenatedCodecModel(
    inner=HammingCodecModel(), outer=RepetitionCodecModel(n=3)
)

"""Cyclic redundancy checks.

The paper's link-model assumption 9 states that all frame errors —
including outright losses — are *detectable*: "we assume that no
undetectable errors (CRC-violation)".  This module supplies the
detection machinery: table-driven CRC-16-CCITT (the HDLC frame check
sequence) and CRC-32 (for long I-frames at Gbps rates), plus helpers to
frame and verify payloads.

These are real bit-accurate implementations, usable standalone; the
simulator's frame objects use them when byte-level payloads are carried
(the analytic model only needs the *detectability* assumption).
"""

from __future__ import annotations

__all__ = [
    "crc16_ccitt",
    "crc32_ieee",
    "append_crc16",
    "verify_crc16",
    "append_crc32",
    "verify_crc32",
]


def _build_table_16(poly: int) -> list[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ poly) & 0xFFFF if crc & 0x8000 else (crc << 1) & 0xFFFF
        table.append(crc)
    return table


def _build_table_32(poly: int) -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE_16 = _build_table_16(0x1021)  # CCITT polynomial x^16 + x^12 + x^5 + 1
_TABLE_32 = _build_table_32(0xEDB88320)  # reflected IEEE 802.3 polynomial


def crc16_ccitt(data: bytes, initial: int = 0xFFFF) -> int:
    """CRC-16-CCITT (X.25 / HDLC FCS polynomial), MSB-first."""
    crc = initial & 0xFFFF
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _TABLE_16[((crc >> 8) ^ byte) & 0xFF]
    return crc


def crc32_ieee(data: bytes, initial: int = 0xFFFFFFFF) -> int:
    """CRC-32 (IEEE 802.3, reflected), with final complement."""
    crc = initial & 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE_32[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def append_crc16(payload: bytes) -> bytes:
    """Payload with its 2-byte big-endian CRC-16 appended."""
    return payload + crc16_ccitt(payload).to_bytes(2, "big")


def verify_crc16(frame: bytes) -> bool:
    """True if *frame* (payload + 2-byte CRC) passes the check."""
    if len(frame) < 2:
        return False
    payload, received = frame[:-2], int.from_bytes(frame[-2:], "big")
    return crc16_ccitt(payload) == received


def append_crc32(payload: bytes) -> bytes:
    """Payload with its 4-byte big-endian CRC-32 appended."""
    return payload + crc32_ieee(payload).to_bytes(4, "big")


def verify_crc32(frame: bytes) -> bool:
    """True if *frame* (payload + 4-byte CRC) passes the check."""
    if len(frame) < 4:
        return False
    payload, received = frame[:-4], int.from_bytes(frame[-4:], "big")
    return crc32_ieee(payload) == received

"""FEC substrate: CRC detection, block interleaving, codec models.

Implements the error-control building blocks the paper assumes of the
physical layer (Sections 2.1–2.2): detectable errors via CRC, burst
randomisation via interleaving (Paul et al., reference [10]), and a
residual-BER abstraction with a stronger codec for control frames.
"""

from .codec import (
    CodecModel,
    ConcatenatedCodecModel,
    DEFAULT_CFRAME_CODEC,
    DEFAULT_IFRAME_CODEC,
    HammingCode74,
    HammingCodecModel,
    IdentityCodec,
    RepetitionCode,
    RepetitionCodecModel,
)
from .crc import (
    append_crc16,
    append_crc32,
    crc16_ccitt,
    crc32_ieee,
    verify_crc16,
    verify_crc32,
)
from .interleaver import BlockInterleaver, burst_spread

__all__ = [
    "BlockInterleaver",
    "CodecModel",
    "ConcatenatedCodecModel",
    "DEFAULT_CFRAME_CODEC",
    "DEFAULT_IFRAME_CODEC",
    "HammingCode74",
    "HammingCodecModel",
    "IdentityCodec",
    "RepetitionCode",
    "RepetitionCodecModel",
    "append_crc16",
    "append_crc32",
    "burst_spread",
    "crc16_ccitt",
    "crc32_ieee",
    "verify_crc16",
    "verify_crc32",
]

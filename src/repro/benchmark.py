"""Hot-path performance baseline: measure, record, compare.

The simulator's per-event dispatch cost bounds every experiment's wall
time, so this module gives it a first-class measurement harness with
two levels:

- **Micro** (:func:`bench_engine_dispatch`): pure engine dispatch —
  pre-schedule batches of no-op callbacks and time ``Simulator.run``
  draining them.  Batch timings yield p50/p95 per-event cost, isolating
  the heap + dispatch loop from protocol work.
- **Meso** (:func:`bench_saturated`): the E6 saturated-throughput
  workload (the hottest real configuration: a source that never runs
  dry over a nominal link), reporting simulator events/sec and link
  frames/sec end to end.

:func:`run_hotpath_bench` bundles both into one JSON-able payload and
:func:`write_baseline` lands it in ``BENCH_hotpath.json`` — the
perf-regression baseline the CLI (``python -m repro bench-baseline``)
and ``make bench-smoke`` refresh.  Comparing two baselines from the
same machine exposes hot-path regressions without the noise of
cross-machine numbers; the payload records enough context (python
version, workload parameters) to tell apples from oranges.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from typing import Any, Optional

from .simulator.engine import Simulator

__all__ = [
    "DEFAULT_OUTPUT",
    "bench_engine_dispatch",
    "bench_saturated",
    "run_hotpath_bench",
    "write_baseline",
]

DEFAULT_OUTPUT = "BENCH_hotpath.json"


def _noop() -> None:
    pass


def bench_engine_dispatch(
    total_events: int = 200_000, batch: int = 10_000
) -> dict[str, Any]:
    """Micro-benchmark the engine's event dispatch loop.

    Schedules *batch* no-op callbacks at distinct times (untimed), then
    times ``run()`` draining them; repeats until *total_events* have
    been dispatched.  Per-batch timings give p50/p95 per-event cost, so
    one slow batch (GC pause, scheduler hiccup) shows up in the tail
    instead of polluting the headline number.
    """
    if batch <= 0 or total_events <= 0:
        raise ValueError("batch and total_events must be positive")
    rounds = max(1, total_events // batch)
    per_event_costs: list[float] = []
    dispatched = 0
    wall = 0.0
    for round_index in range(rounds):
        sim = Simulator()
        schedule = sim.schedule
        for index in range(batch):
            schedule(index * 1e-9, _noop)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        wall += elapsed
        dispatched += sim.event_count
        per_event_costs.append(elapsed / batch)
    per_event_costs.sort()
    p50 = statistics.median(per_event_costs)
    p95 = per_event_costs[min(len(per_event_costs) - 1,
                              int(0.95 * len(per_event_costs)))]
    return {
        "kind": "engine_dispatch",
        "events": dispatched,
        "batch": batch,
        "rounds": rounds,
        "wall_seconds": wall,
        "events_per_sec": dispatched / wall if wall > 0 else float("inf"),
        "per_event_p50_us": p50 * 1e6,
        "per_event_p95_us": p95 * 1e6,
    }


def bench_saturated(
    scenario: str = "nominal",
    protocol: str = "lams",
    duration: float = 2.0,
    seed: int = 1,
) -> dict[str, Any]:
    """Meso-benchmark: the E6 saturated-throughput workload.

    Mirrors :func:`repro.experiments.runner.measure_saturated`'s setup
    (saturated source, one-way transfer) but keeps hold of the
    simulator so the result reports events/sec and frames/sec — the
    quantities the hot-path work optimises — alongside the delivered
    count that proves the run did real protocol work.
    """
    # Imported here so the micro bench stays importable even if the
    # workload stack is mid-refactor.
    from .workloads.generators import SaturatedSource
    from .workloads.scenarios import build_simulation, preset

    link_scenario = preset(scenario)
    setup = build_simulation(link_scenario, protocol, seed=seed)
    sender = setup.endpoint_a.sender
    source = SaturatedSource(
        setup.sim, setup.endpoint_a,
        backlog_fn=lambda: sender.pending_count,
        low_water=256, chunk=512,
        poll_interval=link_scenario.iframe_time * 64,
    )
    source.start()
    start = time.perf_counter()
    setup.sim.run(until=duration)
    wall = time.perf_counter() - start
    events = setup.sim.event_count
    frames = setup.link.forward.frames_sent + setup.link.reverse.frames_sent
    return {
        "kind": "saturated_throughput",
        "scenario": scenario,
        "protocol": protocol,
        "sim_duration": duration,
        "seed": seed,
        "wall_seconds": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else float("inf"),
        "frames": frames,
        "frames_per_sec": frames / wall if wall > 0 else float("inf"),
        "delivered": len(setup.delivered),
    }


def run_hotpath_bench(
    repeats: int = 3,
    micro_events: int = 200_000,
    duration: float = 2.0,
    scenario: str = "nominal",
    protocol: str = "lams",
    seed: int = 1,
) -> dict[str, Any]:
    """Run micro + meso *repeats* times; report best-of plus all runs.

    Best-of is the right summary for a regression baseline: interfering
    load only ever makes a run slower, so the fastest repeat is the
    closest estimate of the code's true cost.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    micro_runs = [
        bench_engine_dispatch(total_events=micro_events) for _ in range(repeats)
    ]
    meso_runs = [
        bench_saturated(
            scenario=scenario, protocol=protocol, duration=duration, seed=seed
        )
        for _ in range(repeats)
    ]
    best_micro = max(micro_runs, key=lambda run: run["events_per_sec"])
    best_meso = max(meso_runs, key=lambda run: run["events_per_sec"])
    return {
        "schema": "repro.bench_hotpath/1",
        "generated_unix_time": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "engine_dispatch": {
            "events_per_sec": best_micro["events_per_sec"],
            "per_event_p50_us": best_micro["per_event_p50_us"],
            "per_event_p95_us": best_micro["per_event_p95_us"],
            "runs": micro_runs,
        },
        "saturated_throughput": {
            "events_per_sec": best_meso["events_per_sec"],
            "frames_per_sec": best_meso["frames_per_sec"],
            "delivered": best_meso["delivered"],
            "runs": meso_runs,
        },
    }


def write_baseline(
    path: str = DEFAULT_OUTPUT,
    payload: Optional[dict[str, Any]] = None,
    **bench_kwargs: Any,
) -> dict[str, Any]:
    """Run the hot-path bench (unless *payload* is given) and write it."""
    if payload is None:
        payload = run_hotpath_bench(**bench_kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload
